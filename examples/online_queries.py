"""Online queries: throughput/latency trade-offs on a graph database.

Reproduces the paper's Section 6.3 experiment in miniature: serve a
skewed 1-hop query workload from a simulated 16-worker JanusGraph-style
cluster under hash, LDG, FENNEL and multilevel (METIS-like)
partitionings, at medium (12 clients/worker) and high (24) load.

Run:  python examples/online_queries.py
"""

from repro.database import WorkloadGenerator, simulate_workload
from repro.graph.generators import ldbc_like
from repro.partitioning import ONLINE_ALGORITHMS, make_partitioner

NUM_WORKERS = 16


def main() -> None:
    graph = ldbc_like(num_vertices=8_000, avg_degree=20, seed=3)
    generator = WorkloadGenerator(graph, skew=0.6, seed=5)
    bindings = generator.bindings("one_hop", 500)
    print(f"1-hop workload on {graph.name} ({graph.num_edges:,} edges), "
          f"{NUM_WORKERS} workers, Zipf-skewed start vertices\n")
    print(f"{'algorithm':10s} {'load':6s} {'throughput q/s':>15s} "
          f"{'mean ms':>8s} {'p99 ms':>8s} {'read max/mean':>14s}")
    print("-" * 68)
    for name in ONLINE_ALGORITHMS:
        partition = make_partitioner(name).partition(
            graph, NUM_WORKERS, order="natural", seed=42)
        for label, clients in (("medium", 12), ("high", 24)):
            result = simulate_workload(graph, partition, bindings,
                                       clients_per_worker=clients,
                                       duration=1.0)
            latency = result.latency()
            reads = result.read_distribution()
            print(f"{name:10s} {label:6s} {result.throughput:15,.0f} "
                  f"{latency.mean * 1e3:8.1f} {latency.p99 * 1e3:8.1f} "
                  f"{reads.max() / reads.mean():14.2f}")
    print("\nShapes to notice (paper Section 6.3): the offline multilevel"
          "\npartitioning wins throughput; the greedy streaming methods pay"
          "\nfor their hotspots with tail latency, especially under high"
          "\nload — which is why the paper recommends plain hashing for"
          "\nlatency-critical online workloads.")


if __name__ == "__main__":
    main()
