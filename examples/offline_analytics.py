"""Offline analytics: how partitioning choice changes PageRank's cost.

Reproduces the paper's Section 6.2 experiment in miniature: run PageRank
on the same graph under an edge-cut, a vertex-cut and a hybrid-cut
partitioning, and compare replication factor, network traffic, compute
balance and modelled execution time on the simulated PowerLyra-style
cluster.

Run:  python examples/offline_analytics.py
"""

from repro.analytics import PageRank, run_workload
from repro.graph.generators import twitter_like
from repro.partitioning import make_partitioner

NUM_PARTITIONS = 32
ALGORITHMS = ("ecr", "ldg", "vcr", "hdrf", "hcr", "hg")


def main() -> None:
    graph = twitter_like(num_vertices=12_000, avg_degree=14, seed=11)
    print(f"PageRank (10 iterations) on {graph.name} "
          f"({graph.num_edges:,} edges), {NUM_PARTITIONS} machines\n")
    print(f"{'algorithm':10s} {'repl':>6s} {'network MB':>11s} "
          f"{'msgs':>9s} {'max/mean CPU':>13s} {'exec ms':>9s}")
    print("-" * 64)
    for name in ALGORITHMS:
        partition = make_partitioner(name).partition(
            graph, NUM_PARTITIONS, order="natural", seed=42)
        run = run_workload(graph, partition, PageRank(num_iterations=10))
        dist = run.compute_distribution()
        print(f"{name:10s} {run.replication_factor:6.2f} "
              f"{run.total_network_bytes / 1e6:11.2f} "
              f"{run.total_messages:9,d} {dist.max_over_mean:13.2f} "
              f"{run.execution_seconds * 1e3:9.2f}")
    print("\nShapes to notice (paper Section 6.2): the edge-cut rows move"
          "\nthe fewest bytes per replica (no mirror updates for"
          "\nuni-directional PageRank), while the greedy edge-cut methods"
          "\nshow the worst max/mean compute balance on this skewed graph.")


if __name__ == "__main__":
    main()
