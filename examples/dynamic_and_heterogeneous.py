"""Beyond the paper's benchmarks: dynamic graphs and heterogeneous clusters.

Demonstrates the Appendix-A extensions the paper surveys but does not
benchmark:

1. **Heterogeneous capacities** — partition for a cluster whose machines
   have different compute power (LeBeane et al. / BMI style).
2. **Incremental placement** — absorb newly arriving vertices into an
   existing partitioning without re-partitioning.
3. **Hermes-style refinement** — improve a loaded partitioning in place
   with gain-driven vertex migration.

Run:  python examples/dynamic_and_heterogeneous.py
"""

import numpy as np

from repro.graph.generators import ldbc_like
from repro.metrics import edge_cut_ratio
from repro.partitioning import (
    HeterogeneousLdgPartitioner,
    IncrementalEdgeCutPartitioner,
    LdgPartitioner,
    hermes_refine,
    make_partitioner,
)


def main() -> None:
    graph = ldbc_like(num_vertices=6_000, avg_degree=16, seed=21)
    print(f"graph: {graph.name}, {graph.num_edges:,} edges\n")

    # 1. Heterogeneous cluster: one big machine, three small ones.
    shares = [4, 1, 1, 1]
    het = HeterogeneousLdgPartitioner(shares, seed=0).partition(
        graph, 4, order="natural", seed=1)
    sizes = het.sizes()
    print("1) heterogeneous LDG with capacity shares", shares)
    print(f"   partition sizes: {sizes.tolist()} "
          f"(fractions {np.round(sizes / sizes.sum(), 2).tolist()})")
    print(f"   edge-cut ratio:  {edge_cut_ratio(graph, het):.3f}\n")

    # 2. Incremental placement: 50 new users join the network.
    base = LdgPartitioner(seed=0).partition(graph, 8, order="natural", seed=1)
    incremental = IncrementalEdgeCutPartitioner(base, seed=0)
    rng = np.random.default_rng(5)
    for _ in range(50):
        friends = rng.choice(graph.num_vertices, size=6, replace=False)
        incremental.add_vertex(friends)
    snapshot = incremental.to_partition()
    print("2) incremental placement of 50 new vertices")
    print(f"   vertices: {base.num_vertices:,} -> {snapshot.num_vertices:,}, "
          f"balance max/mean = "
          f"{snapshot.sizes().max() / snapshot.sizes().mean():.3f}\n")

    # 3. Hermes-style refinement of a hash partitioning.
    hashed = make_partitioner("ecr").partition(graph, 8)
    refined = hermes_refine(graph, hashed, balance_slack=1.05, seed=3)
    print("3) Hermes-style refinement of hash partitioning")
    print(f"   edge-cut ratio: {edge_cut_ratio(graph, hashed):.3f} -> "
          f"{edge_cut_ratio(graph, refined):.3f} "
          f"(balance {refined.sizes().max() / refined.sizes().mean():.3f})")


if __name__ == "__main__":
    main()
