"""Quickstart: partition a graph with every streaming algorithm.

Generates a Twitter-like heavy-tailed graph, streams it through each of
the paper's partitioning algorithms, and prints each algorithm's cut
model, communication-cost metric and balance — the core workflow of the
library in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro.graph.generators import twitter_like
from repro.metrics import communication_cost, partition_balance
from repro.partitioning import (
    OFFLINE_ALGORITHMS,
    cut_model,
    make_partitioner,
)

NUM_PARTITIONS = 16


def main() -> None:
    graph = twitter_like(num_vertices=10_000, avg_degree=12, seed=7)
    print(f"graph: {graph.name} with {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges\n")
    print(f"{'algorithm':10s} {'cut model':12s} {'cost metric':26s} "
          f"{'value':>8s} {'balance':>8s}")
    print("-" * 70)
    for name in OFFLINE_ALGORITHMS:
        partitioner = make_partitioner(name)
        partition = partitioner.partition(graph, NUM_PARTITIONS,
                                          order="natural", seed=42)
        model = cut_model(name)
        metric = ("edge-cut ratio" if model == "edge-cut"
                  else "replication factor")
        print(f"{name:10s} {model:12s} {metric:26s} "
              f"{communication_cost(graph, partition):8.3f} "
              f"{partition_balance(graph, partition):8.3f}")


if __name__ == "__main__":
    main()
