"""Choosing a partitioner with the paper's Figure 9 decision tree.

Classifies three structurally different graphs, walks the decision tree
for offline-analytics and online-query scenarios, and prints the
recommendation together with the decision path.

Run:  python examples/choosing_a_partitioner.py
"""

from repro.graph.analysis import classify_graph, degree_stats
from repro.graph.generators import ldbc_like, road_like, twitter_like, web_like
from repro.partitioning import recommend, recommend_for_graph


def main() -> None:
    graphs = [
        twitter_like(num_vertices=5_000, seed=1),
        web_like(scale=12, seed=2),
        road_like(num_vertices=5_000, seed=3),
        ldbc_like(num_vertices=5_000, seed=4),
    ]
    print("Offline analytics — the graph's degree profile decides:\n")
    for graph in graphs:
        stats = degree_stats(graph)
        rec = recommend_for_graph(graph, "analytics")
        print(f"  {graph.name:14s} avg degree {stats.avg_degree:6.1f}, "
              f"max {stats.max_degree:6d}, class {classify_graph(graph):12s}"
              f" -> {rec.algorithm.upper():7s} ({' -> '.join(rec.path)})")

    print("\nOnline graph queries — the SLO decides:\n")
    scenarios = [
        ("p99-critical API serving", dict(tail_latency_critical=True)),
        ("bulk read-mostly service, medium load",
         dict(load="medium", objective="throughput")),
        ("overloaded cluster", dict(load="high")),
    ]
    for label, kwargs in scenarios:
        rec = recommend("online", **kwargs)
        print(f"  {label:40s} -> {rec.algorithm.upper():7s} "
              f"({' -> '.join(rec.path)})")


if __name__ == "__main__":
    main()
