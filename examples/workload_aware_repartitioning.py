"""Workload-aware repartitioning (the paper's Figure 8 methodology).

1. Serve a skewed 1-hop workload from a hash-partitioned cluster and
   *record* per-vertex access counts.
2. Re-partition the graph with the multilevel partitioner, balancing on
   the recorded access weights instead of vertex counts.
3. Serve the same workload again and compare throughput and the relative
   standard deviation of per-worker load.

Run:  python examples/workload_aware_repartitioning.py
"""

from repro.database import (
    WorkloadGenerator,
    plan_query,
    record_workload,
    simulate_workload,
)
from repro.graph.generators import ldbc_like
from repro.metrics import relative_standard_deviation
from repro.partitioning import make_partitioner, workload_aware_partition

NUM_WORKERS = 16


def serve(graph, partition, bindings, label):
    result = simulate_workload(graph, partition, bindings,
                               clients_per_worker=12, duration=1.0)
    rsd = relative_standard_deviation(result.read_distribution())
    print(f"{label:24s} throughput={result.throughput:8,.0f} q/s   "
          f"load RSD={rsd:.3f}")
    return result


def main() -> None:
    graph = ldbc_like(num_vertices=8_000, avg_degree=20, seed=3)
    generator = WorkloadGenerator(graph, skew=0.7, seed=5)
    bindings = generator.bindings("one_hop", 600)

    # Step 0: baselines.
    mts = make_partitioner("mts").partition(graph, NUM_WORKERS, seed=42)
    serve(graph, make_partitioner("ecr").partition(graph, NUM_WORKERS),
          bindings, "hash (ECR)")
    serve(graph, mts, bindings, "multilevel (MTS)")

    # Step 1: record the workload's access pattern.
    plans = [plan_query(graph, b.kind, b.start_vertex) for b in bindings]
    log = record_workload(graph, plans)
    hot = log.hot_vertices(3)
    print(f"\nrecorded {log.queries_recorded} queries; hottest vertices "
          f"{hot.tolist()} with {log.vertex_reads[hot].tolist()} reads\n")

    # Steps 2-3: weighted repartitioning, same workload.
    weighted = workload_aware_partition(graph, NUM_WORKERS,
                                        log.vertex_reads, seed=42)
    serve(graph, weighted, bindings, "workload-aware (MTS-W)")
    print("\nThe weighted partitioning balances *accesses*, not vertices —"
          "\nthe paper measured 13-35% higher throughput from exactly this"
          "\nrecipe (Section 6.3.3, Figure 8).")


if __name__ == "__main__":
    main()
