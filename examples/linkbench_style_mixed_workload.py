"""LinkBench-style mixed read/write workload on a growing graph.

The paper motivates its online experiments with Facebook's LinkBench —
a workload of mostly 1-hop reads plus a steady stream of writes.  This
example runs the full dynamic loop the library supports:

1. serve a 75% read / 25% insert mix from a simulated cluster;
2. apply the inserts (triadic-closure friendships) to grow the graph;
3. place the *new* edges' effect on partition quality side by side for a
   stale partitioning, a Hermes-refined one, and a re-stream.

Run:  python examples/linkbench_style_mixed_workload.py
"""

from repro.database import (
    GraphMutationLog,
    WorkloadGenerator,
    mixed_read_write_bindings,
    simulate_workload,
)
from repro.graph.generators import ldbc_like
from repro.metrics import edge_cut_ratio
from repro.partitioning import LdgPartitioner, hermes_refine

NUM_WORKERS = 16


def main() -> None:
    graph = ldbc_like(num_vertices=8_000, avg_degree=18, seed=77)
    generator = WorkloadGenerator(graph, skew=0.6, seed=9)
    bindings, inserts = mixed_read_write_bindings(
        generator, count=800, write_fraction=0.25)
    reads = sum(1 for b in bindings if b.kind == "one_hop")
    print(f"workload: {reads} 1-hop reads + {len(inserts)} edge inserts "
          f"on {graph.name} ({graph.num_edges:,} edges)\n")

    # 1. Serve the mixed workload.
    partition = LdgPartitioner(seed=0).partition(graph, NUM_WORKERS,
                                                 order="natural", seed=1)
    result = simulate_workload(graph, partition, bindings,
                               clients_per_worker=12, duration=1.0)
    latency = result.latency()
    print(f"served {result.completed_queries:,} operations at "
          f"{result.throughput:,.0f} op/s "
          f"(mean {latency.mean * 1e3:.1f}ms, p99 {latency.p99 * 1e3:.1f}ms)\n")

    # 2. Apply the writes: the graph grows.
    log = GraphMutationLog(graph)
    for src, dst in inserts:
        log.insert_edge(src, dst)
    grown = log.materialize()
    print(f"applied {log.num_inserts} inserts: "
          f"{graph.num_edges:,} -> {grown.num_edges:,} edges")

    # 3. How did the partitioning age, and what does refinement recover?
    stale_cut = edge_cut_ratio(grown, partition)
    refined = hermes_refine(grown, partition, seed=3)
    restreamed = LdgPartitioner(seed=0).partition(grown, NUM_WORKERS,
                                                  order="natural", seed=1)
    print(f"edge-cut on grown graph: stale {stale_cut:.3f}  ->  "
          f"hermes-refined {edge_cut_ratio(grown, refined):.3f}  "
          f"(full re-stream: {edge_cut_ratio(grown, restreamed):.3f})")
    print("\nTakeaway: a write-heavy workload ages the partitioning, and "
          "in-place refinement\nrecovers the cut without the cost of "
          "re-partitioning — the Hermes/Leopard story\nthe paper's "
          "Section 2 points to.")


if __name__ == "__main__":
    main()
