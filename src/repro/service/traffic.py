"""Seed-deterministic interleaved mutation + query traffic.

Each epoch's traffic is a pure function of ``(config.seed, epoch,
current graph)``: mutation kinds are drawn from the configured mix,
edge-insert endpoints follow degree popularity with triadic-closure
targets (mirroring :func:`repro.database.mutations.
mixed_read_write_bindings`), deletes pick live edges uniformly, new
vertices arrive with a popularity-sampled neighbourhood, and query
bindings come from the standard :class:`~repro.database.workload.
WorkloadGenerator` with Zipf-skewed start vertices.  Determinism per
epoch (not per run position) means shedding one epoch's overflow never
perturbs the next epoch's offered load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.database.workload import QueryBinding, WorkloadGenerator
from repro.graph.digraph import Graph
from repro.rng import make_rng
from repro.service.config import ServiceConfig

#: Salt separating the mutation stream from the query stream per epoch.
_MUTATION_SALT = 0x5EED
_QUERY_SALT = 0xB1D5


@dataclass(frozen=True)
class Mutation:
    """One mutation in the offered stream.

    ``kind`` is one of :data:`repro.database.mutations.MUTATION_KINDS`
    plus ``add_vertex`` (a new entity arriving with initial edges to
    ``neighbors``).
    """

    kind: str
    u: int = -1
    v: int = -1
    neighbors: tuple[int, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class EpochTraffic:
    """The offered load of one epoch, before admission control."""

    epoch: int
    mutations: tuple[Mutation, ...]
    bindings: tuple[QueryBinding, ...]


def _epoch_seed(seed: int, epoch: int, salt: int) -> int:
    """Stable scalar seed for one epoch's stream."""
    return (seed * 1_000_003 + epoch) * 2_654_435_761 + salt


class TrafficModel:
    """Generates one :class:`EpochTraffic` per epoch from the live graph."""

    def __init__(self, config: ServiceConfig):
        self.config = config

    # ------------------------------------------------------------------
    def epoch_traffic(self, graph: Graph, epoch: int) -> EpochTraffic:
        config = self.config
        mutations = self._mutations(graph, epoch)
        rng_seed = _epoch_seed(config.seed, epoch, _QUERY_SALT)
        generator = WorkloadGenerator(graph, skew=config.workload_skew,
                                      min_degree=1, seed=rng_seed)
        bindings = tuple(generator.mixed_bindings(
            {"one_hop": 0.75, "two_hop": 0.25},
            count=config.query_bindings_per_epoch))
        return EpochTraffic(epoch=epoch, mutations=mutations,
                            bindings=bindings)

    # ------------------------------------------------------------------
    def _mutations(self, graph: Graph, epoch: int) -> tuple[Mutation, ...]:
        config = self.config
        count = config.mutations_per_epoch
        if count == 0:
            return ()
        rng = make_rng(_epoch_seed(config.seed, epoch, _MUTATION_SALT))
        mix = np.array([config.edge_add_fraction,
                        config.edge_delete_fraction,
                        config.vertex_add_fraction,
                        config.vertex_remove_fraction,
                        config.update_fraction], dtype=np.float64)
        mix = mix / mix.sum()
        kinds = rng.choice(5, size=count, p=mix)
        degree = graph.degree.astype(np.float64)
        popularity = degree + 1.0
        popularity /= popularity.sum()
        out: list[Mutation] = []
        for kind_index in kinds.tolist():
            if kind_index == 0:
                out.append(self._edge_add(graph, rng, popularity))
            elif kind_index == 1:
                out.append(self._edge_delete(graph, rng, popularity))
            elif kind_index == 2:
                out.append(self._vertex_add(graph, rng, popularity))
            elif kind_index == 3:
                out.append(Mutation(
                    "remove_vertex",
                    u=int(rng.integers(0, graph.num_vertices))))
            else:
                out.append(Mutation(
                    "update_vertex",
                    u=int(rng.choice(graph.num_vertices, p=popularity))))
        return tuple(out)

    def _edge_add(self, graph: Graph, rng,
                  popularity: np.ndarray) -> Mutation:
        src = int(rng.choice(graph.num_vertices, p=popularity))
        dst = int(rng.choice(graph.num_vertices, p=popularity))
        friends = graph.neighbors(src)
        if friends.size:
            # Triadic closure: prefer a friend-of-a-friend.
            friend = int(friends[rng.integers(0, friends.size)])
            candidates = graph.neighbors(friend)
            candidates = candidates[candidates != src]
            if candidates.size:
                dst = int(candidates[rng.integers(0, candidates.size)])
        return Mutation("insert_edge", u=src, v=dst)

    def _edge_delete(self, graph: Graph, rng,
                     popularity: np.ndarray) -> Mutation:
        if graph.num_edges == 0:
            # Nothing to delete: degrade to a property update.
            return Mutation(
                "update_vertex",
                u=int(rng.choice(graph.num_vertices, p=popularity)))
        eid = int(rng.integers(0, graph.num_edges))
        return Mutation("delete_edge", u=int(graph.src[eid]),
                        v=int(graph.dst[eid]))

    def _vertex_add(self, graph: Graph, rng,
                    popularity: np.ndarray) -> Mutation:
        fanout = int(rng.integers(1, 4))
        neighbors = rng.choice(graph.num_vertices, size=fanout,
                               replace=False, p=popularity)
        return Mutation("add_vertex",
                        neighbors=tuple(int(n) for n in neighbors.tolist()))
