"""Configuration of the online partitioning service.

One frozen dataclass holds every knob of the service loop — traffic mix,
drift thresholds, migration budget and bandwidth, backpressure bounds,
fault-schedule composition — so a service run is fully described by
``(base graph, ServiceConfig)`` and therefore seed-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.faults import FaultSchedule


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of one :class:`~repro.service.PartitionedGraphService` run.

    Attributes
    ----------
    num_partitions:
        Cluster size; doubles as the worker count of the per-epoch query
        simulation.
    epochs / epoch_duration:
        The service advances simulated time in epochs: each epoch applies
        admitted mutations, serves ``epoch_duration`` seconds of
        closed-loop queries, then evaluates drift.
    mutations_per_epoch:
        Offered write load per epoch (before admission control).
    edge_add_fraction / edge_delete_fraction / vertex_add_fraction /
    vertex_remove_fraction:
        Mutation mix; the remainder is vertex property updates.
    query_bindings_per_epoch:
        Distinct query bindings generated per epoch (closed-loop clients
        cycle through them for the whole epoch).
    drift_threshold:
        Drift score at which the monitor fires (see
        :class:`~repro.service.drift.DriftMonitor`).  ``None`` disables
        drift-triggered migration entirely — the incremental-only mode.
    imbalance_weight:
        Weight of the load-imbalance term in the drift score.
    migration_budget:
        Maximum vertices moved per migration event (the ``max_moves``
        handed to :func:`~repro.partitioning.dynamic.hermes_refine`).
        ``0`` also disables migration.
    migration_batch_vertices / migration_bandwidth_bytes_per_second /
    state_bytes_per_vertex:
        Rate limiting: a migration ships in batches of at most
        ``migration_batch_vertices`` vertices, each charging
        ``vertices x state_bytes / bandwidth`` seconds of worker time
        into the query simulation of the *next* epoch.
    migration_wait_seconds:
        Retry wait paid by a query whose start vertex is double-homed
        mid-move.
    migration_cooldown_epochs:
        Minimum epochs between two migration triggers.
    mutation_queue_bound / mutation_service_rate:
        Admission control: at most ``mutation_queue_bound`` writes may be
        queued; overflow is shed (writes shed before reads, and counted).
        Up to ``mutation_service_rate`` queued writes are applied per
        epoch.
    read_queue_bound:
        Reads are shed only past this (much larger) bound — under nominal
        load zero reads are ever dropped.
    fault_schedule:
        Optional global :class:`~repro.faults.FaultSchedule`; each epoch
        sees its window, so worker failures and drift-triggered migration
        compose in one run.
    slo_sampling:
        Sample the service registry into per-epoch
        :class:`~repro.telemetry.timeseries.MetricSample` records and
        evaluate SLO burn rates over them (``docs/slo.md``).  Sampling
        never enters :meth:`~repro.service.core.ServiceResult.timeline`
        — digests are identical with it on or off.  ``False`` restores
        the zero-overhead contract: no extra registry calls at all.
    slos:
        The objectives to evaluate; ``None`` means
        :func:`~repro.telemetry.slo.default_service_slos`.
    slo_degradation:
        Feed page alerts back into admission control: while any SLO
        pages, the next epoch's mutation queue bound is multiplied by
        ``degraded_queue_fraction``.  Default **off** — turning it on
        changes shed counts and therefore the digest.
    degraded_queue_fraction:
        The admission multiplier applied while paging (in ``(0, 1]``).
    """

    num_partitions: int = 8
    epochs: int = 12
    epoch_duration: float = 0.25
    clients_per_worker: int = 4
    seed: int = 7
    # Traffic.
    mutations_per_epoch: int = 400
    query_bindings_per_epoch: int = 50
    workload_skew: float = 0.6
    edge_add_fraction: float = 0.55
    edge_delete_fraction: float = 0.15
    vertex_add_fraction: float = 0.12
    vertex_remove_fraction: float = 0.05
    # Drift detection.
    drift_threshold: float | None = 0.02
    imbalance_weight: float = 0.25
    migration_cooldown_epochs: int = 1
    # Bounded migration.
    migration_budget: int = 300
    migration_batch_vertices: int = 64
    state_bytes_per_vertex: float = 512.0
    migration_bandwidth_bytes_per_second: float = 2.0e6
    migration_wait_seconds: float = 2.0e-3
    balance_slack: float = 1.1
    refine_passes: int = 4
    # Graceful degradation.
    mutation_queue_bound: int = 1000
    mutation_service_rate: int = 400
    read_queue_bound: int = 100_000
    # Fault composition.
    k_safety: int = 2
    fault_schedule: FaultSchedule | None = None
    # Observability (docs/slo.md).
    slo_sampling: bool = True
    slos: tuple | None = None
    slo_degradation: bool = False
    degraded_queue_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.epoch_duration <= 0:
            raise ConfigurationError("epoch_duration must be positive")
        if self.clients_per_worker < 1:
            raise ConfigurationError("clients_per_worker must be >= 1")
        if self.mutations_per_epoch < 0:
            raise ConfigurationError("mutations_per_epoch must be >= 0")
        if self.query_bindings_per_epoch < 1:
            raise ConfigurationError("query_bindings_per_epoch must be >= 1")
        fractions = (self.edge_add_fraction, self.edge_delete_fraction,
                     self.vertex_add_fraction, self.vertex_remove_fraction)
        if any(not 0.0 <= f <= 1.0 for f in fractions) or sum(fractions) > 1.0:
            raise ConfigurationError(
                "mutation mix fractions must lie in [0, 1] and sum to <= 1 "
                "(the remainder is vertex updates)")
        if self.drift_threshold is not None and self.drift_threshold < 0:
            raise ConfigurationError("drift_threshold must be >= 0 or None")
        if self.imbalance_weight < 0:
            raise ConfigurationError("imbalance_weight must be >= 0")
        if self.migration_budget < 0:
            raise ConfigurationError("migration_budget must be >= 0")
        if self.migration_batch_vertices < 1:
            raise ConfigurationError("migration_batch_vertices must be >= 1")
        if self.state_bytes_per_vertex <= 0:
            raise ConfigurationError("state_bytes_per_vertex must be positive")
        if self.migration_bandwidth_bytes_per_second <= 0:
            raise ConfigurationError(
                "migration_bandwidth_bytes_per_second must be positive")
        if self.migration_wait_seconds < 0:
            raise ConfigurationError("migration_wait_seconds must be >= 0")
        if self.migration_cooldown_epochs < 0:
            raise ConfigurationError("migration_cooldown_epochs must be >= 0")
        if self.balance_slack < 1.0:
            raise ConfigurationError("balance_slack must be >= 1")
        if self.refine_passes < 1:
            raise ConfigurationError("refine_passes must be >= 1")
        if self.mutation_queue_bound < 0:
            raise ConfigurationError("mutation_queue_bound must be >= 0")
        if self.mutation_service_rate < 1:
            raise ConfigurationError("mutation_service_rate must be >= 1")
        if self.read_queue_bound < 1:
            raise ConfigurationError("read_queue_bound must be >= 1")
        if self.k_safety < 1:
            raise ConfigurationError("k_safety must be >= 1")
        if self.slo_degradation and not self.slo_sampling:
            raise ConfigurationError(
                "slo_degradation needs slo_sampling=True — the hook is "
                "driven by the sampled burn rates")
        if not 0.0 < self.degraded_queue_fraction <= 1.0:
            raise ConfigurationError(
                "degraded_queue_fraction must lie in (0, 1]")
        if self.slos is not None and len(self.slos) == 0:
            raise ConfigurationError(
                "slos must be None (defaults) or a non-empty tuple")

    @property
    def update_fraction(self) -> float:
        """The vertex-update share (whatever the explicit mix leaves)."""
        return 1.0 - (self.edge_add_fraction + self.edge_delete_fraction
                      + self.vertex_add_fraction + self.vertex_remove_fraction)

    @property
    def migration_enabled(self) -> bool:
        """True when drift can ever trigger a repartitioning."""
        return self.drift_threshold is not None and self.migration_budget > 0
