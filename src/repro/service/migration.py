"""Bounded repartitioning: plan, batch, and price a migration.

When the drift monitor fires, the service refines the live placement
with :func:`~repro.partitioning.dynamic.hermes_refine` under a
``max_moves`` budget, diffs the refined assignment against the current
one, and turns the moved vertices into rate-limited batches.  Each batch
ships ``vertices x state_bytes`` over the migration bandwidth and
charges the resulting seconds to both the sending and the receiving
worker inside the *next* epoch's query simulation — the arXiv 1310.8211
framing: the cut improvement is bought at an explicit, simulated price,
and because batches are bounded they delay queries without ever
stalling them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import Graph
from repro.partitioning.base import VertexPartition
from repro.partitioning.dynamic import hermes_refine
from repro.service.config import ServiceConfig

#: Salt separating refinement randomness from the traffic streams.
_REFINE_SALT = 0x4EF1


@dataclass(frozen=True)
class MigrationBatch:
    """One rate-limited shipment of vertex state."""

    #: Offset within the executing epoch at which the batch starts.
    offset: float
    vertices: tuple[int, ...]
    #: Seconds of server time charged to each participating worker.
    seconds_per_worker: tuple[tuple[int, float], ...]


@dataclass(frozen=True)
class MigrationPlan:
    """A bounded repartitioning, ready to execute over one epoch."""

    trigger_epoch: int
    vertices: np.ndarray
    targets: np.ndarray
    sources: np.ndarray
    batches: tuple[MigrationBatch, ...]
    cut_before: float
    cut_after: float

    @property
    def num_vertices_moved(self) -> int:
        return int(self.vertices.size)

    def state_bytes(self, state_bytes_per_vertex: float) -> float:
        return self.num_vertices_moved * state_bytes_per_vertex


@dataclass(frozen=True)
class MigrationEvent:
    """The record of one executed migration (for the drift timeline)."""

    trigger_epoch: int
    execute_epoch: int
    vertices_moved: int
    num_batches: int
    bytes_shipped: float
    busy_seconds_charged: float
    cut_before: float
    cut_after: float


def plan_migration(graph: Graph, partition: VertexPartition,
                   config: ServiceConfig,
                   trigger_epoch: int) -> MigrationPlan | None:
    """Refine under budget and batch the moves; None when nothing moves."""
    from repro.metrics.quality import edge_cut_ratio

    refined = hermes_refine(
        graph, partition,
        balance_slack=config.balance_slack,
        max_passes=config.refine_passes,
        max_moves=config.migration_budget,
        seed=(config.seed * 1_000_003 + trigger_epoch) + _REFINE_SALT)
    moved = np.flatnonzero(refined.assignment != partition.assignment)
    if moved.size == 0:
        return None
    targets = refined.assignment[moved].astype(np.int64)
    sources = partition.assignment[moved].astype(np.int64)
    batches = _build_batches(moved, sources, targets, config)
    return MigrationPlan(
        trigger_epoch=trigger_epoch,
        vertices=moved,
        targets=targets,
        sources=sources,
        batches=batches,
        cut_before=edge_cut_ratio(graph, partition),
        cut_after=edge_cut_ratio(graph, refined),
    )


def _build_batches(moved: np.ndarray, sources: np.ndarray,
                   targets: np.ndarray,
                   config: ServiceConfig) -> tuple[MigrationBatch, ...]:
    """Chunk the moves (vertex-id order) and spread them across the epoch.

    Batch ``i`` of ``B`` starts at offset ``i / B * epoch_duration`` —
    evenly spaced, so the query path always finds free server time
    between shipments (rate limiting, not a stop-the-world pause).
    """
    batch_size = config.migration_batch_vertices
    per_vertex_seconds = (config.state_bytes_per_vertex
                          / config.migration_bandwidth_bytes_per_second)
    num_batches = int(np.ceil(moved.size / batch_size))
    batches: list[MigrationBatch] = []
    for index in range(num_batches):
        lo, hi = index * batch_size, min((index + 1) * batch_size,
                                         moved.size)
        chunk = slice(lo, hi)
        # Seconds per worker: a worker pays for every vertex it sends
        # plus every vertex it receives in this batch.
        load = np.bincount(sources[chunk],
                           minlength=config.num_partitions).astype(np.float64)
        load += np.bincount(targets[chunk],
                            minlength=config.num_partitions)
        seconds = tuple(
            (int(worker), float(load[worker] * per_vertex_seconds))
            for worker in np.flatnonzero(load > 0).tolist())
        offset = index / num_batches * config.epoch_duration
        batches.append(MigrationBatch(
            offset=offset,
            vertices=tuple(int(v) for v in moved[chunk].tolist()),
            seconds_per_worker=seconds))
    return tuple(batches)
