"""Partition-quality drift detection over simulated time.

The monitor tracks the three quality metrics of
:mod:`repro.metrics.quality` against a baseline snapshot taken at start
(and re-taken after every migration): edge-cut fraction (Eq. 3), load
imbalance, and the replication factor of the induced edge placement
(out-edges live with their source's owner, the Appendix-B storage
layout, so the vertex-cut metric measures how many partitions hold a
vertex's incident edges).  The drift *score* is the cut's degradation
plus a weighted imbalance degradation; migration fires when the score
crosses the configured threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.metrics.quality import (
    edge_cut_ratio,
    load_imbalance,
    replication_factor,
)
from repro.partitioning.base import EdgePartition, VertexPartition


@dataclass(frozen=True)
class DriftSample:
    """One drift observation at the end of an epoch."""

    epoch: int
    time: float
    edge_cut: float
    imbalance: float
    replication: float
    drift: float
    fired: bool


def quality_snapshot(graph: Graph,
                     partition: VertexPartition) -> tuple[float, float, float]:
    """(edge-cut ratio, load imbalance, replication factor) of a placement."""
    cut = edge_cut_ratio(graph, partition)
    imbalance = load_imbalance(partition.sizes())
    if graph.num_edges:
        induced = EdgePartition(partition.num_partitions,
                                partition.assignment[graph.src],
                                algorithm=partition.algorithm)
        replication = replication_factor(graph, induced)
    else:
        replication = 1.0
    return cut, imbalance, replication


class DriftMonitor:
    """Threshold trigger over partition-quality drift.

    Parameters
    ----------
    threshold:
        Drift score at which :meth:`observe` reports ``fired=True``;
        ``None`` never fires (incremental-only mode).
    imbalance_weight:
        Weight of the imbalance term:
        ``drift = max(0, cut - cut0) + weight * max(0, imb - imb0)``.
    """

    def __init__(self, threshold: float | None = 0.04,
                 imbalance_weight: float = 0.25):
        if threshold is not None and threshold < 0:
            raise ConfigurationError("threshold must be >= 0 or None")
        if imbalance_weight < 0:
            raise ConfigurationError("imbalance_weight must be >= 0")
        self.threshold = threshold
        self.imbalance_weight = imbalance_weight
        self._baseline_cut = 0.0
        self._baseline_imbalance = 1.0

    @property
    def baseline(self) -> tuple[float, float]:
        """(edge-cut ratio, load imbalance) the monitor drifts against."""
        return self._baseline_cut, self._baseline_imbalance

    def rebase(self, graph: Graph, partition: VertexPartition) -> None:
        """Take a fresh quality baseline (at start and after migration)."""
        cut, imbalance, _ = quality_snapshot(graph, partition)
        self._baseline_cut = cut
        self._baseline_imbalance = imbalance

    def observe(self, epoch: int, time: float, graph: Graph,
                partition: VertexPartition) -> DriftSample:
        """Measure quality and report whether the threshold is crossed."""
        cut, imbalance, replication = quality_snapshot(graph, partition)
        drift = max(0.0, cut - self._baseline_cut) \
            + self.imbalance_weight \
            * max(0.0, imbalance - self._baseline_imbalance)
        fired = self.threshold is not None and drift >= self.threshold
        return DriftSample(epoch=epoch, time=time, edge_cut=cut,
                           imbalance=imbalance, replication=replication,
                           drift=drift, fired=fired)
