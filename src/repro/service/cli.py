"""``python -m repro serve-sim`` — run the online partitioning service.

Builds a synthetic social graph, runs the seeded service loop, and
prints the drift timeline: per-epoch quality, shed counters, query
latency, and every bounded migration with its cost.  ``--json`` dumps
the canonical timeline (the digest's input) for scripting and the CI
smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.config import ServiceConfig
from repro.service.core import PartitionedGraphService, ServiceResult


def build_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        num_partitions=args.partitions,
        epochs=args.epochs,
        epoch_duration=args.epoch_duration,
        seed=args.seed,
        mutations_per_epoch=args.mutations_per_epoch,
        query_bindings_per_epoch=args.bindings_per_epoch,
        drift_threshold=None if args.no_migration else args.drift_threshold,
        migration_budget=args.migration_budget,
        mutation_queue_bound=args.queue_bound,
        mutation_service_rate=args.service_rate,
    )


def render(result: ServiceResult) -> str:
    lines = ["epoch  cut    imbal  drift   fired  applied  shedW  "
             "completed  failed  p99(ms)"]
    for record, sample in zip(result.epochs, result.drift):
        lines.append(
            f"{record.epoch:5d}  {sample.edge_cut:.3f}  "
            f"{sample.imbalance:.3f}  {sample.drift:.4f}  "
            f"{'yes' if sample.fired else 'no ':3}    "
            f"{record.applied_mutations:7d}  {record.shed_writes:5d}  "
            f"{record.completed_queries:9d}  {record.failed_queries:6d}  "
            f"{record.p99_latency_ms:7.2f}")
    for event in result.migrations:
        lines.append(
            f"migration: triggered epoch {event.trigger_epoch}, executed "
            f"epoch {event.execute_epoch}: {event.vertices_moved} vertices "
            f"in {event.num_batches} batches, "
            f"{event.bytes_shipped / 1024:.0f} KiB shipped, cut "
            f"{event.cut_before:.3f} -> {event.cut_after:.3f}")
    lines.append(
        f"totals: {result.total_completed_queries} completed, "
        f"{result.total_failed_queries} failed, "
        f"{result.shed_writes} writes shed, {result.shed_reads} reads "
        f"shed, {result.vertices_migrated} vertices migrated")
    lines.append(f"digest: {result.digest()}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve-sim",
        description="Run the online partitioning service simulation "
                    "(drift detection, bounded migration, graceful "
                    "degradation).")
    parser.add_argument("--vertices", type=int, default=2000,
                        help="synthetic graph size (default 2000)")
    parser.add_argument("--avg-degree", type=float, default=12.0)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--epoch-duration", type=float, default=0.25,
                        metavar="SECONDS")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--mutations-per-epoch", type=int, default=600)
    parser.add_argument("--bindings-per-epoch", type=int, default=50)
    parser.add_argument("--drift-threshold", type=float, default=0.02)
    parser.add_argument("--migration-budget", type=int, default=300,
                        help="max vertices moved per migration event")
    parser.add_argument("--queue-bound", type=int, default=1000,
                        help="mutation admission bound (writes shed past it)")
    parser.add_argument("--service-rate", type=int, default=400,
                        help="mutations applied per epoch")
    parser.add_argument("--no-migration", action="store_true",
                        help="disable drift-triggered migration "
                             "(incremental placement only)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the canonical timeline JSON to PATH "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    from repro.errors import ConfigurationError
    from repro.graph.generators import ldbc_like

    try:
        config = build_config(args)
        graph = ldbc_like(num_vertices=args.vertices,
                          avg_degree=args.avg_degree, seed=args.seed)
    except ConfigurationError as error:
        print(f"serve-sim: {error}", file=sys.stderr)
        return 2
    result = PartitionedGraphService(graph, config=config).run()

    if args.json:
        payload = json.dumps(result.timeline(), indent=2, sort_keys=True)
        if args.json == "-":
            # Keep stdout pure JSON so the output pipes into a parser;
            # the human timeline goes to stderr instead.
            print(payload)
            print(render(result), file=sys.stderr)
            return 0
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"[timeline written to {args.json}]")
    print(render(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
