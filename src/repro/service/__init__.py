"""repro.service — the online partitioning service (ROADMAP item #1).

A long-lived :class:`PartitionedGraphService` consumes an interleaved,
seed-deterministic stream of mutations and queries, places new arrivals
incrementally, watches partition quality drift over simulated time, and
— past a configurable threshold — repartitions *under a migration
budget*, charging the state transfer into the query simulation so the
cut improvement is bought at an honest latency price.  Robustness is
the design goal: bounded queues shed writes before reads, migration
ships in rate-limited batches that never stall the query path, queries
racing a move pay a bounded retry wait, and the global
:class:`~repro.faults.FaultSchedule` composes with all of it.

See ``docs/online_service.md`` for the drift metrics, budget semantics
and backpressure policy; ``python -m repro serve-sim`` runs a scenario
from the command line.
"""

from repro.service.config import ServiceConfig
from repro.service.core import EpochRecord, PartitionedGraphService, ServiceResult
from repro.service.drift import DriftMonitor, DriftSample, quality_snapshot
from repro.service.migration import (
    MigrationBatch,
    MigrationEvent,
    MigrationPlan,
    plan_migration,
)
from repro.service.traffic import EpochTraffic, Mutation, TrafficModel

#: Every telemetry span name the service may emit (reprolint RL106
#: checks that emitted literals stay within this registry).
SPAN_NAMES = (
    "service.run",
    "service.epoch",
    "service.mutation",
    "service.migration",
    "service.shed",
)

__all__ = [
    "ServiceConfig",
    "PartitionedGraphService",
    "ServiceResult",
    "EpochRecord",
    "DriftMonitor",
    "DriftSample",
    "quality_snapshot",
    "MigrationBatch",
    "MigrationEvent",
    "MigrationPlan",
    "plan_migration",
    "EpochTraffic",
    "Mutation",
    "TrafficModel",
    "SPAN_NAMES",
]
