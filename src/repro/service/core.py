"""The long-lived online partitioning service.

:class:`PartitionedGraphService` is the tentpole of the robustness
milestone (ROADMAP open item #1): a store that keeps serving queries
*while* the graph mutates under it.  Simulated time advances in epochs;
each epoch

1. generates the offered load (:mod:`repro.service.traffic`),
2. applies **admission control** — the mutation queue is bounded, and on
   overflow writes are shed (and counted) before any read is touched,
3. applies the admitted mutations (new vertices placed incrementally by
   :class:`~repro.partitioning.dynamic.IncrementalEdgeCutPartitioner`,
   edge/vertex churn replayed through the
   :class:`~repro.database.mutations.GraphMutationLog`),
4. serves ``epoch_duration`` seconds of closed-loop queries through the
   DES (:mod:`repro.database.simulation`) — composed with the window of
   the global fault schedule, with any in-flight migration batches
   occupying workers, and with double-homed vertices paying a bounded
   retry wait,
5. observes partition-quality drift (:mod:`repro.service.drift`) and,
   past the threshold, plans a **bounded migration**
   (:mod:`repro.service.migration`) that executes — rate-limited — over
   the next epoch.

Every decision is a pure function of ``(base graph, ServiceConfig)``:
two runs with the same seed produce byte-identical drift timelines,
migration events and shed counters (:meth:`ServiceResult.digest`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.database.simulation import ClosedLoopSimulation
from repro.graph.digraph import Graph
from repro.partitioning.base import VertexPartition
from repro.partitioning.dynamic import IncrementalEdgeCutPartitioner
from repro.partitioning.registry import make_partitioner
from repro.service.config import ServiceConfig
from repro.service.drift import DriftMonitor, DriftSample
from repro.service.migration import (
    MigrationEvent,
    MigrationPlan,
    plan_migration,
)
from repro.service.traffic import Mutation, TrafficModel
from repro.telemetry import get_tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import AlertEvent, SloEvaluator, default_service_slos
from repro.telemetry.timeseries import MetricSample, TimeSeriesSampler
from repro.tools import sanitize


@dataclass(frozen=True)
class EpochRecord:
    """Service-level outcome of one epoch."""

    epoch: int
    time: float
    offered_mutations: int
    applied_mutations: int
    pending_mutations: int
    shed_writes: int
    shed_reads: int
    completed_queries: int
    failed_queries: int
    timeouts: int
    retries: int
    migration_waits: int
    mean_latency_ms: float
    p99_latency_ms: float
    num_vertices: int
    num_edges: int


@dataclass
class ServiceResult:
    """Everything one service run produced, digestable for regression.

    The observability surfaces (``samples``/``alerts``/``slo_status``)
    are deliberately **not** part of :meth:`timeline` — :meth:`digest`
    stays byte-identical whether sampling is on or off; they get their
    own canonical view (:meth:`observability`) and digest.
    """

    drift: list[DriftSample]
    migrations: list[MigrationEvent]
    epochs: list[EpochRecord]
    shed_writes: int
    shed_reads: int
    final_assignment: np.ndarray
    metrics: MetricsRegistry
    samples: list[MetricSample] = field(default_factory=list)
    alerts: list[AlertEvent] = field(default_factory=list)
    slo_status: dict | None = None

    @property
    def total_completed_queries(self) -> int:
        return sum(r.completed_queries for r in self.epochs)

    @property
    def total_failed_queries(self) -> int:
        return sum(r.failed_queries for r in self.epochs)

    @property
    def vertices_migrated(self) -> int:
        return sum(m.vertices_moved for m in self.migrations)

    def timeline(self) -> dict:
        """Canonical JSON-ready view of the run (drives :meth:`digest`)."""
        return {
            "drift": [asdict(s) for s in self.drift],
            "migrations": [asdict(m) for m in self.migrations],
            "epochs": [asdict(r) for r in self.epochs],
            "shed": {"writes": self.shed_writes, "reads": self.shed_reads},
            "final_assignment_digest": hashlib.sha256(
                np.ascontiguousarray(self.final_assignment,
                                     dtype=np.int32).tobytes()
            ).hexdigest()[:16],
        }

    def digest(self) -> str:
        """Stable hash over the full timeline — byte-identical per seed."""
        payload = json.dumps(self.timeline(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def observability(self) -> dict:
        """Canonical JSON-ready view of the sampled series, the alert
        log and the SLO budget state (empty when sampling was off)."""
        return {
            "samples": [s.to_dict() for s in self.samples],
            "alerts": [a.to_dict() for a in self.alerts],
            "slo": self.slo_status,
        }

    def observability_digest(self) -> str:
        """Stable hash over :meth:`observability` — the export-identity
        contract for same-seed runs."""
        payload = json.dumps(self.observability(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class PartitionedGraphService:
    """Serve queries over a live-mutating graph, migrating under budget.

    Parameters
    ----------
    base_graph:
        The bulk-loaded starting graph.
    config:
        All service knobs (defaults are the smoke scenario).
    base_partition:
        Optional starting placement; defaults to an LDG streaming pass
        seeded from the config.
    """

    def __init__(self, base_graph: Graph,
                 config: ServiceConfig | None = None,
                 base_partition: VertexPartition | None = None):
        from repro.database.mutations import GraphMutationLog

        self.config = config or ServiceConfig()
        if base_partition is None:
            # Seed both the streaming order *and* the tie-break rng —
            # the constructor seed covers the latter; an unseeded
            # partitioner would break same-seed digest identity.
            base_partition = make_partitioner(
                "ldg", seed=self.config.seed).partition(
                base_graph, self.config.num_partitions, order="natural",
                seed=self.config.seed)
        self._log = GraphMutationLog(base_graph)
        self._graph = base_graph
        self._incr = IncrementalEdgeCutPartitioner(
            base_partition, balance_slack=self.config.balance_slack,
            seed=self.config.seed)
        self._traffic = TrafficModel(self.config)
        self._monitor = DriftMonitor(
            threshold=self.config.drift_threshold,
            imbalance_weight=self.config.imbalance_weight)
        self._monitor.rebase(base_graph, base_partition)

    # ------------------------------------------------------------------
    def _apply_mutation(self, mutation: Mutation) -> None:
        log = self._log
        if mutation.kind == "insert_edge":
            log.insert_edge(mutation.u, mutation.v)
        elif mutation.kind == "delete_edge":
            log.delete_edge(mutation.u, mutation.v)
        elif mutation.kind == "update_vertex":
            pass  # Property updates do not change topology.
        elif mutation.kind == "remove_vertex":
            log.remove_vertex(mutation.u)
        else:  # "add_vertex": place incrementally, then link it in.
            vertex = log.add_vertex()
            self._incr.add_vertex(
                np.array(mutation.neighbors, dtype=np.int64),
                rng=self.config.seed * 1_000_003 + vertex)
            for neighbor in mutation.neighbors:
                log.insert_edge(vertex, neighbor)

    # ------------------------------------------------------------------
    def run(self) -> ServiceResult:
        """Run the configured number of epochs; returns the full record."""
        config = self.config
        tracer = get_tracer()
        tracing = tracer.enabled
        metrics = MetricsRegistry()
        c_applied = metrics.counter("service.mutations.applied")
        c_shed_writes = metrics.counter("service.shed.writes")
        c_shed_reads = metrics.counter("service.shed.reads")
        c_migrations = metrics.counter("service.migrations")
        c_moved = metrics.counter("service.migration.vertices")
        c_bytes = metrics.counter("service.migration.bytes")
        c_completed = metrics.counter("service.queries.completed")
        c_failed = metrics.counter("service.queries.failed")

        # Observability: sample the registry once per epoch and burn the
        # SLO budgets over the series.  With sampling off neither object
        # ever touches the registry (the zero-overhead contract), and
        # nothing here enters timeline()/digest() either way.
        sampling = config.slo_sampling
        sampler = TimeSeriesSampler(metrics, enabled=sampling)
        evaluator: SloEvaluator | None = None
        if sampling:
            evaluator = SloEvaluator(
                config.slos if config.slos is not None
                else default_service_slos(),
                horizon=config.epochs)
        alerts: list[AlertEvent] = []

        root = tracer.begin(
            "service.run", 0.0, parent=None,
            num_partitions=config.num_partitions,
            epochs=config.epochs, seed=config.seed) if tracing else 0

        drift_samples: list[DriftSample] = []
        migration_events: list[MigrationEvent] = []
        epoch_records: list[EpochRecord] = []
        pending: list[Mutation] = []
        inflight: MigrationPlan | None = None
        last_trigger = -(config.migration_cooldown_epochs + 1)
        global_faults = config.fault_schedule

        for epoch in range(config.epochs):
            t0 = epoch * config.epoch_duration
            t1 = t0 + config.epoch_duration
            epoch_span = tracer.begin("service.epoch", t0, parent=root,
                                      epoch=epoch) if tracing else 0
            graph = self._graph
            traffic = self._traffic.epoch_traffic(graph, epoch)

            # --- Admission control: bounded write queue, writes shed
            # --- before reads, everything shed is counted.  While any
            # --- SLO pages (and the hook is on), the bound tightens.
            queue_bound = config.mutation_queue_bound
            if (config.slo_degradation and evaluator is not None
                    and evaluator.paging()):
                queue_bound = int(queue_bound
                                  * config.degraded_queue_fraction)
            queue = pending + list(traffic.mutations)
            shed_writes = 0
            if len(queue) > queue_bound:
                shed_writes = len(queue) - queue_bound
                queue = queue[:queue_bound]
                c_shed_writes.inc(shed_writes)
            bindings = list(traffic.bindings)
            shed_reads = 0
            if len(bindings) > config.read_queue_bound:
                shed_reads = len(bindings) - config.read_queue_bound
                bindings = bindings[:config.read_queue_bound]
                c_shed_reads.inc(shed_reads)
            if tracing and (shed_writes or shed_reads):
                tracer.point("service.shed", t0, parent=epoch_span,
                             writes=shed_writes, reads=shed_reads,
                             queue_bound=queue_bound)

            # --- Apply up to the service rate from the queue head.
            apply_now = queue[:config.mutation_service_rate]
            pending = queue[config.mutation_service_rate:]
            for mutation in apply_now:
                self._apply_mutation(mutation)
            c_applied.inc(len(apply_now))
            if tracing:
                tracer.point("service.mutation", t0, parent=epoch_span,
                             applied=len(apply_now), queued=len(pending),
                             offered=len(traffic.mutations))
            if apply_now:
                graph = self._log.materialize()
                self._graph = graph
            self._incr.require_covers(graph)

            # --- In-flight migration: rate-limited batches become
            # --- background work; the moved vertices are double-homed.
            background: list[tuple[float, int, float]] = []
            migrating_vertices = None
            wait = 0.0
            if inflight is not None:
                for batch in inflight.batches:
                    for worker, seconds in batch.seconds_per_worker:
                        background.append((batch.offset, worker, seconds))
                migrating_vertices = inflight.vertices
                wait = config.migration_wait_seconds

            window = None
            if global_faults is not None and not global_faults.is_empty:
                window = global_faults.window(t0, config.epoch_duration)

            simulation = ClosedLoopSimulation(
                graph, self._incr.assignment, config.num_partitions,
                clients_per_worker=config.clients_per_worker,
                fault_schedule=window,
                k_safety=config.k_safety)
            outcome = simulation.run(
                bindings, duration=config.epoch_duration,
                warmup_fraction=0.0,
                background_work=background or None,
                migrating_vertices=migrating_vertices,
                migration_wait_seconds=wait)
            c_completed.inc(outcome.completed_queries)
            c_failed.inc(outcome.failed_queries)

            if inflight is not None:
                busy = sum(seconds
                           for batch in inflight.batches
                           for _, seconds in batch.seconds_per_worker)
                migration_events.append(MigrationEvent(
                    trigger_epoch=inflight.trigger_epoch,
                    execute_epoch=epoch,
                    vertices_moved=inflight.num_vertices_moved,
                    num_batches=len(inflight.batches),
                    bytes_shipped=inflight.state_bytes(
                        config.state_bytes_per_vertex),
                    busy_seconds_charged=busy,
                    cut_before=inflight.cut_before,
                    cut_after=inflight.cut_after))
                c_migrations.inc()
                c_moved.inc(inflight.num_vertices_moved)
                c_bytes.inc(inflight.state_bytes(
                    config.state_bytes_per_vertex))
                inflight = None

            # --- Drift observation on the epoch's final state.
            snapshot = self._incr.to_partition()
            if sanitize.ACTIVE:
                sanitize.check_sizes(snapshot.sizes(),
                                     "service.core.epoch_snapshot")
            sample = self._monitor.observe(epoch, t1, graph, snapshot)
            drift_samples.append(sample)

            if (sample.fired and config.migration_enabled
                    and inflight is None
                    and epoch - last_trigger > config.migration_cooldown_epochs
                    and epoch + 1 < config.epochs):
                plan = plan_migration(graph, snapshot, config, epoch)
                if plan is not None:
                    # Commit the new homes now (next epoch routes to
                    # them); the state transfer is charged next epoch.
                    self._incr.apply_moves(plan.vertices, plan.targets)
                    self._monitor.rebase(graph, self._incr.to_partition())
                    inflight = plan
                    last_trigger = epoch
                    if tracing:
                        tracer.point(
                            "service.migration", t1, parent=epoch_span,
                            trigger_epoch=epoch,
                            vertices=plan.num_vertices_moved,
                            batches=len(plan.batches),
                            cut_before=plan.cut_before,
                            cut_after=plan.cut_after)

            latency = outcome.latency()
            epoch_records.append(EpochRecord(
                epoch=epoch,
                time=t1,
                offered_mutations=len(traffic.mutations),
                applied_mutations=len(apply_now),
                pending_mutations=len(pending),
                shed_writes=shed_writes,
                shed_reads=shed_reads,
                completed_queries=outcome.completed_queries,
                failed_queries=outcome.failed_queries,
                timeouts=outcome.timeouts,
                retries=outcome.retries,
                migration_waits=int(
                    outcome.metrics.value("db.migration.waits")),
                mean_latency_ms=latency.mean * 1e3,
                p99_latency_ms=latency.p99 * 1e3,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges))

            if sampling:
                record = epoch_records[-1]
                gauge = metrics.gauge
                gauge("service.epoch.offered_mutations").set(
                    record.offered_mutations)
                gauge("service.epoch.applied_mutations").set(
                    record.applied_mutations)
                gauge("service.epoch.pending_mutations").set(
                    record.pending_mutations)
                gauge("service.epoch.shed_writes").set(record.shed_writes)
                gauge("service.epoch.shed_reads").set(record.shed_reads)
                gauge("service.epoch.completed_queries").set(
                    record.completed_queries)
                gauge("service.epoch.failed_queries").set(
                    record.failed_queries)
                gauge("service.epoch.timeouts").set(record.timeouts)
                gauge("service.epoch.retries").set(record.retries)
                gauge("service.epoch.migration_waits").set(
                    record.migration_waits)
                gauge("service.epoch.mean_latency_ms").set(
                    record.mean_latency_ms)
                gauge("service.epoch.p99_latency_ms").set(
                    record.p99_latency_ms)
                gauge("service.epoch.drift").set(sample.drift)
                gauge("service.epoch.edge_cut").set(sample.edge_cut)
                gauge("service.epoch.imbalance").set(sample.imbalance)
                gauge("service.epoch.num_vertices").set(record.num_vertices)
                gauge("service.epoch.num_edges").set(record.num_edges)
                metric_sample = sampler.sample(t1, index=epoch)
                assert metric_sample is not None and evaluator is not None
                alerts.extend(evaluator.observe(metric_sample))

            if tracing:
                tracer.end(epoch_span, t1,
                           completed=outcome.completed_queries,
                           applied=len(apply_now))

        if tracing:
            tracer.end(root, config.epochs * config.epoch_duration,
                       migrations=len(migration_events),
                       shed_writes=int(c_shed_writes.value))
        return ServiceResult(
            drift=drift_samples,
            migrations=migration_events,
            epochs=epoch_records,
            shed_writes=int(c_shed_writes.value),
            shed_reads=int(c_shed_reads.value),
            final_assignment=self._incr.assignment.copy(),
            metrics=metrics,
            samples=sampler.samples,
            alerts=alerts,
            slo_status=evaluator.to_dict() if evaluator is not None
            else None)
