"""repro — reproduction of "Experimental Analysis of Streaming Algorithms
for Graph Partitioning" (Pacaci & Özsu, SIGMOD 2019).

The package provides, from scratch:

* :mod:`repro.graph` — compact graphs, stream models, synthetic dataset
  generators standing in for the paper's datasets;
* :mod:`repro.partitioning` — every streaming graph partitioning
  algorithm the paper studies (edge-cut, vertex-cut and hybrid-cut), a
  multilevel offline baseline, and the Figure 9 decision tree;
* :mod:`repro.metrics` — structural and runtime metrics;
* :mod:`repro.analytics` — a PowerLyra-style synchronous GAS engine with
  exact master/mirror communication accounting (offline workloads:
  PageRank, WCC, SSSP);
* :mod:`repro.database` — a JanusGraph-style distributed graph database
  simulator (online workloads: 1-hop, 2-hop, shortest path);
* :mod:`repro.faults` — deterministic fault injection for both
  substrates: crash/recover schedules, retries with failover, chaos
  regression harness (see ``docs/fault_tolerance.md``);
* :mod:`repro.telemetry` — deterministic span tracing, a metrics
  registry, and profiling reports over both substrates (see
  ``docs/telemetry.md`` and the ``repro-trace`` CLI);
* :mod:`repro.experiments` — one entry point per paper table/figure,
  also available as ``python -m repro <experiment-id>``;
* :mod:`repro.orchestrator` — the experiment suite as an explicit job
  DAG with a content-addressed artifact cache and a process-pool
  scheduler (``python -m repro run-all --jobs N``, ``repro cache
  stats``; see ``docs/orchestrator.md``);
* :mod:`repro.ingest` — out-of-core ingest: generators spill to the
  binary ``.redg`` stream format, memory-mapped replay through the
  existing stream interfaces, count-min-sketch degree state, and
  sharded parallel partitioning (``python -m repro ingest``; see
  ``docs/scaling.md``).

Quickstart::

    from repro.graph.generators import twitter_like
    from repro.partitioning import make_partitioner
    from repro.metrics import replication_factor

    graph = twitter_like(num_vertices=10_000, seed=7)
    partition = make_partitioner("hdrf").partition(graph, 16, order="random")
    print(replication_factor(graph, partition))
"""

from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    GraphFormatError,
    PartitioningError,
    QueryTimeoutError,
    ReproError,
    SimulationError,
    WorkerFailedError,
)
from repro.faults import (
    ChaosHarness,
    ChaosReport,
    CrashInterval,
    FaultSchedule,
    ReplicaMap,
    RetryPolicy,
    SlowdownInterval,
)
from repro.graph import EdgeStream, Graph, GraphBuilder, VertexStream
from repro.metrics import edge_cut_ratio, load_imbalance, replication_factor
from repro.partitioning import (
    EdgePartition,
    VertexPartition,
    available_algorithms,
    make_partitioner,
    recommend,
    recommend_for_graph,
)
from repro.service import (
    DriftMonitor,
    PartitionedGraphService,
    ServiceConfig,
    ServiceResult,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "GraphFormatError",
    "PartitioningError",
    "SimulationError",
    "FaultInjectionError",
    "WorkerFailedError",
    "QueryTimeoutError",
    "FaultSchedule",
    "CrashInterval",
    "SlowdownInterval",
    "RetryPolicy",
    "ReplicaMap",
    "ChaosHarness",
    "ChaosReport",
    "Graph",
    "GraphBuilder",
    "VertexStream",
    "EdgeStream",
    "VertexPartition",
    "EdgePartition",
    "make_partitioner",
    "available_algorithms",
    "recommend",
    "recommend_for_graph",
    "edge_cut_ratio",
    "replication_factor",
    "load_imbalance",
    "ServiceConfig",
    "PartitionedGraphService",
    "ServiceResult",
    "DriftMonitor",
]
