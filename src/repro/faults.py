"""Deterministic fault injection for both execution substrates.

Real JanusGraph / PowerLyra clusters do not only differ in how well a
partitioning places data — they also *fail*: workers crash and recover,
requests get dropped on the wire, machines transiently slow down, and
links add latency.  The paper's straggler discussion (Section 5.2, the
Table 5 tail-latency collapse) is one instance of a broader question this
module makes askable: *how does each partitioner's placement degrade
under faults?*

Everything here is deterministic given an integer seed, like the rest of
the package (see :mod:`repro.rng`): the same :class:`FaultSchedule` run
twice produces bit-identical simulator output, so two partitioning
algorithms can be compared under *exactly* the same fault sequence — the
same methodology the paper uses for workloads, extended to failures.

The subsystem has four pieces:

* :class:`FaultSchedule` — the fault model: crash/recover intervals,
  transient slowdown windows, a per-request drop probability and a
  constant per-worker added latency.  An *empty* schedule is a strict
  no-op: both substrates are guaranteed to produce bit-identical results
  with ``FaultSchedule.none()`` and with no schedule at all (the
  :class:`ChaosHarness` asserts this).
* :class:`RetryPolicy` — client-side behaviour under faults: request
  timeout deadline, retry budget, and exponential backoff with
  deterministic jitter.
* :class:`ReplicaMap` — a simple k-safety replica placement derived from
  the partition: partition ``p``'s data is additionally readable from the
  next ``k_safety - 1`` workers (ring placement), which is what the
  failover router falls back to when the primary owner is down.
* :class:`ChaosHarness` — the regression guard: runs a scenario with the
  zero-fault schedule and with no schedule and raises
  :class:`~repro.errors.FaultInjectionError` unless the results match
  bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultInjectionError
from repro.rng import splitmix64

__all__ = [
    "CrashInterval",
    "SlowdownInterval",
    "FaultSchedule",
    "NO_FAULTS",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "ReplicaMap",
    "ChaosReport",
    "ChaosHarness",
]

#: 2^64 as float, for mapping splitmix64 output to [0, 1).
_U64_SPAN = float(2**64)


def _uniform(seed: int, *labels: int) -> float:
    """Deterministic uniform [0, 1) draw keyed by ``(seed, labels)``.

    Unlike a stateful RNG, the draw does not depend on how many other
    draws happened before it — so adding a fault to a schedule never
    perturbs the randomness of unrelated events.
    """
    key = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    for label in labels:
        key = splitmix64(key ^ np.uint64(label & 0xFFFFFFFFFFFFFFFF))
    return float(key) / _U64_SPAN


@dataclass(frozen=True)
class CrashInterval:
    """Worker *worker* is down during ``[start, end)``.

    ``end = inf`` models a permanent failure (the worker never recovers).
    Requests arriving at a crashed worker are lost; the client times out
    and fails over to a replica.
    """

    worker: int
    start: float
    end: float = float("inf")

    def __post_init__(self):
        if self.worker < 0:
            raise FaultInjectionError("crash interval worker must be >= 0")
        if self.start < 0:
            raise FaultInjectionError(
                f"crash interval start must be >= 0, got {self.start}")
        if not self.start < self.end:
            raise FaultInjectionError(
                f"crash interval needs start < end, got [{self.start}, {self.end})")

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class SlowdownInterval:
    """Worker *worker* serves at ``factor`` × nominal speed in ``[start, end)``.

    ``factor=0.5`` is a transient straggler at half speed — the dynamic
    counterpart of the static ``worker_speeds`` knob used by
    ``ablation-straggler``.
    """

    worker: int
    start: float
    end: float
    factor: float

    def __post_init__(self):
        if self.worker < 0:
            raise FaultInjectionError("slowdown interval worker must be >= 0")
        if self.start < 0:
            raise FaultInjectionError(
                f"slowdown interval start must be >= 0, got {self.start}")
        if not self.start < self.end:
            raise FaultInjectionError(
                f"slowdown interval needs start < end, got [{self.start}, {self.end})")
        if self.factor <= 0:
            raise FaultInjectionError("slowdown factor must be positive")

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic, seed-driven schedule of faults.

    Attributes
    ----------
    crashes:
        Crash/recover intervals per worker (may overlap; a worker is down
        whenever any of its intervals covers the current time).
    slowdowns:
        Transient speed-degradation windows.  Overlapping windows on one
        worker multiply.
    drop_probability:
        Probability that any individual storage request is silently lost
        in transit (the client sees a timeout).  Decided per request by a
        stateless hash of ``(seed, request id)``.
    extra_latency_seconds:
        Constant extra one-way network latency added to every remote
        request (degraded link / cross-zone traffic).
    seed:
        Keys the drop decisions and the retry jitter.
    """

    crashes: tuple[CrashInterval, ...] = ()
    slowdowns: tuple[SlowdownInterval, ...] = ()
    drop_probability: float = 0.0
    extra_latency_seconds: float = 0.0
    seed: int = 0

    def __post_init__(self):
        # Accept lists for convenience, store canonical tuples.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        if not 0.0 <= self.drop_probability < 1.0:
            raise FaultInjectionError(
                f"drop_probability must be in [0, 1), got {self.drop_probability}")
        if self.extra_latency_seconds < 0:
            raise FaultInjectionError("extra_latency_seconds must be >= 0")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultSchedule":
        """The empty schedule — a guaranteed no-op on both substrates."""
        return cls()

    @classmethod
    def single_crash(cls, worker: int, start: float,
                     duration: float = float("inf"), *,
                     seed: int = 0) -> "FaultSchedule":
        """One worker crashing at *start*, recovering after *duration*."""
        end = start + duration if duration != float("inf") else float("inf")
        return cls(crashes=(CrashInterval(worker, start, end),), seed=seed)

    def window(self, start: float, duration: float) -> "FaultSchedule":
        """The schedule restricted to ``[start, start + duration)``,
        re-based so the window begins at time 0.

        The online service runs its query simulation epoch by epoch; each
        epoch sees the slice of the global fault schedule that overlaps
        it, so one long schedule composes naturally with drift-triggered
        migration.  Drop probability, extra latency and the seed carry
        over unchanged (drop/jitter draws are keyed by request id, not
        time).
        """
        if duration <= 0:
            raise FaultInjectionError("window duration must be positive")
        end = start + duration
        crashes = tuple(
            CrashInterval(c.worker, max(0.0, c.start - start),
                          c.end - start if c.end != float("inf")
                          else float("inf"))
            for c in self.crashes if c.start < end and c.end > start)
        slowdowns = tuple(
            SlowdownInterval(s.worker, max(0.0, s.start - start),
                             min(s.end - start, duration), s.factor)
            for s in self.slowdowns if s.start < end and s.end > start)
        return FaultSchedule(crashes=crashes, slowdowns=slowdowns,
                             drop_probability=self.drop_probability,
                             extra_latency_seconds=self.extra_latency_seconds,
                             seed=self.seed)

    # ------------------------------------------------------------------
    # Queries (the substrate-facing API)
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True iff this schedule can never perturb a run."""
        return (not self.crashes and not self.slowdowns
                and self.drop_probability == 0.0
                and self.extra_latency_seconds == 0.0)

    def is_crashed(self, worker: int, time: float) -> bool:
        """Is *worker* down at *time*?"""
        return any(c.worker == worker and c.covers(time) for c in self.crashes)

    def crashed_workers(self, time: float) -> frozenset[int]:
        """All workers down at *time*."""
        return frozenset(c.worker for c in self.crashes if c.covers(time))

    def crash_starts_in(self, start: float, end: float) -> tuple[CrashInterval, ...]:
        """Crash events beginning inside ``[start, end)`` — the analytics
        engine uses this to detect a crash *during* a superstep."""
        return tuple(c for c in self.crashes if start <= c.start < end)

    def speed_factor(self, worker: int, time: float) -> float:
        """Service-speed multiplier for *worker* at *time* (1.0 = nominal)."""
        factor = 1.0
        for s in self.slowdowns:
            if s.worker == worker and s.covers(time):
                factor *= s.factor
        return factor

    def should_drop(self, request_id: int) -> bool:
        """Deterministically decide whether request *request_id* is lost."""
        if self.drop_probability == 0.0:
            return False
        return _uniform(self.seed, 0x5D0B, request_id) < self.drop_probability

    def jitter(self, retry_id: int) -> float:
        """Deterministic uniform [0, 1) jitter draw for retry *retry_id*."""
        return _uniform(self.seed, 0x1E77, retry_id)


#: Schedule used when callers pass ``fault_schedule=None``.
NO_FAULTS = FaultSchedule()


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side timeout/retry behaviour under faults.

    A request that receives no response within ``timeout_seconds`` is
    declared dead; the client retries up to ``max_retries`` times, waiting
    ``backoff_base_seconds * backoff_factor ** attempt * (1 + jitter)``
    between attempts (jitter uniform in ``[0, jitter_fraction)``, drawn
    deterministically from the fault schedule's seed).  Each retry is
    routed to the next replica in the :class:`ReplicaMap` chain, so a
    crashed primary degrades latency but not availability — until the
    whole chain is down.
    """

    timeout_seconds: float = 0.05
    max_retries: int = 3
    backoff_base_seconds: float = 0.005
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.5

    def __post_init__(self):
        if self.timeout_seconds <= 0:
            raise FaultInjectionError("timeout_seconds must be positive")
        if self.max_retries < 0:
            raise FaultInjectionError("max_retries must be >= 0")
        if self.backoff_base_seconds < 0:
            raise FaultInjectionError("backoff_base_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise FaultInjectionError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise FaultInjectionError("jitter_fraction must be in [0, 1]")

    def backoff_seconds(self, attempt: int, jitter_draw: float) -> float:
        """Wait before retry number *attempt* (0-based), with jitter."""
        base = self.backoff_base_seconds * self.backoff_factor ** attempt
        return base * (1.0 + self.jitter_fraction * jitter_draw)


#: Policy used when callers pass ``retry_policy=None``.
DEFAULT_RETRY_POLICY = RetryPolicy()


class ReplicaMap:
    """Simple k-safety replica placement derived from the partition.

    The partition assigns every vertex a primary owner.  Like a
    Cassandra ring, each partition's data is additionally replicated to
    the next ``k_safety - 1`` workers (mod the cluster size), so reads can
    fail over along a fixed chain.  The chain is a pure function of the
    primary owner — two runs, and every client within a run, agree on it
    without coordination.
    """

    def __init__(self, num_workers: int, k_safety: int = 2):
        if num_workers < 1:
            raise FaultInjectionError("replica map needs at least one worker")
        if not 1 <= k_safety <= num_workers:
            raise FaultInjectionError(
                f"k_safety must be in [1, {num_workers}], got {k_safety}")
        self.num_workers = int(num_workers)
        self.k_safety = int(k_safety)

    def replica(self, primary: int, attempt: int) -> int:
        """The worker serving attempt number *attempt* (0 = the primary)."""
        return (primary + attempt % self.k_safety) % self.num_workers

    def chain(self, primary: int) -> tuple[int, ...]:
        """The full failover chain for data owned by *primary*."""
        return tuple((primary + j) % self.num_workers
                     for j in range(self.k_safety))

    def alive_replica(self, primary: int, schedule: FaultSchedule,
                      time: float) -> int | None:
        """First worker in the chain that is up at *time* (None if all down)."""
        for worker in self.chain(primary):
            if not schedule.is_crashed(worker, time):
                return worker
        return None


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------

@dataclass
class ChaosReport:
    """Outcome of one :class:`ChaosHarness` verification."""

    scenario: str
    matched: bool
    #: Field-by-field comparison failures ("field: baseline != injected").
    mismatches: list[str] = field(default_factory=list)
    checked_fields: list[str] = field(default_factory=list)

    def raise_on_mismatch(self) -> "ChaosReport":
        if not self.matched:
            raise FaultInjectionError(
                f"zero-fault schedule did not reproduce the baseline for "
                f"{self.scenario}: " + "; ".join(self.mismatches))
        return self


def _values_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        return a_arr.shape == b_arr.shape and bool(np.array_equal(a_arr, b_arr))
    return a == b


class ChaosHarness:
    """Asserts the fault-injection machinery's core invariant: running a
    scenario with the *empty* fault schedule is bit-for-bit identical to
    running it with fault injection disabled entirely.

    Both substrates route every computation through the fault hooks when a
    schedule is supplied; this harness is the regression guard proving the
    hooks are exact no-ops when the schedule is empty — so every baseline
    number in EXPERIMENTS.md remains valid verbatim.
    """

    def __init__(self, *, strict: bool = True):
        self.strict = strict

    # ------------------------------------------------------------------
    def compare(self, scenario: str, baseline, injected,
                fields: list[str]) -> ChaosReport:
        """Compare *fields* of two result objects bit-for-bit."""
        report = ChaosReport(scenario=scenario, matched=True,
                             checked_fields=list(fields))
        for name in fields:
            a, b = getattr(baseline, name), getattr(injected, name)
            a = a() if callable(a) else a
            b = b() if callable(b) else b
            if not _values_equal(a, b):
                report.matched = False
                report.mismatches.append(f"{name}: {a!r} != {b!r}")
        if self.strict:
            report.raise_on_mismatch()
        return report

    # ------------------------------------------------------------------
    def verify_simulation(self, graph, partition, bindings, *,
                          duration: float = 0.3, **kwargs) -> ChaosReport:
        """Zero-fault invariant for the database simulator."""
        from repro.database.simulation import simulate_workload

        baseline = simulate_workload(graph, partition, bindings,
                                     duration=duration, **kwargs)
        injected = simulate_workload(graph, partition, bindings,
                                     duration=duration,
                                     fault_schedule=FaultSchedule.none(),
                                     **kwargs)
        return self.compare(
            "database simulation", baseline, injected,
            ["completed_queries", "latencies", "vertices_read_per_worker",
             "requests_per_worker", "busy_seconds_per_worker",
             "network_bytes", "remote_reads", "total_reads", "timeouts",
             "retries", "failed_queries", "dropped_requests"],
        )

    # ------------------------------------------------------------------
    def verify_analytics(self, graph, partition, workload,
                         **kwargs) -> ChaosReport:
        """Zero-fault invariant for the analytics engine."""
        from repro.analytics.engine import run_workload

        baseline = run_workload(graph, partition, workload, **kwargs)
        injected = run_workload(graph, partition, workload,
                                fault_schedule=FaultSchedule.none(), **kwargs)
        report = self.compare(
            "analytics engine", baseline, injected,
            ["num_iterations", "total_network_bytes", "total_messages",
             "execution_seconds"],
        )
        per_machine = _values_equal(baseline.compute_seconds_per_machine(),
                                    injected.compute_seconds_per_machine())
        if not per_machine:
            report.matched = False
            report.mismatches.append("compute_seconds_per_machine differs")
            if self.strict:
                report.raise_on_mismatch()
        report.checked_fields.append("compute_seconds_per_machine")
        return report
