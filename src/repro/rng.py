"""Deterministic randomness helpers.

Everything stochastic in this package — graph generators, stream shuffles,
hash-based partitioners, workload generators and the discrete-event
simulator — draws randomness through the helpers in this module so that
every experiment is reproducible bit-for-bit from an integer seed.

Two primitives are provided:

* :func:`make_rng` normalises "anything seed-like" into a
  :class:`numpy.random.Generator`.
* :func:`splitmix64` / :class:`SeededHash` give a fast, high-quality,
  *stateless* integer hash.  Hash partitioners must not consume stream
  randomness (two workers hashing the same vertex must agree), so they use a
  seeded avalanche hash instead of an RNG.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

_U64 = np.uint64
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``seed`` may be ``None`` (non-deterministic), an ``int``, a
    ``SeedSequence`` or an existing ``Generator`` (returned unchanged so
    callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator,
               *labels: Union[int, str]) -> np.random.Generator:
    """Derive an independent child generator from *rng*.

    *labels* (ints or strings) namespace the child stream, so the same
    parent produces the same child for the same labels regardless of how
    much randomness was consumed in between.
    """
    material = [hash(str(label)) & 0x7FFFFFFF for label in labels]
    material.append(int(rng.integers(0, 2**31)))
    return np.random.default_rng(np.random.SeedSequence(material))


def splitmix64(value: Union[int, np.ndarray], seed: int = 0) -> np.ndarray:
    """SplitMix64 avalanche hash of ``value`` (scalar or ndarray) → uint64.

    Deterministic given ``(value, seed)``; changing ``seed`` yields an
    effectively independent hash function, which is how hash partitioners
    are seeded.
    """
    x = (np.asarray(value, dtype=np.uint64) + _U64(seed * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF))
    with np.errstate(over="ignore"):
        x = (x + _U64(0x9E3779B97F4A7C15)) & _MASK64
        x = ((x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)) & _MASK64
        x = ((x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)) & _MASK64
        x = x ^ (x >> _U64(31))
    return x


class SeededHash:
    """A stateless hash function family ``h_seed : int -> [0, buckets)``.

    Used by every hash-based partitioner (ECR, VCR, DBH, Grid, HCR).  Two
    instances with the same seed are the same function — the property that
    makes hash partitioning "embarrassingly parallel" in the paper.
    """

    def __init__(self, buckets: int, seed: int = 0) -> None:
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        self.buckets = int(buckets)
        self.seed = int(seed)

    def __call__(self, value: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
        """Hash a scalar or ndarray of non-negative ints into buckets."""
        hashed = splitmix64(value, self.seed)
        result = (hashed % _U64(self.buckets)).astype(np.int64)
        if np.ndim(value) == 0:
            return int(result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededHash(buckets={self.buckets}, seed={self.seed})"
