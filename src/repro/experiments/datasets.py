"""Canonical datasets and scale profiles for the reproduction.

The paper's datasets (Table 3) are substituted by synthetic generators of
matching structure (see DESIGN.md §1).  Three scale profiles exist:

* ``quick``   — seconds-scale runs, used by the test suite and the
  pytest-benchmark harness;
* ``default`` — the scale EXPERIMENTS.md numbers are produced at;
* ``large``   — a stress profile for ad-hoc exploration.

Select a profile with the ``REPRO_SCALE`` environment variable or the
``scale=`` argument of :func:`load_dataset`.  Every generator call is
seeded, so a (dataset, scale) pair is bit-for-bit reproducible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.analysis import classify_graph, degree_stats
from repro.graph.digraph import Graph
from repro.graph.generators import ldbc_like, road_like, twitter_like, web_like

#: Dataset keys, mirroring Table 3 (plus the LDBC graph used online).
DATASETS = ("twitter", "uk-web", "usa-road", "ldbc-snb")
#: Datasets used in the offline-analytics experiments (Table 2).
OFFLINE_DATASETS = ("twitter", "uk-web", "usa-road")
SCALES = ("quick", "default", "large")

#: Fixed generator seed per dataset so every experiment sees the same graph.
_DATASET_SEEDS = {"twitter": 11, "uk-web": 13, "usa-road": 17, "ldbc-snb": 19}

#: Per-scale generator parameters.
_PARAMS = {
    "quick": {
        "twitter": dict(num_vertices=4_000, avg_degree=12.0),
        "uk-web": dict(scale=12, edge_factor=12.0),
        "usa-road": dict(num_vertices=5_000),
        "ldbc-snb": dict(num_vertices=4_000, avg_degree=16.0),
    },
    "default": {
        "twitter": dict(num_vertices=20_000, avg_degree=17.0),
        "uk-web": dict(scale=14, edge_factor=18.0),
        "usa-road": dict(num_vertices=25_000),
        "ldbc-snb": dict(num_vertices=12_000, avg_degree=24.0),
    },
    "large": {
        "twitter": dict(num_vertices=60_000, avg_degree=20.0),
        "uk-web": dict(scale=16, edge_factor=18.0),
        "usa-road": dict(num_vertices=90_000),
        "ldbc-snb": dict(num_vertices=40_000, avg_degree=24.0),
    },
}

_GENERATORS = {
    "twitter": twitter_like,
    "uk-web": web_like,
    "usa-road": road_like,
    "ldbc-snb": ldbc_like,
}


@dataclass(frozen=True)
class ScaleProfile:
    """Experiment dimensions for one scale (Table 2's parameter rows)."""

    name: str
    #: Partition counts for offline analytics (paper: 8..128).
    offline_partitions: tuple[int, ...]
    #: Partition counts for online queries (paper: 4..32).
    online_partitions: tuple[int, ...]
    #: PageRank iterations (paper: 20).
    pagerank_iterations: int
    #: Query bindings per workload (paper: 1000).
    num_bindings: int
    #: Simulated seconds per online run.
    sim_duration: float
    #: Zipf skew of online start-vertex popularity.
    workload_skew: float


_PROFILES = {
    "quick": ScaleProfile("quick", (8, 16, 32), (4, 8, 16, 32), 5, 300, 0.6, 0.6),
    "default": ScaleProfile("default", (8, 16, 32, 64, 128), (4, 8, 16, 32),
                            20, 1000, 1.5, 0.6),
    "large": ScaleProfile("large", (8, 16, 32, 64, 128), (4, 8, 16, 32),
                          20, 1000, 2.0, 0.6),
}


def active_scale(scale: str | None = None) -> str:
    """Resolve the scale: explicit argument > $REPRO_SCALE > 'default'."""
    resolved = scale or os.environ.get("REPRO_SCALE", "default")
    if resolved not in SCALES:
        raise ConfigurationError(f"unknown scale {resolved!r}; expected {SCALES}")
    return resolved


def scale_profile(scale: str | None = None) -> ScaleProfile:
    """The :class:`ScaleProfile` for *scale* (resolved per :func:`active_scale`)."""
    return _PROFILES[active_scale(scale)]


@lru_cache(maxsize=16)
def _load(name: str, scale: str) -> Graph:
    params = _PARAMS[scale][name]
    graph = _GENERATORS[name](seed=_DATASET_SEEDS[name], **params)
    return graph.with_name(name)


def load_dataset(name: str, scale: str | None = None) -> Graph:
    """Load (generate + cache) a canonical dataset at a scale."""
    if name not in DATASETS:
        raise ConfigurationError(f"unknown dataset {name!r}; expected {DATASETS}")
    return _load(name, active_scale(scale))


def sssp_source(graph: Graph) -> int:
    """The fixed SSSP source for a dataset.

    The paper randomly picks one source per dataset and keeps it fixed;
    we deterministically pick the highest-out-degree vertex, which is
    guaranteed to reach a substantial part of every generated graph.
    """
    return int(np.argmax(graph.out_degree))


def dataset_summary(name: str, scale: str | None = None) -> dict:
    """One Table 3 row: size, degree profile, structural class."""
    graph = load_dataset(name, scale)
    stats = degree_stats(graph)
    return {
        "dataset": name,
        "vertices": stats.num_vertices,
        "edges": stats.num_edges,
        "avg_degree": round(stats.num_edges / max(stats.num_vertices, 1), 1),
        "max_degree": stats.max_degree,
        "type": classify_graph(graph),
    }
