"""Reproductions of the paper's figures (1–9, 12–15).

Each function regenerates one figure's underlying data as text tables
(series instead of plots) and records the machine-readable payload in
``report.data`` for the test suite's shape checks.
"""

from __future__ import annotations

import numpy as np

from repro.database import plan_query, record_workload, simulate_workload
from repro.experiments.datasets import OFFLINE_DATASETS
from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import PARTITION_SEED, ExperimentContext
from repro.graph.analysis import classify_graph
from repro.metrics import edge_cut_ratio, relative_standard_deviation, summarize
from repro.partitioning import (
    CUT_MODELS,
    OFFLINE_ALGORITHMS,
    ONLINE_ALGORITHMS,
    recommend,
)
from repro.partitioning.workload_aware import workload_aware_partition

OFFLINE_WORKLOADS = ("pagerank", "wcc", "sssp")
MEDIUM_LOAD_CLIENTS = 12
HIGH_LOAD_CLIENTS = 24


# ----------------------------------------------------------------------
# Offline analytics figures
# ----------------------------------------------------------------------
def figure1(ctx: ExperimentContext | None = None,
            dataset: str = "twitter") -> ExperimentReport:
    """Fig. 1: replication factor vs total network I/O per cut model."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure1",
        f"Replication factor vs network I/O on {dataset} "
        "(PR / WCC / SSSP, all algorithms x partition counts)",
    )
    points: dict[str, dict[str, list[tuple[float, float]]]] = {}
    table = report.add_table(Table(
        "Per-configuration points",
        ["Workload", "CutModel", "Algorithm", "k", "ReplFactor", "Network MB"],
    ))
    for workload in OFFLINE_WORKLOADS:
        points[workload] = {}
        for algorithm in OFFLINE_ALGORITHMS:
            model = CUT_MODELS[algorithm]
            for k in ctx.profile.offline_partitions:
                run = ctx.analytics_run(dataset, algorithm, k, workload)
                rf = run.replication_factor
                mb = run.total_network_bytes / 1e6
                points[workload].setdefault(model, []).append((rf, mb))
                table.add_row(workload, model, algorithm.upper(), k,
                              round(rf, 2), round(mb, 2))
    slopes = report.add_table(Table(
        "Least-squares slope of network I/O vs replication factor "
        "(MB per replica unit, through origin)",
        ["Workload", *sorted(set(CUT_MODELS.values()))],
    ))
    slope_data: dict[str, dict[str, float]] = {}
    for workload in OFFLINE_WORKLOADS:
        row = {}
        for model in sorted(set(CUT_MODELS.values())):
            pts = np.array(points[workload].get(model, [(0, 0)]))
            x, y = pts[:, 0], pts[:, 1]
            denominator = float((x * x).sum())
            row[model] = float((x * y).sum() / denominator) if denominator else 0.0
        slope_data[workload] = row
        slopes.add_row(workload,
                       *[round(row[m], 2) for m in sorted(set(CUT_MODELS.values()))])
    report.data["points"] = points
    report.data["slopes"] = slope_data
    report.add_note("Expected shape: network I/O grows linearly with RF; "
                    "for PageRank the edge-cut slope is clearly below "
                    "vertex-cut/hybrid (uni-directional communication); "
                    "PR total I/O >> WCC/SSSP.")
    return report


def figure2(ctx: ExperimentContext | None = None) -> ExperimentReport:
    """Fig. 2: replication factor of every algorithm / dataset / k."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure2", "Replication factors over 8..128 partitions",
    )
    data: dict[str, dict[int, dict[str, float]]] = {}
    for dataset in OFFLINE_DATASETS:
        table = report.add_table(Table(
            f"Replication factor — {dataset}",
            ["Partitions", *[a.upper() for a in OFFLINE_ALGORITHMS]],
        ))
        data[dataset] = {}
        for k in ctx.profile.offline_partitions:
            row = {}
            for algorithm in OFFLINE_ALGORITHMS:
                row[algorithm] = ctx.placement(dataset, algorithm, k) \
                    .replication_factor()
            data[dataset][k] = row
            table.add_row(k, *[round(row[a], 2) for a in OFFLINE_ALGORITHMS])
    report.data["replication"] = data
    report.add_note("Expected shape: no universal winner — LDG/FNL lowest "
                    "on usa-road; HDRF lowest among vertex-cut on uk-web; "
                    "degree-aware methods (HDRF/DBH/HG) competitive with or "
                    "better than MTS on twitter.")
    return report


def figure3(ctx: ExperimentContext | None = None,
            dataset: str = "twitter") -> ExperimentReport:
    """Fig. 3: execution time of PR / WCC / SSSP across cluster sizes."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure3", f"Offline workload execution time on {dataset} (ms)",
    )
    data: dict[str, dict[int, dict[str, float]]] = {}
    for workload in OFFLINE_WORKLOADS:
        table = report.add_table(Table(
            f"Execution time (ms) — {workload}",
            ["Partitions", *[a.upper() for a in OFFLINE_ALGORITHMS]],
        ))
        data[workload] = {}
        for k in ctx.profile.offline_partitions:
            row = {}
            for algorithm in OFFLINE_ALGORITHMS:
                run = ctx.analytics_run(dataset, algorithm, k, workload)
                row[algorithm] = run.execution_seconds * 1e3
            data[workload][k] = row
            table.add_row(k, *[round(row[a], 2) for a in OFFLINE_ALGORITHMS])
    report.data["execution_ms"] = data
    report.add_note("Expected shape: vertex-cut/hybrid fastest PageRank on "
                    "the skewed graph; algorithm gaps narrow for WCC/SSSP; "
                    "diminishing returns at high partition counts.")
    return report


def figure4(ctx: ExperimentContext | None = None,
            num_partitions: int | None = None) -> ExperimentReport:
    """Fig. 4: per-machine computation time distribution during PageRank."""
    ctx = ctx or ExperimentContext()
    k = num_partitions or max(ctx.profile.offline_partitions)
    report = ExperimentReport(
        "figure4",
        f"Distribution of per-machine computation time, PageRank, {k} machines",
    )
    data: dict[str, dict[str, dict]] = {}
    for dataset in OFFLINE_DATASETS:
        table = report.add_table(Table(
            f"Computation time (ms) — {dataset}",
            ["Algorithm", "Min", "p25", "Median", "p75", "Max", "Max/Mean"],
        ))
        data[dataset] = {}
        for algorithm in OFFLINE_ALGORITHMS:
            run = ctx.analytics_run(dataset, algorithm, k, "pagerank")
            dist = summarize(run.compute_seconds_per_machine() * 1e3)
            data[dataset][algorithm] = dist
            table.add_row(algorithm.upper(), round(dist.minimum, 2),
                          round(dist.p25, 2), round(dist.median, 2),
                          round(dist.p75, 2), round(dist.maximum, 2),
                          round(dist.max_over_mean, 2))
    report.data["distributions"] = data
    report.add_note("Expected shape: edge-cut methods (LDG/FNL) show a much "
                    "larger spread than vertex-cut on the skewed graphs "
                    "(twitter/uk-web); on usa-road edge-cut is balanced.")
    return report


def figure13(ctx: ExperimentContext | None = None) -> ExperimentReport:
    """Fig. 13: the full offline grid (all datasets x workloads x k)."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure13", "Execution time (ms) of all offline workloads on all graphs",
    )
    data: dict[tuple, dict[str, float]] = {}
    for dataset in OFFLINE_DATASETS:
        for workload in OFFLINE_WORKLOADS:
            table = report.add_table(Table(
                f"Execution time (ms) — {dataset} / {workload}",
                ["Partitions", *[a.upper() for a in OFFLINE_ALGORITHMS]],
            ))
            for k in ctx.profile.offline_partitions:
                row = {}
                for algorithm in OFFLINE_ALGORITHMS:
                    run = ctx.analytics_run(dataset, algorithm, k, workload)
                    row[algorithm] = run.execution_seconds * 1e3
                data[(dataset, workload, k)] = row
                table.add_row(k, *[round(row[a], 2) for a in OFFLINE_ALGORITHMS])
    report.data["execution_ms"] = data
    report.add_note("Expected shape: LDG/FNL lowest execution times on "
                    "usa-road; vertex-cut/hybrid lowest on twitter/uk-web.")
    return report


# ----------------------------------------------------------------------
# Online query figures
# ----------------------------------------------------------------------
def figure5(ctx: ExperimentContext | None = None,
            dataset: str = "ldbc-snb") -> ExperimentReport:
    """Fig. 5: edge-cut ratio vs network I/O for the 1-hop workload."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "figure5", f"Edge-cut ratio vs network I/O, 1-hop on {dataset}",
    )
    table = report.add_table(Table(
        "Per-configuration points",
        ["Algorithm", "k", "EdgeCutRatio", "Network KB/query"],
    ))
    xs, ys = [], []
    for algorithm in ONLINE_ALGORITHMS:
        for k in ctx.profile.online_partitions:
            partition = ctx.online_partition(dataset, algorithm, k)
            ratio = edge_cut_ratio(graph, partition)
            result = ctx.simulation(
                dataset, algorithm, k, "one_hop",
                clients_per_worker=MEDIUM_LOAD_CLIENTS,
            )
            # Normalise to per-query I/O: runs complete different query
            # counts in the fixed duration, while the paper measures the
            # I/O of a fixed workload.
            kb_per_query = (result.network_bytes / 1e3
                            / max(result.completed_queries, 1))
            xs.append(ratio)
            ys.append(kb_per_query)
            table.add_row(algorithm.upper(), k, round(ratio, 3),
                          round(kb_per_query, 2))
    correlation = float(np.corrcoef(xs, ys)[0, 1]) if len(xs) > 2 else 1.0
    report.data["points"] = list(zip(xs, ys))
    report.data["correlation"] = correlation
    report.add_note(f"Pearson correlation of network I/O with edge-cut "
                    f"ratio: {correlation:.3f} (paper: linear relationship).")
    return report


def figure6(ctx: ExperimentContext | None = None,
            dataset: str = "ldbc-snb") -> ExperimentReport:
    """Fig. 6: aggregate throughput, 1-hop & 2-hop, medium & high load."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure6", f"Aggregate throughput on {dataset} under medium/high load",
    )
    data: dict[tuple, float] = {}
    for kind in ("one_hop", "two_hop"):
        for label, clients in (("medium", MEDIUM_LOAD_CLIENTS),
                               ("high", HIGH_LOAD_CLIENTS)):
            table = report.add_table(Table(
                f"Throughput (queries/s) — {kind}, {label} load",
                ["Workers", *[a.upper() for a in ONLINE_ALGORITHMS]],
            ))
            for k in ctx.profile.online_partitions:
                row = {}
                for algorithm in ONLINE_ALGORITHMS:
                    result = ctx.simulation(
                        dataset, algorithm, k, kind,
                        clients_per_worker=clients,
                    )
                    row[algorithm] = result.throughput
                    data[(kind, label, k, algorithm)] = result.throughput
                table.add_row(k, *[round(row[a]) for a in ONLINE_ALGORITHMS])
    report.data["throughput"] = data
    report.add_note("Expected shape: MTS best (paper: ~25% over hashing on "
                    "1-hop); partitioning's impact far smaller than for "
                    "offline analytics (no 5x gaps).")
    return report


def figure7(ctx: ExperimentContext | None = None, dataset: str = "ldbc-snb",
            num_workers: int = 16) -> ExperimentReport:
    """Fig. 7: per-worker vertex reads during the 1-hop workload."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure7",
        f"Vertex reads per worker, 1-hop on {dataset}, {num_workers} workers",
    )
    table = report.add_table(Table(
        "Reads per worker (thousands)",
        ["Algorithm", "Min", "p25", "Median", "p75", "p95", "p99", "Max",
         "Max/Mean"],
    ))
    data = {}
    for algorithm in ONLINE_ALGORITHMS:
        result = ctx.simulation(
            dataset, algorithm, num_workers, "one_hop",
            clients_per_worker=MEDIUM_LOAD_CLIENTS,
        )
        dist = summarize(result.read_distribution() / 1e3)
        data[algorithm] = dist
        table.add_row(algorithm.upper(), round(dist.minimum, 1),
                      round(dist.p25, 1), round(dist.median, 1),
                      round(dist.p75, 1), round(dist.p95, 1),
                      round(dist.p99, 1), round(dist.maximum, 1),
                      round(dist.max_over_mean, 2))
    report.data["distributions"] = data
    report.add_note("Expected shape: LDG/FNL spread >> ECR spread — the "
                    "workload-skew hotspots of Section 6.3.1.")
    return report


def figure8(ctx: ExperimentContext | None = None, dataset: str = "ldbc-snb",
            num_workers: int = 16) -> ExperimentReport:
    """Fig. 8: workload-aware weighted partitioning (throughput + RSD)."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    bindings = ctx.bindings(dataset, "one_hop")
    report = ExperimentReport(
        "figure8",
        f"Workload-aware partitioning, 1-hop on {dataset}, {num_workers} workers",
    )
    # Record the access log of the same workload (the paper's method).
    plans = [plan_query(graph, b.kind, b.start_vertex,
                        target_vertex=b.target_vertex)
             for b in bindings]
    log = record_workload(graph, plans)
    weighted = workload_aware_partition(
        graph, num_workers, log.vertex_reads, seed=PARTITION_SEED,
    )

    table = report.add_table(Table(
        "Throughput and load-distribution RSD",
        ["Algorithm", "Throughput (q/s)", "Load RSD"],
    ))
    data = {}
    # Registry algorithms run through the cached simulation path; MTS-W's
    # partition is derived from the recorded access log above, so it has
    # no registry identity and runs the simulator directly.
    results = [(algorithm.upper(),
                ctx.simulation(dataset, algorithm, num_workers, "one_hop",
                               clients_per_worker=MEDIUM_LOAD_CLIENTS))
               for algorithm in ONLINE_ALGORITHMS]
    results.append(("MTS-W", simulate_workload(
        graph, weighted, bindings,
        clients_per_worker=MEDIUM_LOAD_CLIENTS,
        duration=ctx.profile.sim_duration,
    )))
    for label, result in results:
        rsd = relative_standard_deviation(result.read_distribution())
        data[label] = (result.throughput, rsd)
        table.add_row(label, round(result.throughput), round(rsd, 3))
    report.data["results"] = data
    report.add_note("Expected shape: MTS-W (weighted by recorded accesses) "
                    "beats unweighted MTS in throughput (paper: 13-35%) and "
                    "has the lowest load RSD.")
    return report


def figure12(ctx: ExperimentContext | None = None, dataset: str = "ldbc-snb",
             total_clients: int = 192) -> ExperimentReport:
    """Fig. 12: fixed client population, growing cluster size."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure12",
        f"Aggregate throughput of {total_clients} concurrent clients, "
        f"1-hop on {dataset}",
    )
    table = report.add_table(Table(
        "Throughput (queries/s)",
        ["Workers", *[a.upper() for a in ONLINE_ALGORITHMS]],
    ))
    data: dict[int, dict[str, float]] = {}
    for k in ctx.profile.online_partitions:
        row = {}
        for algorithm in ONLINE_ALGORITHMS:
            result = ctx.simulation(
                dataset, algorithm, k, "one_hop",
                clients_per_worker=max(1, total_clients // k),
            )
            row[algorithm] = result.throughput
        data[k] = row
        table.add_row(k, *[round(row[a]) for a in ONLINE_ALGORITHMS])
    report.data["throughput"] = data
    report.add_note("Expected shape: throughput stops improving (and "
                    "degrades) beyond ~16 workers — communication overhead "
                    "dominates (Section 5.2.1).")
    return report


def figure14(ctx: ExperimentContext | None = None,
             num_workers: int = 16) -> ExperimentReport:
    """Fig. 14: 1-hop throughput on the real-world-like graphs."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure14",
        f"1-hop throughput on real-world-like graphs, {num_workers} workers",
    )
    data: dict[tuple, float] = {}
    for dataset in OFFLINE_DATASETS:
        table = report.add_table(Table(
            f"Throughput (queries/s) — {dataset}",
            ["Load", *[a.upper() for a in ONLINE_ALGORITHMS]],
        ))
        for label, clients in (("medium", MEDIUM_LOAD_CLIENTS),
                               ("high", HIGH_LOAD_CLIENTS)):
            row = {}
            for algorithm in ONLINE_ALGORITHMS:
                result = ctx.simulation(
                    dataset, algorithm, num_workers, "one_hop",
                    clients_per_worker=clients,
                )
                row[algorithm] = result.throughput
                data[(dataset, label, algorithm)] = result.throughput
            table.add_row(label, *[round(row[a]) for a in ONLINE_ALGORITHMS])
    report.data["throughput"] = data
    return report


def figure15(ctx: ExperimentContext | None = None,
             num_workers: int = 16) -> ExperimentReport:
    """Fig. 15: per-worker read distributions on the real-world-like graphs."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure15",
        f"Vertex reads per worker, 1-hop, {num_workers} workers, all graphs",
    )
    data: dict[str, dict[str, object]] = {}
    for dataset in OFFLINE_DATASETS:
        table = report.add_table(Table(
            f"Reads per worker (thousands) — {dataset}",
            ["Algorithm", "Min", "p25", "Median", "p75", "p95", "p99",
             "Max", "Max/Mean"],
        ))
        data[dataset] = {}
        for algorithm in ONLINE_ALGORITHMS:
            result = ctx.simulation(
                dataset, algorithm, num_workers, "one_hop",
                clients_per_worker=MEDIUM_LOAD_CLIENTS,
            )
            dist = summarize(result.read_distribution() / 1e3)
            data[dataset][algorithm] = dist
            table.add_row(algorithm.upper(), round(dist.minimum, 1),
                          round(dist.p25, 1), round(dist.median, 1),
                          round(dist.p75, 1), round(dist.p95, 1),
                          round(dist.p99, 1), round(dist.maximum, 1),
                          round(dist.max_over_mean, 2))
    report.data["distributions"] = data
    report.add_note("Expected shape: FNL/LDG suffer load imbalance "
                    "regardless of graph characteristics (Section 6.3.1).")
    return report


# ----------------------------------------------------------------------
# Figure 9: the decision tree, checked against measurements
# ----------------------------------------------------------------------
def figure9(ctx: ExperimentContext | None = None) -> ExperimentReport:
    """Fig. 9: decision-tree recommendations vs measured winners."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "figure9", "Decision tree for picking an SGP algorithm",
    )
    table = report.add_table(Table(
        "Recommendation vs measurement",
        ["Scenario", "Recommended", "Measured best", "Consistent"],
    ))
    data = []
    k = max(ctx.profile.offline_partitions[:-1])  # a mid/large cluster size
    # The tree selects among *streaming* algorithms; MTS is the offline
    # baseline and needs a pre-processing pass, so it is out of scope.
    streaming = [a for a in OFFLINE_ALGORITHMS if a != "mts"]
    for dataset in OFFLINE_DATASETS:
        graph_type = classify_graph(ctx.graph(dataset))
        rec = recommend("analytics", graph_type=graph_type)
        timings = {
            algorithm: ctx.analytics_run(dataset, algorithm, k, "pagerank")
            .execution_seconds
            for algorithm in streaming
        }
        best = min(timings, key=timings.get)
        # "Consistent" means the recommendation is within 25% of the best
        # measured time — the paper's tree picks a robust choice, not
        # necessarily the single fastest in every configuration.
        consistent = timings[rec.algorithm] <= 1.25 * timings[best]
        scenario = f"analytics / {dataset} ({graph_type})"
        table.add_row(scenario, rec.algorithm.upper(), best.upper(),
                      "yes" if consistent else "no")
        data.append((scenario, rec.algorithm, best, consistent))
    # Online branch: latency-critical and throughput-oriented entries.
    for kwargs, scenario in (
        (dict(tail_latency_critical=True), "online / tail-latency critical"),
        (dict(tail_latency_critical=False, load="medium",
              objective="throughput"), "online / medium load, throughput"),
    ):
        rec = recommend("online", **kwargs)
        table.add_row(scenario, rec.algorithm.upper(), "-", "-")
        data.append((scenario, rec.algorithm, None, None))
    report.data["rows"] = data
    report.add_note("Offline rows are validated against measured PageRank "
                    "execution times; online rows restate the paper's "
                    "guidance (validated by table5/figure6 shapes).")
    return report
