"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they isolate the individual design
knobs of the studied algorithms (stream order sensitivity, FENNEL's γ,
HDRF's λ, Ginger's degree threshold, restreaming depth) that the paper
discusses qualitatively in Sections 4 and 6.
"""

from __future__ import annotations

import numpy as np

from repro.analytics import Placement
from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import PARTITION_SEED, STREAM_ORDER, ExperimentContext
from repro.metrics import edge_cut_ratio, partition_balance, replication_factor
from repro.partitioning import (
    FennelPartitioner,
    GingerPartitioner,
    GreedyVertexCutPartitioner,
    HdrfPartitioner,
    RestreamingLdgPartitioner,
)


def ablation_stream_order(ctx: ExperimentContext | None = None,
                          dataset: str = "twitter",
                          num_partitions: int = 16) -> ExperimentReport:
    """Stream-order sensitivity: greedy vertex-cut vs HDRF.

    Section 4.2.2: PowerGraph's greedy formulation "is sensitive to stream
    orders and might result in a single partition in case of breadth-first
    traversal order. HDRF avoids this problem" via its λ balance term.
    """
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "ablation-stream-order",
        f"Stream order sensitivity on {dataset}, k={num_partitions}",
    )
    table = report.add_table(Table(
        "Replication factor / balance by stream order",
        ["Order", "Greedy RF", "Greedy Balance", "HDRF RF", "HDRF Balance"],
    ))
    data = {}
    for order in ("random", "bfs", "dfs"):
        row = {}
        for label, partitioner in (
            ("greedy", GreedyVertexCutPartitioner(seed=PARTITION_SEED)),
            ("hdrf", HdrfPartitioner(seed=PARTITION_SEED)),
        ):
            partition = partitioner.partition(graph, num_partitions,
                                              order=order, seed=PARTITION_SEED)
            row[label] = (replication_factor(graph, partition),
                          partition_balance(graph, partition))
        data[order] = row
        table.add_row(order, round(row["greedy"][0], 2),
                      round(row["greedy"][1], 2), round(row["hdrf"][0], 2),
                      round(row["hdrf"][1], 2))
    report.data["results"] = data
    report.add_note("Expected: greedy's balance degrades under BFS/DFS "
                    "order while HDRF stays balanced (lambda > 1).")
    return report


def ablation_fennel_gamma(ctx: ExperimentContext | None = None,
                          dataset: str = "twitter",
                          num_partitions: int = 16) -> ExperimentReport:
    """FENNEL γ sweep: cut quality vs balance trade-off (Eq. 5)."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "ablation-fennel-gamma",
        f"FENNEL gamma sweep on {dataset}, k={num_partitions}",
    )
    table = report.add_table(Table(
        "Edge-cut ratio and balance vs gamma",
        ["Gamma", "EdgeCutRatio", "Balance"],
    ))
    data = {}
    for gamma in (1.25, 1.5, 2.0, 3.0):
        partition = FennelPartitioner(gamma=gamma, seed=PARTITION_SEED) \
            .partition(graph, num_partitions, order="random",
                       seed=PARTITION_SEED)
        data[gamma] = (edge_cut_ratio(graph, partition),
                       partition_balance(graph, partition))
        table.add_row(gamma, round(data[gamma][0], 3), round(data[gamma][1], 3))
    report.data["results"] = data
    return report


def ablation_hdrf_lambda(ctx: ExperimentContext | None = None,
                         dataset: str = "twitter",
                         num_partitions: int = 16) -> ExperimentReport:
    """HDRF λ sweep: replication vs balance (Eq. 7)."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "ablation-hdrf-lambda",
        f"HDRF lambda sweep on {dataset}, k={num_partitions}",
    )
    table = report.add_table(Table(
        "Replication factor and balance vs lambda",
        ["Lambda", "ReplFactor", "Balance"],
    ))
    data = {}
    for lam in (0.5, 1.0, 1.1, 2.0, 10.0):
        partition = HdrfPartitioner(balance_weight=lam, seed=PARTITION_SEED) \
            .partition(graph, num_partitions, order="bfs", seed=PARTITION_SEED)
        data[lam] = (replication_factor(graph, partition),
                     partition_balance(graph, partition))
        table.add_row(lam, round(data[lam][0], 2), round(data[lam][1], 3))
    report.data["results"] = data
    report.add_note("Expected: larger lambda improves balance on "
                    "BFS-ordered streams at the cost of replication.")
    return report


def ablation_ginger_threshold(ctx: ExperimentContext | None = None,
                              dataset: str = "twitter",
                              num_partitions: int = 16) -> ExperimentReport:
    """Ginger degree-threshold sweep (the hybrid-cut cutoff)."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "ablation-ginger-threshold",
        f"Ginger high-degree threshold sweep on {dataset}, k={num_partitions}",
    )
    table = report.add_table(Table(
        "Replication factor and balance vs threshold",
        ["Threshold", "ReplFactor", "Balance"],
    ))
    data = {}
    for threshold in (10, 50, 100, 500, 10**9):
        partition = GingerPartitioner(degree_threshold=threshold,
                                      seed=PARTITION_SEED) \
            .partition(graph, num_partitions, order="random",
                       seed=PARTITION_SEED)
        data[threshold] = (replication_factor(graph, partition),
                           partition_balance(graph, partition))
        table.add_row(threshold, round(data[threshold][0], 2),
                      round(data[threshold][1], 3))
    report.data["results"] = data
    report.add_note("threshold=1e9 disables the vertex-cut phase entirely "
                    "(pure FENNEL-like edge grouping).")
    return report


def ablation_restreaming(ctx: ExperimentContext | None = None,
                         dataset: str = "usa-road",
                         num_partitions: int = 16) -> ExperimentReport:
    """re-LDG pass-count sweep: approaching offline (MTS) quality."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "ablation-restreaming",
        f"re-LDG restreaming passes on {dataset}, k={num_partitions}",
    )
    table = report.add_table(Table(
        "Edge-cut ratio vs number of passes",
        ["Passes", "EdgeCutRatio"],
    ))
    data = {}
    for passes in (1, 2, 3, 5, 10):
        partition = RestreamingLdgPartitioner(num_passes=passes,
                                              seed=PARTITION_SEED) \
            .partition(graph, num_partitions, order="random",
                       seed=PARTITION_SEED)
        data[passes] = edge_cut_ratio(graph, partition)
        table.add_row(passes, round(data[passes], 3))
    mts = ctx.partition(dataset, "mts", num_partitions)
    mts_cut = edge_cut_ratio(graph, mts)
    report.data["results"] = data
    report.data["mts_cut"] = mts_cut
    report.add_note(f"MTS (offline multilevel) cut ratio: {mts_cut:.3f} — "
                    "restreaming should close most of the gap from the "
                    "single-pass result.")
    return report


def ablation_dynamic_updates(ctx: ExperimentContext | None = None,
                             dataset: str = "ldbc-snb",
                             num_partitions: int = 16,
                             growth_fraction: float = 0.2) -> ExperimentReport:
    """Dynamic graphs: how a partitioning ages and how refinement helps.

    Section 2 motivates Hermes/Leopard with exactly this scenario: the
    graph grows after the initial (bulk-load) partitioning.  We hold back
    ``growth_fraction`` of the edges, partition the remainder with LDG,
    then add the held-back edges and compare:

    * the *stale* partitioning on the grown graph,
    * stale + Hermes-style refinement,
    * re-streaming the grown graph from scratch (re-LDG quality bound),
    * the offline MTS bound.
    """
    from repro.partitioning import LdgPartitioner, hermes_refine
    from repro.rng import make_rng

    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    rng = make_rng(PARTITION_SEED)
    keep = rng.random(graph.num_edges) >= growth_fraction
    base_graph = graph.subgraph_edges(np.flatnonzero(keep),
                                      name=f"{dataset}-base")

    stale = LdgPartitioner(seed=PARTITION_SEED).partition(
        base_graph, num_partitions, order=STREAM_ORDER, seed=PARTITION_SEED)
    refreshed = hermes_refine(graph, stale, seed=PARTITION_SEED)
    restreamed = LdgPartitioner(seed=PARTITION_SEED).partition(
        graph, num_partitions, order=STREAM_ORDER, seed=PARTITION_SEED)
    offline = ctx.partition(dataset, "mts", num_partitions)

    report = ExperimentReport(
        "ablation-dynamic-updates",
        f"Partition aging under {growth_fraction:.0%} edge growth "
        f"({dataset}, k={num_partitions})",
    )
    table = report.add_table(Table(
        "Edge-cut ratio on the grown graph",
        ["Strategy", "EdgeCutRatio"],
    ))
    data = {}
    for label, partition in (("stale LDG", stale),
                             ("stale + hermes refine", refreshed),
                             ("re-streamed LDG", restreamed),
                             ("offline MTS", offline)):
        data[label] = edge_cut_ratio(graph, partition)
        table.add_row(label, round(data[label], 3))
    report.data["results"] = data
    report.add_note("Expected: refinement recovers most of the gap between "
                    "the stale partitioning and a full re-stream.")
    return report


def ablation_straggler(ctx: ExperimentContext | None = None,
                       dataset: str = "ldbc-snb", num_workers: int = 16,
                       slow_factor: float = 0.4) -> ExperimentReport:
    """Failure injection: one worker degrades to ``slow_factor`` speed.

    A straggling machine is the classic tail-latency amplifier.  The
    partition-aware router keeps sending it every query it owns, so a
    partitioning that concentrates hot data on the straggler suffers far
    more than one that spreads load — quantifying the resilience argument
    behind the paper's hash-partitioning recommendation for
    latency-critical workloads.
    """
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "ablation-straggler",
        f"Tail latency with one worker at {slow_factor:.0%} speed "
        f"({dataset}, {num_workers} workers, medium load)",
    )
    table = report.add_table(Table(
        "p99 latency (ms), healthy vs degraded cluster",
        ["Algorithm", "Healthy p99", "Straggler p99", "Blowup"],
    ))
    data = {}
    for algorithm in ("ecr", "ldg", "fennel", "mts"):
        healthy = ctx.simulation(dataset, algorithm, num_workers, "one_hop",
                                 clients_per_worker=12)
        # Degrade the worker that serves the most reads — the worst case
        # the operator cares about.
        hot_worker = int(np.argmax(healthy.read_distribution()))
        speeds = [1.0] * num_workers
        speeds[hot_worker] = slow_factor
        degraded = ctx.simulation(dataset, algorithm, num_workers, "one_hop",
                                  clients_per_worker=12, worker_speeds=speeds)
        h_p99 = healthy.latency().p99 * 1e3
        d_p99 = degraded.latency().p99 * 1e3
        data[algorithm] = (h_p99, d_p99)
        table.add_row(algorithm.upper(), round(h_p99, 1), round(d_p99, 1),
                      round(d_p99 / max(h_p99, 1e-9), 2))
    report.data["results"] = data
    report.add_note("Expected: every algorithm degrades, and partitionings "
                    "that concentrate hot data suffer the largest blowup "
                    "when their hottest worker straggles.")
    return report


def ablation_fault_tolerance(ctx: ExperimentContext | None = None,
                             dataset: str = "ldbc-snb",
                             num_workers: int = 16) -> ExperimentReport:
    """Fault injection on both substrates: availability and recovery cost.

    Extends the paper's straggler discussion (Section 5.2) from *slow*
    machines to *failing* ones.  Every algorithm is subjected to the same
    deterministic :class:`~repro.faults.FaultSchedule` — the paper's
    same-workload methodology, extended to failures:

    * two overlapping worker crashes (workers 1 and 2 — a window where
      the k=2 replica chain of worker 1 is entirely down, so availability
      depends on how much hot data the partitioner placed there);
    * one transient straggler at half speed;
    * a 1% wire-drop probability.

    The online half measures client-visible availability, retry traffic
    and tail latency under the schedule; the offline half crashes one
    machine mid-PageRank and measures checkpoint-restart recovery, whose
    cost (state lost, migration traffic, re-homing quality) depends on the
    partitioning under test.
    """
    from repro.faults import (
        ChaosHarness,
        CrashInterval,
        FaultSchedule,
        SlowdownInterval,
    )

    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    bindings = ctx.bindings(dataset, "one_hop")
    duration = ctx.profile.sim_duration
    slow_worker = min(4, num_workers - 1)
    schedule = FaultSchedule(
        crashes=(
            CrashInterval(1 % num_workers, 0.35 * duration, 0.55 * duration),
            CrashInterval(2 % num_workers, 0.40 * duration, 0.55 * duration),
        ),
        slowdowns=(
            SlowdownInterval(slow_worker, 0.65 * duration,
                             0.85 * duration, 0.5),
        ),
        drop_probability=0.01,
        seed=PARTITION_SEED,
    )

    report = ExperimentReport(
        "ablation-fault-tolerance",
        f"Availability and recovery under one fault schedule "
        f"({dataset}, {num_workers} workers)",
    )

    online_table = report.add_table(Table(
        "Online: availability / retries / tail latency under faults",
        ["Algorithm", "Availability", "Timeouts", "Retries", "Failed",
         "Healthy p99", "Faulted p99"],
    ))
    online = {}
    for algorithm in ("ecr", "ldg", "fennel"):
        healthy = ctx.simulation(dataset, algorithm, num_workers, "one_hop",
                                 clients_per_worker=12)
        faulted = ctx.simulation(dataset, algorithm, num_workers, "one_hop",
                                 clients_per_worker=12,
                                 fault_schedule=schedule)
        online[algorithm] = {
            "availability": faulted.availability,
            "timeouts": faulted.timeouts,
            "retries": faulted.retries,
            "failed": faulted.failed_queries,
            "healthy_p99_ms": healthy.latency().p99 * 1e3,
            "faulted_p99_ms": faulted.latency().p99 * 1e3,
        }
        online_table.add_row(
            algorithm.upper(),
            f"{faulted.availability:.4f}",
            faulted.timeouts, faulted.retries, faulted.failed_queries,
            round(online[algorithm]["healthy_p99_ms"], 1),
            round(online[algorithm]["faulted_p99_ms"], 1))

    # Offline: crash one machine mid-PageRank.  The crash instant is fixed
    # from the hash baseline's wall clock, so every algorithm faces the
    # same schedule.
    reference = ctx.analytics_run(dataset, "ecr", num_workers, "pagerank")
    crash_at = 0.4 * reference.execution_seconds
    engine_schedule = FaultSchedule.single_crash(
        1 % num_workers, crash_at, 0.2 * reference.execution_seconds,
        seed=PARTITION_SEED)

    offline_table = report.add_table(Table(
        "Offline: checkpoint-restart recovery of a mid-PageRank crash",
        ["Algorithm", "LostVertices", "MigrationKB", "ReExecSteps",
         "RecoveryMs", "Slowdown"],
    ))
    offline = {}
    for algorithm in ("ecr", "ldg", "fennel", "hdrf"):
        healthy = ctx.analytics_run(dataset, algorithm, num_workers,
                                    "pagerank")
        faulted = ctx.analytics_run(dataset, algorithm, num_workers,
                                    "pagerank",
                                    fault_schedule=engine_schedule,
                                    checkpoint_interval=2)
        lost = sum(e.lost_vertices for e in faulted.recovery_events)
        offline[algorithm] = {
            "lost_vertices": lost,
            "migration_bytes": faulted.migration_bytes,
            "reexecuted_supersteps": faulted.reexecuted_supersteps,
            "recovery_seconds": faulted.recovery_seconds,
            "slowdown": (faulted.execution_seconds
                         / healthy.execution_seconds),
        }
        offline_table.add_row(
            algorithm.upper(), lost,
            round(faulted.migration_bytes / 1e3, 1),
            faulted.reexecuted_supersteps,
            round(faulted.recovery_seconds * 1e3, 3),
            round(offline[algorithm]["slowdown"], 3))

    # The chaos invariant: the zero-fault schedule must reproduce the
    # fault-free baseline bit-for-bit (raises on violation).
    ChaosHarness().verify_simulation(
        graph, ctx.online_partition(dataset, "ecr", num_workers), bindings,
        duration=min(duration, 0.3))
    report.data["results"] = {"online": online, "offline": offline}
    report.add_note("Zero-fault schedule verified bit-identical to the "
                    "fault-free baseline (ChaosHarness).")
    report.add_note("Expected: placements concentrating hot data on the "
                    "crashed workers lose more availability online and "
                    "pay more recovery traffic offline; balanced hash "
                    "placements degrade the most gracefully.")
    return report


def ablation_partitioning_cost(ctx: ExperimentContext | None = None,
                               dataset: str = "twitter",
                               num_partitions: int = 16) -> ExperimentReport:
    """Partitioning wall time and synopsis memory per algorithm.

    Section 4.1.1: streaming partitioners are "approximately ten times
    faster than their offline counterpart, METIS, and only use a fraction
    of memory".  This measures both on the same graph: wall-clock per
    algorithm and peak additional memory during the partitioning call
    (via tracemalloc, so it captures the synopsis the algorithm keeps).
    """
    import time
    import tracemalloc

    from repro.experiments.runner import ExperimentContext as _Ctx

    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "ablation-partitioning-cost",
        f"Partitioning cost on {dataset} "
        f"({graph.num_edges:,} edges, k={num_partitions})",
    )
    table = report.add_table(Table(
        "Wall time and peak synopsis memory",
        ["Algorithm", "Seconds", "Peak MB", "Edges/s"],
    ))
    data = {}
    for algorithm in ("ecr", "ldg", "fennel", "hdrf", "hg", "mts"):
        partitioner = _Ctx._make(algorithm)
        tracemalloc.start()
        started = time.time()
        partitioner.partition(graph, num_partitions, order=STREAM_ORDER,
                              seed=PARTITION_SEED)
        elapsed = time.time() - started
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_mb = peak / 1e6
        data[algorithm] = (elapsed, peak_mb)
        table.add_row(algorithm.upper(), round(elapsed, 3),
                      round(peak_mb, 2), round(graph.num_edges / elapsed))
    report.data["results"] = data
    report.add_note("Expected: the hash methods are orders of magnitude "
                    "faster than MTS; every streaming method's synopsis is "
                    "a fraction of MTS's multilevel hierarchy.")
    return report


def ablation_sender_side_aggregation(ctx: ExperimentContext | None = None,
                                     dataset: str = "twitter",
                                     num_partitions: int = 16) -> ExperimentReport:
    """Quantify Appendix B: the edge-cut PageRank advantage.

    Compares the mirror-update traffic a changed vertex generates under
    the uni-directional rule (out-edge mirrors only — possible because
    out-edges are source-local in the Appendix-B placement) against the
    all-mirror rule a naive system would use.
    """
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "ablation-sender-side-aggregation",
        f"Appendix B: out-edge-local vs all-mirror updates on {dataset}",
    )
    table = report.add_table(Table(
        "Per-iteration mirror updates if every vertex changes",
        ["Algorithm", "Out-edge mirrors", "All mirrors", "Saving"],
    ))
    data = {}
    for algorithm in ("ecr", "ldg", "vcr", "hdrf", "hcr"):
        placement = Placement(graph, ctx.partition(dataset, algorithm,
                                                   num_partitions))
        out_updates = int(placement.mirror_counts_out.sum())
        all_updates = int(placement.mirror_counts_all.sum())
        saving = 1.0 - out_updates / all_updates if all_updates else 0.0
        data[algorithm] = (out_updates, all_updates, saving)
        table.add_row(algorithm.upper(), out_updates, all_updates,
                      f"{saving:.0%}")
    report.data["results"] = data
    report.add_note("Edge-cut placements save ~100% (out-edges are "
                    "master-local); vertex-cut placements save little — "
                    "the Figure 1(a) slope difference.")
    return report
