"""Plain-text rendering of experiment results.

Every experiment entry point returns an :class:`ExperimentReport`
containing one or more :class:`Table` objects — the textual equivalent of
the paper's tables and figure panels — plus free-form notes stating which
paper-shape checks the run satisfies.  ``render()`` produces the exact
text the CLI and the benchmark harness print.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A simple aligned text table."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for col, cell in enumerate(row):
                widths[col] = max(widths[col], len(cell))
        lines = [self.title]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ExperimentReport:
    """The output of one table/figure reproduction."""

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Machine-readable payload for tests and downstream analysis.
    data: dict = field(default_factory=dict)
    #: Run provenance stamped by the harness (wall time, telemetry event
    #: counts) — rendered as a trailer line when present.  Wall time is
    #: real time and so *not* part of any deterministic artifact; it only
    #: appears in the human-facing render.
    provenance: dict = field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def stamp_provenance(self, **entries) -> None:
        """Attach run-provenance entries (wall time, event counts, ...)."""
        self.provenance.update(entries)

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            parts.append(table.render())
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        if self.provenance:
            stamped = " ".join(f"{key}={value}"
                               for key, value in self.provenance.items())
            parts.append(f"[provenance: {stamped}]")
        return "\n\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
