"""Experiment orchestration: shared context, caching, sweep helpers.

One figure often reuses another's expensive intermediates (the Fig. 2
partitionings feed Figs. 1/3/4; the online partitionings feed Table 5 and
Figs. 5–8).  :class:`ExperimentContext` owns those caches, the scale
profile, and the seeds, so a full `run_all` regenerates every table and
figure from one consistent universe — the paper's "same partitions across
all experiments" methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics import (
    DEFAULT_COST_MODEL,
    GasEngine,
    PageRank,
    Placement,
    SingleSourceShortestPath,
    WeaklyConnectedComponents,
)
from repro.analytics.result import AnalyticsRun
from repro.database import WorkloadGenerator
from repro.experiments.datasets import (
    load_dataset,
    scale_profile,
    sssp_source,
)
from repro.partitioning import make_partitioner
from repro.partitioning.base import VertexPartition

#: Deterministic seed for partitioner tie-breaking / stream shuffles.
PARTITION_SEED = 1301
#: Stream order used throughout the experiments: datasets arrive in their
#: serialisation order, which carries locality for road/web graphs — the
#: same situation as the paper's bulk loads from disk.
STREAM_ORDER = "natural"


@dataclass
class ExperimentContext:
    """Shared state for a batch of experiments at one scale."""

    scale: str | None = None
    cost_model: object = DEFAULT_COST_MODEL
    _partitions: dict = field(default_factory=dict)
    _placements: dict = field(default_factory=dict)
    _runs: dict = field(default_factory=dict)
    _bindings: dict = field(default_factory=dict)

    @property
    def profile(self):
        return scale_profile(self.scale)

    # ------------------------------------------------------------------
    # Graphs & partitions
    # ------------------------------------------------------------------
    def graph(self, dataset: str):
        return load_dataset(dataset, self.scale)

    def partition(self, dataset: str, algorithm: str, k: int):
        """Partition *dataset* with *algorithm* into *k* parts (cached)."""
        key = (dataset, algorithm, k)
        if key not in self._partitions:
            graph = self.graph(dataset)
            partitioner = self._make(algorithm)
            self._partitions[key] = partitioner.partition(
                graph, k, order=STREAM_ORDER, seed=PARTITION_SEED,
            )
        return self._partitions[key]

    @staticmethod
    def _make(algorithm: str):
        try:
            return make_partitioner(algorithm, seed=PARTITION_SEED)
        except TypeError:
            # Hash-based algorithms are stateless and take no RNG seed.
            return make_partitioner(algorithm)

    def placement(self, dataset: str, algorithm: str, k: int) -> Placement:
        key = (dataset, algorithm, k)
        if key not in self._placements:
            self._placements[key] = Placement(
                self.graph(dataset), self.partition(dataset, algorithm, k),
            )
        return self._placements[key]

    # ------------------------------------------------------------------
    # Offline workloads
    # ------------------------------------------------------------------
    def make_workload(self, workload: str, dataset: str):
        if workload == "pagerank":
            return PageRank(num_iterations=self.profile.pagerank_iterations)
        if workload == "wcc":
            return WeaklyConnectedComponents()
        if workload == "sssp":
            return SingleSourceShortestPath(source=sssp_source(self.graph(dataset)))
        raise ValueError(f"unknown workload {workload!r}")

    def analytics_run(self, dataset: str, algorithm: str, k: int,
                      workload: str) -> AnalyticsRun:
        """Run (and cache) one offline workload execution."""
        key = (dataset, algorithm, k, workload)
        if key not in self._runs:
            graph = self.graph(dataset)
            placement = self.placement(dataset, algorithm, k)
            engine = GasEngine(self.cost_model)
            self._runs[key] = engine.run(
                graph, placement, self.make_workload(workload, dataset),
            )
        return self._runs[key]

    # ------------------------------------------------------------------
    # Online workloads
    # ------------------------------------------------------------------
    def bindings(self, dataset: str, kind: str):
        """The fixed binding set every algorithm serves (cached)."""
        key = (dataset, kind)
        if key not in self._bindings:
            generator = WorkloadGenerator(
                self.graph(dataset), skew=self.profile.workload_skew,
                seed=PARTITION_SEED,
            )
            self._bindings[key] = generator.bindings(
                kind, self.profile.num_bindings,
            )
        return self._bindings[key]

    def online_partition(self, dataset: str, algorithm: str,
                         k: int) -> VertexPartition:
        """Edge-cut partition for the database experiments (JanusGraph
        supports only the edge-cut model)."""
        partition = self.partition(dataset, algorithm, k)
        if not isinstance(partition, VertexPartition):
            raise ValueError(
                f"{algorithm} is not an edge-cut algorithm; the online "
                f"experiments only run edge-cut partitionings"
            )
        return partition
