"""Experiment orchestration: shared context, caching, sweep helpers.

One figure often reuses another's expensive intermediates (the Fig. 2
partitionings feed Figs. 1/3/4; the online partitionings feed Table 5 and
Figs. 5–8).  :class:`ExperimentContext` owns those caches, the scale
profile, and the seeds, so a full `run_all` regenerates every table and
figure from one consistent universe — the paper's "same partitions across
all experiments" methodology.

The context has two cache tiers.  The in-memory dictionaries give the
historical behaviour: within one process, one universe of partitionings.
When a :class:`~repro.orchestrator.ArtifactCache` is attached (the
``repro run-all`` path — see ``docs/orchestrator.md``), every expensive
read — :meth:`partition`, :meth:`analytics_run`, :meth:`bindings`,
:meth:`simulation` — first consults the content-addressed on-disk store,
so warm re-runs skip all substrate computation, interrupted runs resume
from completed artifacts, and parallel workers share one universe across
process boundaries.  :meth:`placement` is derived data: it is rebuilt
from the (cached) partition rather than stored, because pickling a
placement would duplicate the whole graph into every blob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics import (
    DEFAULT_COST_MODEL,
    GasEngine,
    PageRank,
    Placement,
    SingleSourceShortestPath,
    WeaklyConnectedComponents,
)
from repro.analytics.result import AnalyticsRun
from repro.database import WorkloadGenerator, simulate_workload
from repro.experiments.datasets import (
    active_scale,
    load_dataset,
    scale_profile,
    sssp_source,
)
from repro.partitioning import canonical_name, make_seeded_partitioner
from repro.partitioning.base import VertexPartition

#: Deterministic seed for partitioner tie-breaking / stream shuffles.
PARTITION_SEED = 1301
#: Stream order used throughout the experiments: datasets arrive in their
#: serialisation order, which carries locality for road/web graphs — the
#: same situation as the paper's bulk loads from disk.
STREAM_ORDER = "natural"


@dataclass
class ExperimentContext:
    """Shared state for a batch of experiments at one scale.

    ``cache`` is an optional :class:`repro.orchestrator.ArtifactCache`;
    when present every expensive intermediate is read through (and
    written to) the on-disk content-addressed store.
    """

    scale: str | None = None
    cost_model: object = DEFAULT_COST_MODEL
    cache: object = None
    _partitions: dict = field(default_factory=dict)
    _placements: dict = field(default_factory=dict)
    _runs: dict = field(default_factory=dict)
    _bindings: dict = field(default_factory=dict)
    _simulations: dict = field(default_factory=dict)
    _ingests: dict = field(default_factory=dict)

    @property
    def profile(self):
        return scale_profile(self.scale)

    @property
    def scale_name(self) -> str:
        """The resolved scale ('quick'/'default'/'large') used in keys."""
        return active_scale(self.scale)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _through_cache(self, memo: dict, memo_key, kind: str, fields: dict,
                      compute):
        """Memo dict -> on-disk artifact cache -> compute (and backfill).

        Every *compute* (a genuine recomputation, not a cache read) bumps
        the process-global ``orchestrator.computed.<kind>`` counter — the
        counter the warm-run acceptance check asserts stays at zero.
        """
        from repro import telemetry
        from repro.orchestrator.cache import MISS

        if memo_key in memo:
            return memo[memo_key]
        if self.cache is not None:
            value = self.cache.fetch(kind, fields)
            if value is not MISS:
                memo[memo_key] = value
                return value
        value = compute()
        telemetry.get_metrics().counter(f"orchestrator.computed.{kind}").inc()
        if self.cache is not None:
            self.cache.store(kind, fields, value)
        memo[memo_key] = value
        return value

    # ------------------------------------------------------------------
    # Graphs & partitions
    # ------------------------------------------------------------------
    def graph(self, dataset: str):
        return load_dataset(dataset, self.scale)

    def partition(self, dataset: str, algorithm: str, k: int):
        """Partition *dataset* with *algorithm* into *k* parts (cached)."""
        algorithm = canonical_name(algorithm)
        key = (dataset, algorithm, k)
        fields = {
            "dataset": dataset,
            "scale": self.scale_name,
            "algorithm": algorithm,
            "k": int(k),
            "order": STREAM_ORDER,
            "seed": PARTITION_SEED,
        }

        def compute():
            return self._make(algorithm).partition(
                self.graph(dataset), k, order=STREAM_ORDER, seed=PARTITION_SEED,
            )

        return self._through_cache(self._partitions, key, "partition",
                                   fields, compute)

    @staticmethod
    def _make(algorithm: str):
        # Seedable algorithms get the experiment seed; hash-based ones are
        # built without it.  The registry's accepts_seed flag makes the
        # distinction explicit, so a genuine TypeError raised inside a
        # constructor propagates instead of being retried seedless.
        return make_seeded_partitioner(algorithm, PARTITION_SEED)

    def placement(self, dataset: str, algorithm: str, k: int) -> Placement:
        """Placement for a (cached) partition.

        Derived data: rebuilt from the partition read through the cache
        rather than stored itself (a placement pickles the whole graph).
        """
        key = (dataset, canonical_name(algorithm), k)
        if key not in self._placements:
            self._placements[key] = Placement(
                self.graph(dataset), self.partition(dataset, algorithm, k),
            )
        return self._placements[key]

    # ------------------------------------------------------------------
    # Offline workloads
    # ------------------------------------------------------------------
    def make_workload(self, workload: str, dataset: str):
        if workload == "pagerank":
            return PageRank(num_iterations=self.profile.pagerank_iterations)
        if workload == "wcc":
            return WeaklyConnectedComponents()
        if workload == "sssp":
            return SingleSourceShortestPath(source=sssp_source(self.graph(dataset)))
        raise ValueError(f"unknown workload {workload!r}")

    def analytics_run(self, dataset: str, algorithm: str, k: int,
                      workload: str, *, fault_schedule=None,
                      checkpoint_interval: int | None = None) -> AnalyticsRun:
        """Run (and cache) one offline workload execution.

        ``fault_schedule``/``checkpoint_interval`` select the engine's
        fault-tolerant path; both are part of the cache key (the fault
        schedule by its deterministic ``repr``).
        """
        algorithm = canonical_name(algorithm)
        key = (dataset, algorithm, k, workload,
               repr(fault_schedule), checkpoint_interval)
        fields = {
            "dataset": dataset,
            "scale": self.scale_name,
            "algorithm": algorithm,
            "k": int(k),
            "workload": workload,
            "order": STREAM_ORDER,
            "seed": PARTITION_SEED,
            "cost_model": repr(self.cost_model),
            "faults": None if fault_schedule is None else repr(fault_schedule),
            "checkpoint_interval": checkpoint_interval,
        }

        def compute():
            engine = GasEngine(self.cost_model)
            kwargs = {}
            if fault_schedule is not None:
                kwargs["fault_schedule"] = fault_schedule
            if checkpoint_interval is not None:
                kwargs["checkpoint_interval"] = checkpoint_interval
            return engine.run(
                self.graph(dataset), self.placement(dataset, algorithm, k),
                self.make_workload(workload, dataset), **kwargs,
            )

        return self._through_cache(self._runs, key, "analytics",
                                   fields, compute)

    # ------------------------------------------------------------------
    # Out-of-core ingest
    # ------------------------------------------------------------------
    def ingest_run(self, spec: dict) -> dict:
        """Run (and cache) one out-of-core ingest described by *spec*.

        *spec* is the JSON-safe ``{"stream": {...}, "shard": {...}}``
        shape :func:`repro.ingest.run_ingest_spec` takes; the whole spec
        is the cache key.  Worker count is *not* part of the shard spec's
        identity (``ShardConfig.to_fields`` drops it), so summaries
        cached by a parallel run satisfy a serial re-run byte-for-byte.
        """
        from repro.ingest import ShardConfig, run_ingest_spec

        shard = ShardConfig(**dict(spec.get("shard", {})))
        fields = {
            "stream": dict(spec.get("stream", {})),
            "shard": shard.to_fields(),
        }
        key = repr(sorted(fields["stream"].items())) + repr(shard.to_fields())
        return self._through_cache(self._ingests, key, "ingest", fields,
                                   lambda: run_ingest_spec(spec))

    # ------------------------------------------------------------------
    # Online workloads
    # ------------------------------------------------------------------
    def bindings(self, dataset: str, kind: str):
        """The fixed binding set every algorithm serves (cached)."""
        key = (dataset, kind)
        fields = {
            "dataset": dataset,
            "scale": self.scale_name,
            "kind": kind,
            "num_bindings": self.profile.num_bindings,
            "skew": self.profile.workload_skew,
            "seed": PARTITION_SEED,
        }

        def compute():
            generator = WorkloadGenerator(
                self.graph(dataset), skew=self.profile.workload_skew,
                seed=PARTITION_SEED,
            )
            return generator.bindings(kind, self.profile.num_bindings)

        return self._through_cache(self._bindings, key, "bindings",
                                   fields, compute)

    def online_partition(self, dataset: str, algorithm: str,
                         k: int) -> VertexPartition:
        """Edge-cut partition for the database experiments (JanusGraph
        supports only the edge-cut model)."""
        partition = self.partition(dataset, algorithm, k)
        if not isinstance(partition, VertexPartition):
            raise ValueError(
                f"{algorithm} is not an edge-cut algorithm; the online "
                f"experiments only run edge-cut partitionings"
            )
        return partition

    def simulation(self, dataset: str, algorithm: str, k: int, kind: str, *,
                   clients_per_worker: int, duration: float | None = None,
                   worker_speeds=None, fault_schedule=None):
        """Run (and cache) one closed-loop database simulation.

        The standard online-experiment shape: *algorithm*'s edge-cut
        partition of *dataset* into *k* workers serving the fixed binding
        set of *kind*.  Heterogeneous speeds and fault schedules are part
        of the cache key (``worker_speeds`` as a float list, the schedule
        by its deterministic ``repr``).
        """
        algorithm = canonical_name(algorithm)
        if duration is None:
            duration = self.profile.sim_duration
        speeds = None if worker_speeds is None else [float(s) for s in worker_speeds]
        key = (dataset, algorithm, k, kind, clients_per_worker, duration,
               None if speeds is None else tuple(speeds), repr(fault_schedule))
        fields = {
            "dataset": dataset,
            "scale": self.scale_name,
            "algorithm": algorithm,
            "k": int(k),
            "kind": kind,
            "clients_per_worker": int(clients_per_worker),
            "duration": float(duration),
            "worker_speeds": speeds,
            "faults": None if fault_schedule is None else repr(fault_schedule),
            "order": STREAM_ORDER,
            "seed": PARTITION_SEED,
        }

        def compute():
            return simulate_workload(
                self.graph(dataset),
                self.online_partition(dataset, algorithm, k),
                self.bindings(dataset, kind),
                clients_per_worker=clients_per_worker,
                duration=duration,
                worker_speeds=speeds,
                fault_schedule=fault_schedule,
            )

        return self._through_cache(self._simulations, key, "simulation",
                                   fields, compute)
