"""Experiment harness: one entry point per paper table/figure."""

from repro.experiments.ablations import (
    ablation_dynamic_updates,
    ablation_fault_tolerance,
    ablation_fennel_gamma,
    ablation_partitioning_cost,
    ablation_straggler,
    ablation_ginger_threshold,
    ablation_hdrf_lambda,
    ablation_restreaming,
    ablation_sender_side_aggregation,
    ablation_stream_order,
)
from repro.experiments.datasets import (
    DATASETS,
    OFFLINE_DATASETS,
    dataset_summary,
    load_dataset,
    scale_profile,
    sssp_source,
)
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.online_service import online_service
from repro.experiments.report import ExperimentReport, Table
from repro.experiments.scale_sweep import scale_sweep
from repro.experiments.slo_ablation import slo_ablation
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import table3, table4, table5

#: Registry of all reproducible experiments, keyed by paper artifact id.
EXPERIMENTS = {
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "ablation-stream-order": ablation_stream_order,
    "ablation-fennel-gamma": ablation_fennel_gamma,
    "ablation-hdrf-lambda": ablation_hdrf_lambda,
    "ablation-ginger-threshold": ablation_ginger_threshold,
    "ablation-restreaming": ablation_restreaming,
    "ablation-dynamic-updates": ablation_dynamic_updates,
    "ablation-fault-tolerance": ablation_fault_tolerance,
    "ablation-straggler": ablation_straggler,
    "ablation-partitioning-cost": ablation_partitioning_cost,
    "ablation-sender-side-aggregation": ablation_sender_side_aggregation,
    "online-service": online_service,
    "slo-ablation": slo_ablation,
    "scale-sweep": scale_sweep,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentReport",
    "Table",
    "DATASETS",
    "OFFLINE_DATASETS",
    "load_dataset",
    "dataset_summary",
    "scale_profile",
    "sssp_source",
    "table3", "table4", "table5",
    "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
    "figure7", "figure8", "figure9", "figure12", "figure13", "figure14",
    "figure15",
    "ablation_stream_order", "ablation_fennel_gamma", "ablation_hdrf_lambda",
    "ablation_ginger_threshold", "ablation_restreaming",
    "ablation_dynamic_updates", "ablation_fault_tolerance",
    "ablation_straggler",
    "ablation_partitioning_cost",
    "ablation_sender_side_aggregation",
    "online_service",
    "slo_ablation",
    "scale_sweep",
]
