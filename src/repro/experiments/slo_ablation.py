"""SLO ablation: which service policies breach which objectives.

The online-service experiment shows the migration-budget/quality/latency
trade-off in aggregate; this one judges the same service loop the way an
operator would — against declarative SLOs with error budgets
(``docs/slo.md``).  Four policy variants run the identical
seed-deterministic traffic:

* **nominal** — service rate matches offered load, migration on: every
  objective should hold (the calibration anchor for the default SLOs);
* **starved rate** — the apply rate is half the offered load: the
  backlog and write-shed budgets burn through and page;
* **no migration** — drift-triggered repartitioning disabled, judged
  against a *tight* drift objective: partition quality decays until the
  drift SLO breaches;
* **degradation on** — the starved policy with the SLO feedback hook
  (``slo_degradation=True``): page alerts tighten admission, trading
  extra shed writes for a bounded backlog.

The report table shows budget consumption, page/ticket counts and the
breached SLO set per policy; the data payload carries the full alert
timelines and observability digests so the run is byte-regressable.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import ExperimentContext
from repro.service.config import ServiceConfig
from repro.service.core import PartitionedGraphService
from repro.telemetry.slo import default_service_slos

#: Seed for every service run in this experiment.
SERVICE_SEED = 11

#: Epochs per run — long enough for slow-window burn rates to mean
#: something, short enough for the quick CI scale.
EPOCHS = 12


def _base_config(num_vertices: int, **overrides) -> ServiceConfig:
    """The nominal policy, traffic scaled to the graph size."""
    mutations = max(200, (num_vertices * 3) // 10)
    settings = dict(
        num_partitions=8,
        epochs=EPOCHS,
        epoch_duration=0.2,
        seed=SERVICE_SEED,
        mutations_per_epoch=mutations,
        query_bindings_per_epoch=40,
        drift_threshold=0.015,
        migration_budget=max(256, num_vertices // 4),
        mutation_queue_bound=mutations * 2,
        mutation_service_rate=mutations,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


def _variants(num_vertices: int):
    """(label, config) policy variants, in report order."""
    mutations = max(200, (num_vertices * 3) // 10)
    # Query latency grows with graph size (deeper khop frontiers), so
    # the latency objective scales with the scenario: nominal holds it
    # with headroom at every scale profile.
    p99_bound = 30.0 + num_vertices * 0.025
    slos = default_service_slos(p99_latency_ms=p99_bound)
    # The no-migration run is judged against a drift objective tight
    # enough that unrepaired decay breaches it inside the horizon.
    tight_drift = default_service_slos(p99_latency_ms=p99_bound,
                                       drift_bound=0.01)
    return (
        ("nominal", _base_config(num_vertices, slos=slos)),
        ("starved rate",
         _base_config(num_vertices, slos=slos,
                      mutation_service_rate=max(1, mutations // 2))),
        ("no migration",
         _base_config(num_vertices, drift_threshold=None,
                      slos=tight_drift)),
        ("degradation on",
         _base_config(num_vertices, slos=slos,
                      mutation_service_rate=max(1, mutations // 2),
                      slo_degradation=True)),
    )


def slo_ablation(ctx: ExperimentContext | None = None,
                 dataset: str = "ldbc-snb") -> ExperimentReport:
    """Run the policy sweep and report SLO breaches per configuration."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)

    report = ExperimentReport(
        "slo-ablation",
        f"SLO ablation on {dataset} ({graph.num_vertices:,} vertices): "
        f"error-budget burn by service policy",
    )
    table = report.add_table(Table(
        "SLO outcome per policy "
        f"({EPOCHS} epochs, multi-window burn-rate alerting)",
        ["Policy", "Pages", "Tickets", "Breached SLOs",
         "WorstBudget", "ShedWrites", "Backlog", "FinalDrift"],
    ))
    data = {}
    for label, config in _variants(graph.num_vertices):
        result = PartitionedGraphService(graph, config=config).run()
        statuses = (result.slo_status or {}).get("slos", [])
        breached = [s["slo"]["name"] for s in statuses if s["breached"]]
        worst = max((s["consumed"] for s in statuses), default=0.0)
        pages = sum(s["pages"] for s in statuses)
        tickets = sum(s["tickets"] for s in statuses)
        final = result.drift[-1]
        backlog = result.epochs[-1].pending_mutations
        data[label] = {
            "pages": pages,
            "tickets": tickets,
            "breached": breached,
            "worst_budget_consumed": worst,
            "shed_writes": result.shed_writes,
            "final_backlog": backlog,
            "final_drift": final.drift,
            "alerts": [a.to_dict() for a in result.alerts],
            "slos": [{"name": s["slo"]["name"],
                      "consumed": s["consumed"],
                      "breached": s["breached"]} for s in statuses],
            "timeline_digest": result.digest(),
            "observability_digest": result.observability_digest(),
        }
        table.add_row(label, pages, tickets,
                      ", ".join(breached) if breached else "none",
                      f"{worst:.0%}", result.shed_writes, backlog,
                      round(final.drift, 4))
    report.data["results"] = data
    report.add_note("Expected: the nominal policy holds every objective; "
                    "starving the apply rate breaches backlog and "
                    "write-shed budgets (with pages); disabling migration "
                    "breaches the tight drift objective; the degradation "
                    "hook converts backlog into shed writes once paged.")
    return report
