"""Scale sweep: quality vs memory vs parallelism for out-of-core ingest.

The paper partitions graphs that fit in memory; the ingest subsystem
(``docs/scaling.md``) removes that ceiling with file-backed streams,
sketch-backed partitioner state and sharded parallel ingest.  Each of
those knobs trades partition quality or determinism guarantees for
resident memory or wall-clock, and this experiment maps the surface:

* **shards × sync interval** — more shards partition against staler
  load vectors between syncs; replication factor and balance degrade
  gracefully as the sync interval grows;
* **exact vs sketch state** — the count-min degree sketch caps state at
  ``width × depth`` counters per shard; quality loss only appears once
  distinct-vertex counts overflow the sketch width;
* **memory** — every cell reports the driver's tracked peak bytes next
  to what full materialisation would have cost.

Every cell is one deterministic :meth:`ExperimentContext.ingest_run`;
the summaries carry assignment digests, so any quality drift across
refactors is byte-regressable.  Throughput is deliberately absent here
(summaries must be cache-stable); ``benchmarks/bench_scale.py`` measures
the same surface with timers on.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import ExperimentContext

#: Seed for every spilled stream and shard run in this experiment.
SWEEP_SEED = 19

#: R-MAT scale (log2 vertices) of the swept stream, per scale profile.
STREAM_SCALES = {"quick": 11, "default": 13, "large": 15}

#: (num_shards, sync_interval) grid; 1 shard with an effectively
#: infinite sync interval is the sequential baseline.
SHARD_GRID = ((1, 1 << 30), (4, 4096), (4, 65536), (8, 16384))


def _stream_spec(profile_name: str) -> dict:
    return {
        "generator": "rmat",
        "scale": STREAM_SCALES.get(profile_name, 13),
        "edge_factor": 16.0,
        "seed": SWEEP_SEED,
    }


def scale_sweep(ctx: ExperimentContext | None = None) -> ExperimentReport:
    """Shards × sync-interval × degree-state quality/memory surface."""
    ctx = ctx or ExperimentContext()
    stream = _stream_spec(ctx.profile.name)

    report = ExperimentReport(
        "scale-sweep",
        f"Out-of-core ingest of an R-MAT scale-{stream['scale']} stream: "
        "sharding and sketch-state ablation",
    )
    table = report.add_table(Table(
        "Partition quality and peak memory by ingest configuration",
        ["State", "Shards", "SyncEvery", "Rounds", "RF", "Imbalance",
         "PeakKiB", "FullKiB"],
    ))
    data = {}
    for state in ("exact", "sketch"):
        for num_shards, sync_interval in SHARD_GRID:
            summary = ctx.ingest_run({
                "stream": stream,
                "shard": {
                    "algorithm": "hdrf",
                    "num_partitions": 8,
                    "state": state,
                    "num_shards": num_shards,
                    "sync_interval": sync_interval,
                    "seed": SWEEP_SEED,
                },
            })
            label = f"{state}/s{num_shards}/i{sync_interval}"
            data[label] = summary
            table.add_row(
                state, num_shards, sync_interval, summary["rounds"],
                round(summary["replication_factor"], 3),
                round(summary["load_imbalance"], 3),
                summary["peak_tracked_bytes"] // 1024,
                summary["full_materialization_bytes"] // 1024,
            )
    report.data["results"] = data
    report.data["stream"] = stream
    report.add_note("Expected: the single-shard run matches the sequential "
                    "partitioner's quality; more shards with longer sync "
                    "intervals raise the replication factor modestly; the "
                    "sketch state matches exact quality until the stream's "
                    "distinct-vertex count approaches the sketch width, and "
                    "peak tracked memory stays well under the full-"
                    "materialisation footprint throughout.")
    return report
