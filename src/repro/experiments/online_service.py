"""Online-service experiment: migration budget vs quality vs latency.

The paper's Section 2 motivation — partitionings age under live mutation
traffic — becomes an end-to-end scenario here: the
:class:`~repro.service.PartitionedGraphService` ingests the same
seed-deterministic mutation/query stream under three policies (no
migration, a tight migration budget, a generous one) and the report
shows the robustness trade-off: a bounded repartitioning buys back cut
quality at a measurable latency price, while admission control keeps
read loss at zero throughout.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import ExperimentContext
from repro.service.config import ServiceConfig
from repro.service.core import PartitionedGraphService

#: Seed for every service run in this experiment (distinct streams per
#: epoch are derived inside the service).
SERVICE_SEED = 7


def _service_config(num_vertices: int, *, budget: int | None) -> ServiceConfig:
    """One policy variant, with traffic scaled to the graph size."""
    mutations = max(200, (num_vertices * 3) // 10)
    return ServiceConfig(
        num_partitions=8,
        epochs=12,
        epoch_duration=0.2,
        seed=SERVICE_SEED,
        mutations_per_epoch=mutations,
        query_bindings_per_epoch=40,
        drift_threshold=None if budget is None else 0.015,
        migration_budget=budget or 0,
        mutation_queue_bound=mutations * 2,
        mutation_service_rate=mutations,
    )


def online_service(ctx: ExperimentContext | None = None,
                   dataset: str = "ldbc-snb") -> ExperimentReport:
    """Drift -> bounded migration -> recovery, across budget policies."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    budgets: tuple[tuple[str, int | None], ...] = (
        ("no migration", None),
        ("tight budget", max(64, graph.num_vertices // 16)),
        ("generous budget", max(256, graph.num_vertices // 4)),
    )

    report = ExperimentReport(
        "online-service",
        f"Online partitioning service on {dataset} "
        f"({graph.num_vertices:,} vertices): migration budget ablation",
    )
    table = report.add_table(Table(
        "Final quality and latency by migration policy",
        ["Policy", "Migrations", "Moved", "FinalCut", "p99(ms)",
         "ShedWrites", "ShedReads", "Failed"],
    ))
    data = {}
    for label, budget in budgets:
        config = _service_config(graph.num_vertices, budget=budget)
        result = PartitionedGraphService(graph, config=config).run()
        final = result.drift[-1]
        p99 = max((record.p99_latency_ms for record in result.epochs),
                  default=0.0)
        data[label] = {
            "budget": 0 if budget is None else budget,
            "migrations": len(result.migrations),
            "vertices_migrated": result.vertices_migrated,
            "final_edge_cut": final.edge_cut,
            "worst_p99_ms": p99,
            "shed_writes": result.shed_writes,
            "shed_reads": result.shed_reads,
            "failed_queries": result.total_failed_queries,
            "digest": result.digest(),
        }
        table.add_row(label, len(result.migrations),
                      result.vertices_migrated, round(final.edge_cut, 3),
                      round(p99, 2), result.shed_writes, result.shed_reads,
                      result.total_failed_queries)
    report.data["results"] = data
    report.add_note("Expected: migration recovers the drifting edge cut "
                    "within its vertex budget; the recovery epoch pays a "
                    "visible p99 bump (state transfer shares the workers); "
                    "reads are never shed under nominal load.")
    return report
