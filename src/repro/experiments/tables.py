"""Reproductions of the paper's tables (3, 4 and 5)."""

from __future__ import annotations

from repro.experiments.datasets import DATASETS, dataset_summary
from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import ExperimentContext
from repro.metrics import edge_cut_ratio
from repro.partitioning import ONLINE_ALGORITHMS

#: Client counts of the two load scenarios (Section 6.3.2).
MEDIUM_LOAD_CLIENTS = 12
HIGH_LOAD_CLIENTS = 24


def table3(ctx: ExperimentContext | None = None) -> ExperimentReport:
    """Table 3: characteristics of the graph datasets."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "table3", "Graph datasets used in experiments (scaled substitutes)",
    )
    table = report.add_table(Table(
        "Dataset characteristics",
        ["Dataset", "Edges", "Vertices", "AvgDeg", "MaxDeg", "Type"],
    ))
    rows = []
    for name in DATASETS:
        summary = dataset_summary(name, ctx.scale)
        rows.append(summary)
        table.add_row(summary["dataset"], summary["edges"],
                      summary["vertices"], summary["avg_degree"],
                      summary["max_degree"], summary["type"])
    report.data["rows"] = rows
    report.add_note(
        "Paper types: Twitter/LDBC heavy-tailed, UK2007-05 power-law, "
        "US-Road low-degree — matched by the generated substitutes."
    )
    return report


def table4(ctx: ExperimentContext | None = None,
           dataset: str = "ldbc-snb") -> ExperimentReport:
    """Table 4: edge-cut ratio on the LDBC SNB graph for 4–32 partitions."""
    ctx = ctx or ExperimentContext()
    graph = ctx.graph(dataset)
    report = ExperimentReport(
        "table4", f"Edge-cut ratio for {dataset} graph",
    )
    table = report.add_table(Table(
        "Edge-cut ratio (lower is better)",
        ["Partitions", *[a.upper() for a in ONLINE_ALGORITHMS]],
    ))
    data: dict[int, dict[str, float]] = {}
    for k in ctx.profile.online_partitions:
        row = {}
        for algorithm in ONLINE_ALGORITHMS:
            partition = ctx.online_partition(dataset, algorithm, k)
            row[algorithm] = edge_cut_ratio(graph, partition)
        data[k] = row
        table.add_row(k, *[round(row[a], 3) for a in ONLINE_ALGORITHMS])
    report.data["cut_ratios"] = data
    report.add_note("Expected shape: ECR ≈ 1 - 1/k; FNL between LDG and "
                    "MTS; MTS lowest (paper Table 4).")
    return report


def table5(ctx: ExperimentContext | None = None, dataset: str = "ldbc-snb",
           num_workers: int = 16) -> ExperimentReport:
    """Table 5: mean and tail latency of the 1-hop workload, 16 workers."""
    ctx = ctx or ExperimentContext()
    report = ExperimentReport(
        "table5",
        f"Mean and 99th-percentile latency (ms), 1-hop on {dataset}, "
        f"{num_workers} workers",
    )
    table = report.add_table(Table(
        "Latency under medium (12 clients/worker) and high (24) load",
        ["Algorithm", "Mean (med)", "p99 (med)", "Mean (high)", "p99 (high)"],
    ))
    data = {}
    for algorithm in ONLINE_ALGORITHMS:
        row = {}
        for label, clients in (("med", MEDIUM_LOAD_CLIENTS),
                               ("high", HIGH_LOAD_CLIENTS)):
            result = ctx.simulation(
                dataset, algorithm, num_workers, "one_hop",
                clients_per_worker=clients,
            )
            row[label] = result.latency()
        data[algorithm] = row
        table.add_row(
            algorithm.upper(),
            round(row["med"].mean * 1e3, 1), round(row["med"].p99 * 1e3, 1),
            round(row["high"].mean * 1e3, 1), round(row["high"].p99 * 1e3, 1),
        )
    report.data["latencies"] = data
    report.add_note("Expected shape: MTS lowest mean; LDG/FNL tail latency "
                    "well above ECR under high load (paper: up to 3.5x for FNL).")
    return report
