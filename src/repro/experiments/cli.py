"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table4
    python -m repro figure2 --scale quick
    python -m repro all --scale default
    python -m repro run-all --jobs 4               # orchestrated, cached
    python -m repro cache stats                    # artifact cache state
    python -m repro figure1 --trace trace.jsonl    # record a telemetry trace
    python -m repro trace trace.jsonl              # profile a recorded trace
    python -m repro lint src tests benchmarks      # reprolint invariants

Every report is stamped with provenance — real wall time plus the number
of telemetry spans and instrumentation calls recorded while it ran — so
a figure can always be matched to the trace that explains it.

``run-all`` routes through :mod:`repro.orchestrator`: the suite becomes
a job DAG, expensive intermediates land in the content-addressed cache
under ``.repro-cache/``, and ``--jobs N`` fans ready jobs across worker
processes (byte-identical to the serial run — asserted, not assumed).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import ExperimentContext

_EXAMPLES = """\
examples:
  repro list                        all experiment names
  repro table4                      one table, serial, uncached
  repro figure2 --scale quick       one figure at the quick scale
  repro run-all --jobs 4            full suite, 4 worker processes + cache
  repro run-all figure1 figure3     a subset, orchestrated
  repro cache stats                 entries / bytes / hit counters
  repro cache gc --max-age-days 7   drop stale-code and expired artifacts
  repro cache clear                 remove every cached artifact
  repro figure1 --trace t.jsonl     record a telemetry trace
  repro trace t.jsonl               profile a recorded trace
  repro lint src tests              check determinism/registry invariants
  repro sanitize                    hash-seed double-run digest diff
  repro serve-sim                   run the online partitioning service
  repro health --out artifacts/     SLO dashboard + OpenMetrics exports
  repro ingest spill rmat s.redg --scale 18    spill a stream to disk
  repro ingest partition s.redg -a hdrf --shards 4 --workers 4
"""


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["trace"]:
        # Profiling an existing trace is delegated to the repro-trace
        # tool; `python -m repro trace out.jsonl` is the same command.
        from repro.tools.trace_cli import main as trace_main
        return trace_main(argv[1:])
    if argv[:1] == ["lint"]:
        # The reprolint invariant checker (docs/static_analysis.md);
        # `python -m repro lint ...` is the same as the repro-lint script.
        from repro.tools.lint.cli import main as lint_main
        return lint_main(argv[1:])
    if argv[:1] == ["sanitize"]:
        # Runtime determinism sanitizer (docs/static_analysis.md):
        # REPRO_SANITIZE=1 double-run with perturbed hash seeds.
        from repro.tools.sanitize import main as sanitize_main
        return sanitize_main(argv[1:])
    if argv[:1] == ["serve-sim"]:
        # The online partitioning service (docs/online_service.md);
        # `python -m repro serve-sim --help` lists the scenario knobs.
        from repro.service.cli import main as serve_main
        return serve_main(argv[1:])
    if argv[:1] == ["health"]:
        # The SLO health dashboard over a service run (docs/slo.md):
        # sparklines, error-budget burn, alert log, export artifacts.
        from repro.tools.health_cli import main as health_main
        return health_main(argv[1:])
    if argv[:1] == ["ingest"]:
        # Out-of-core streams (docs/scaling.md): spill generators to the
        # on-disk .redg format, inspect files, sharded partitioning.
        from repro.tools.ingest_cli import main as ingest_main
        return ingest_main(argv[1:])
    if argv[:1] == ["run-all"]:
        return _run_all_command(argv[1:])
    if argv[:1] == ["cache"]:
        return _cache_command(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
        epilog=_EXAMPLES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. table4, figure2), 'list', "
                             "'all', 'run-all [--jobs N]', 'cache "
                             "{stats,gc,clear}', 'trace <file>' to profile "
                             "a recorded trace, or 'lint [paths]' to run "
                             "the reprolint invariant checker")
    parser.add_argument("--scale", choices=("quick", "default", "large"),
                        default=None,
                        help="dataset scale profile (default: $REPRO_SCALE "
                             "or 'default')")
    parser.add_argument("--trace", default=None, metavar="JSONL",
                        help="enable telemetry for the run and write the "
                             "span trace to this file")
    parser.add_argument("--trace-sample-every", type=int, default=64,
                        metavar="N",
                        help="record every Nth partitioner decision span "
                             "(default 64; only used with --trace)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("known experiments:", file=sys.stderr)
        for name in EXPERIMENTS:
            print(f"  {name}", file=sys.stderr)
        return 2

    from repro import telemetry

    if args.trace:
        with telemetry.recording(
                decision_sample_every=args.trace_sample_every) as tracer:
            status = _run_experiments(names, args.scale, tracer)
        tracer.write_jsonl(args.trace)
        print(f"[trace: {tracer.num_spans} spans written to {args.trace}]")
        return status
    return _run_experiments(names, args.scale, telemetry.get_tracer())


def _run_experiments(names, scale, tracer) -> int:
    ctx = ExperimentContext(scale=scale)
    for name in names:
        started = time.time()
        spans_before = tracer.num_spans
        calls_before = tracer.calls
        report = EXPERIMENTS[name](ctx)
        elapsed = time.time() - started
        report.stamp_provenance(
            wall_seconds=round(elapsed, 3),
            telemetry_spans=tracer.num_spans - spans_before,
            telemetry_calls=tracer.calls - calls_before,
        )
        print(report.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    return 0


# ----------------------------------------------------------------------
# run-all: the orchestrated path
# ----------------------------------------------------------------------
def _run_all_command(argv) -> int:
    from repro.errors import OrchestratorError
    from repro.orchestrator import ArtifactCache, run_experiments

    parser = argparse.ArgumentParser(
        prog="repro-experiments run-all",
        description="Run experiments through the job DAG with the "
                    "artifact cache (warm re-runs skip all substrate "
                    "computation).",
    )
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiment ids (default: the full suite)")
    parser.add_argument("--scale", choices=("quick", "default", "large"),
                        default=None)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = serial, the "
                             "determinism-parity baseline)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache for this run")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress report bodies; print the run "
                             "summary only")
    args = parser.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("known experiments:", file=sys.stderr)
        for name in EXPERIMENTS:
            print(f"  {name}", file=sys.stderr)
        return 2

    cache: ArtifactCache | bool = False if args.no_cache else (
        ArtifactCache(args.cache_dir) if args.cache_dir else True)

    def progress(done, total, job_id):
        print(f"[{done}/{total}] {job_id}", file=sys.stderr)

    try:
        result = run_experiments(names, scale=args.scale, jobs=args.jobs,
                                 cache=cache, progress=progress)
    except OrchestratorError as error:
        print(f"orchestrator error: {error}", file=sys.stderr)
        return 1

    if not args.quiet:
        for name in names:
            print(result.reports[name].render())
            print()
    executed = sum(result.executed.values())
    print(f"[run-all: {len(names)} experiments at scale "
          f"{result.scale!r}, jobs={result.jobs}, {executed} jobs "
          f"executed, {result.cached_reports} reports from cache, "
          f"{result.wall_seconds:.1f}s]")
    if result.cache_stats is not None:
        counters = result.cache_stats["counters"]
        hits = int(counters.get("cache.hits", 0))
        misses = int(counters.get("cache.misses", 0))
        print(f"[cache: {result.cache_stats['entries']} entries, "
              f"{hits} hits, {misses} misses]")
    return 0


# ----------------------------------------------------------------------
# cache: stats / gc / clear
# ----------------------------------------------------------------------
def _cache_command(argv) -> int:
    import json

    from repro.orchestrator import ArtifactCache

    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description="Inspect or prune the experiment artifact cache.",
    )
    parser.add_argument("verb", choices=("stats", "gc", "clear"))
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--max-age-days", type=float, default=None,
                        metavar="DAYS",
                        help="gc: also evict artifacts older than this")
    parser.add_argument("--json", action="store_true",
                        help="stats: emit machine-readable JSON")
    args = parser.parse_args(argv)

    cache = ArtifactCache(args.cache_dir)
    if args.verb == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"cache root:   {stats['root']}")
        print(f"fingerprint:  {stats['code_fingerprint']}")
        print(f"entries:      {stats['entries']} "
              f"({stats['stale_entries']} stale)")
        print(f"bytes:        {stats['bytes']:,}")
        for kind in sorted(stats["kinds"]):
            bucket = stats["kinds"][kind]
            print(f"  {kind:12s} {bucket['entries']} entries, "
                  f"{bucket['bytes']:,} bytes")
        for name in sorted(stats["counters"]):
            print(f"  {name:24s} {int(stats['counters'][name])}")
        return 0
    if args.verb == "gc":
        outcome = cache.gc(max_age_days=args.max_age_days)
        print(f"evicted {outcome['removed']} artifacts "
              f"({outcome['bytes']:,} bytes) from {cache.root}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} artifacts from {cache.root}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
