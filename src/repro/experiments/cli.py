"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table4
    python -m repro figure2 --scale quick
    python -m repro all --scale default
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import ExperimentContext


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. table4, figure2), "
                             "'list' or 'all'")
    parser.add_argument("--scale", choices=("quick", "default", "large"),
                        default=None,
                        help="dataset scale profile (default: $REPRO_SCALE "
                             "or 'default')")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    ctx = ExperimentContext(scale=args.scale)
    for name in names:
        started = time.time()
        report = EXPERIMENTS[name](ctx)
        elapsed = time.time() - started
        print(report.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
