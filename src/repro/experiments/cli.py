"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table4
    python -m repro figure2 --scale quick
    python -m repro all --scale default
    python -m repro figure1 --trace trace.jsonl   # record a telemetry trace
    python -m repro trace trace.jsonl             # profile a recorded trace

Every report is stamped with provenance — real wall time plus the number
of telemetry spans and instrumentation calls recorded while it ran — so
a figure can always be matched to the trace that explains it.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import ExperimentContext


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["trace"]:
        # Profiling an existing trace is delegated to the repro-trace
        # tool; `python -m repro trace out.jsonl` is the same command.
        from repro.tools.trace_cli import main as trace_main
        return trace_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. table4, figure2), "
                             "'list', 'all', or 'trace <file>' to profile "
                             "a recorded trace")
    parser.add_argument("--scale", choices=("quick", "default", "large"),
                        default=None,
                        help="dataset scale profile (default: $REPRO_SCALE "
                             "or 'default')")
    parser.add_argument("--trace", default=None, metavar="JSONL",
                        help="enable telemetry for the run and write the "
                             "span trace to this file")
    parser.add_argument("--trace-sample-every", type=int, default=64,
                        metavar="N",
                        help="record every Nth partitioner decision span "
                             "(default 64; only used with --trace)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    from repro import telemetry

    if args.trace:
        with telemetry.recording(
                decision_sample_every=args.trace_sample_every) as tracer:
            status = _run_experiments(names, args.scale, tracer)
        tracer.write_jsonl(args.trace)
        print(f"[trace: {tracer.num_spans} spans written to {args.trace}]")
        return status
    return _run_experiments(names, args.scale, telemetry.get_tracer())


def _run_experiments(names, scale, tracer) -> int:
    ctx = ExperimentContext(scale=scale)
    for name in names:
        started = time.time()
        spans_before = tracer.num_spans
        calls_before = tracer.calls
        report = EXPERIMENTS[name](ctx)
        elapsed = time.time() - started
        report.stamp_provenance(
            wall_seconds=round(elapsed, 3),
            telemetry_spans=tracer.num_spans - spans_before,
            telemetry_calls=tracer.calls - calls_before,
        )
        print(report.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
