"""The paper's Figure 9 decision tree as an executable recommender.

Figure 9 summarises the study's findings into a guide for picking an SGP
algorithm:

* **online queries** → if tail latency matters, Hashing; else, under
  medium load with throughput as the objective, FENNEL;
* **offline analytics** → by graph type: low-degree → FENNEL;
  power-law → HDRF; heavy-tailed → Hybrid (Ginger).

:func:`recommend` walks exactly that tree; :func:`recommend_for_graph`
first classifies the graph with :mod:`repro.graph.analysis` and then walks
it — which the reproduction benches use to check the recommender agrees
with the measured winners.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graph.analysis import classify_graph
from repro.graph.digraph import Graph

WORKLOAD_KINDS = ("analytics", "online")
OBJECTIVES = ("throughput", "latency")
LOAD_LEVELS = ("medium", "high")


@dataclass(frozen=True)
class Recommendation:
    """A recommendation plus the decision path that produced it."""

    algorithm: str
    path: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.algorithm}  ({' -> '.join(self.path)})"


def recommend(
    workload: str,
    *,
    graph_type: str | None = None,
    tail_latency_critical: bool = False,
    load: str = "medium",
    objective: str = "throughput",
) -> Recommendation:
    """Walk the Figure 9 decision tree.

    Parameters
    ----------
    workload:
        ``"analytics"`` (offline) or ``"online"`` (graph queries).
    graph_type:
        Required for analytics: ``"low-degree"``, ``"power-law"`` or
        ``"heavy-tailed"`` (use :func:`repro.graph.analysis.classify_graph`).
    tail_latency_critical:
        Online branch: is p99 latency an SLO?
    load:
        Online branch: ``"medium"`` or ``"high"`` expected system load.
    objective:
        Online branch: ``"throughput"`` or ``"latency"``.
    """
    if workload not in WORKLOAD_KINDS:
        raise ConfigurationError(f"workload must be one of {WORKLOAD_KINDS}")
    if load not in LOAD_LEVELS:
        raise ConfigurationError(f"load must be one of {LOAD_LEVELS}")
    if objective not in OBJECTIVES:
        raise ConfigurationError(f"objective must be one of {OBJECTIVES}")

    if workload == "online":
        path = ["workload=online"]
        if tail_latency_critical:
            path.append("tail latency critical")
            return Recommendation("ecr", tuple(path))
        path.append("tail latency not critical")
        if load == "high":
            # High load overloads the skewed partitions of greedy SGP
            # (Section 6.3.2): hashing keeps the trade-off.
            path.append("load=high")
            return Recommendation("ecr", tuple(path))
        path.append("load=medium")
        if objective == "throughput":
            path.append("objective=throughput")
            return Recommendation("fennel", tuple(path))
        path.append("objective=latency")
        return Recommendation("ecr", tuple(path))

    # Offline analytics branch: graph type decides.
    if graph_type is None:
        raise ConfigurationError("analytics recommendations need graph_type")
    path = ["workload=analytics", f"graph={graph_type}"]
    if graph_type == "low-degree":
        return Recommendation("fennel", tuple(path))
    if graph_type == "power-law":
        return Recommendation("hdrf", tuple(path))
    if graph_type == "heavy-tailed":
        return Recommendation("hg", tuple(path))
    raise ConfigurationError(
        "graph_type must be 'low-degree', 'power-law' or 'heavy-tailed'"
    )


def recommend_for_graph(graph: Graph, workload: str, **kwargs) -> Recommendation:
    """Classify *graph* and walk the tree (analytics fills graph_type)."""
    if workload == "analytics" and "graph_type" not in kwargs:
        kwargs["graph_type"] = classify_graph(graph)
    return recommend(workload, **kwargs)
