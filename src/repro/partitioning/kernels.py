"""Vectorized scoring kernels for the streaming hot loops.

Every SGP algorithm in the paper is a per-arrival ``argmax h(a_i, P^t)``
(Section 3), and this repo's measured ingestion rate (Section 6.1) is
dominated by how cheaply that per-arrival scoring runs.  The original
implementations allocated a fresh ``np.bincount``/score array and
re-derived the whole load-penalty vector on *every* stream element; this
module replaces those loops with preallocated, fused kernels shared by
the edge-cut family (LDG, FENNEL and their restreamed variants) and
batched helpers for the vertex-cut family (HDRF, DBH, Grid,
PowerGraph-greedy):

* :class:`LdgKernel` / :class:`FennelKernel` — preallocated score /
  count / penalty buffers reused across arrivals, with the load penalty
  maintained *incrementally* (only the partition that just gained a
  vertex is touched) and fused in-place score computation
  (``counts - penalty(sizes)`` via ``np.subtract(..., out=...)``);
* :func:`iter_vertex_arrivals` — CSR fast path over a graph-backed
  vertex stream that skips per-arrival ``VertexArrival`` construction;
* :func:`streaming_partial_degrees` — the partial-degree counters a
  sequential edge loop would maintain, computed for the whole stream in
  one vectorized pass (used by HDRF's θ term, DBH-partial and greedy);
* :func:`iter_edge_chunks` — chunked edge-stream processing so the
  sequential vertex-cut loops convert numpy → Python scalars one block
  at a time instead of materialising three stream-length lists;
* :func:`argmax_tie_least_loaded` / :func:`argmin_with_ties_inline` —
  allocation-light tie-breaking, bit-identical (including RNG
  consumption) to :func:`repro.partitioning.base.argmax_with_ties` with
  a least-loaded tie break and :func:`repro.partitioning.base.argmin_with_ties`.

Every kernel is a pure performance change: the golden-digest equivalence
suite (``tests/test_partitioning_kernels.py``) asserts that ported
partitioners produce **bit-identical** assignments to the pre-kernel
reference implementations (:mod:`repro.partitioning._reference`) for
every (algorithm, seed, stream order) pair in its matrix.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.graph.digraph import Graph
from repro.tools import sanitize

__all__ = [
    "DEFAULT_EDGE_CHUNK",
    "FennelKernel",
    "LdgKernel",
    "argmax_tie_least_loaded",
    "argmin_with_ties_inline",
    "iter_edge_chunks",
    "iter_vertex_arrivals",
    "streaming_partial_degrees",
    "zip_chunked",
]

#: Edges converted from numpy to Python scalars per block in the
#: sequential vertex-cut loops.  Large enough to amortise the ``tolist``
#: call, small enough to keep the transient lists cache-friendly.
DEFAULT_EDGE_CHUNK = 16384


# ----------------------------------------------------------------------
# Stream iteration fast paths
# ----------------------------------------------------------------------
def iter_vertex_arrivals(stream: Iterable) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(vertex, neighbors)`` pairs from a vertex stream, cheaply.

    Graph-backed :class:`~repro.graph.stream.VertexStream` objects expose
    their permutation and backing graph, letting us slice the undirected
    CSR directly and skip per-arrival ``VertexArrival`` construction and
    ``Graph.neighbors`` method dispatch.  The yielded neighbour arrays
    are views of the same CSR slices the stream itself would produce.
    Any other iterable of ``(vertex, neighbors)``-shaped elements works
    too (the generic path).
    """
    graph = getattr(stream, "graph", None)
    permutation = getattr(stream, "permutation", None)
    if isinstance(graph, Graph) and permutation is not None:
        indptr, indices = graph.undirected_csr()
        starts = indptr.tolist()
        for u in permutation.tolist():
            yield u, indices[starts[u]:starts[u + 1]]
    else:
        for arrival in stream:
            vertex, neighbors = arrival
            yield int(vertex), np.asarray(neighbors)


def iter_edge_chunks(
    stream: Iterable, chunk_size: int = DEFAULT_EDGE_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(edge_ids, src, dst)`` array chunks of an edge stream.

    Peak extra memory is ``O(chunk_size)`` on every path — the stream is
    never materialised whole:

    * streams exposing ``iter_chunks(chunk_size)`` (the file-backed
      :class:`repro.ingest.FileEdgeStream`) delegate to it and read
      chunks straight off disk;
    * graph-backed :class:`~repro.graph.stream.EdgeStream` objects slice
      their permutation per chunk and gather only those edges;
    * any other iterable of ``EdgeArrival``-shaped elements is buffered
      one chunk at a time.

    Arrival order is preserved exactly on all three paths.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    file_chunks = getattr(stream, "iter_chunks", None)
    if callable(file_chunks):
        yield from file_chunks(chunk_size)
        return
    graph = getattr(stream, "graph", None)
    permutation = getattr(stream, "permutation", None)
    if graph is not None and permutation is not None:
        permutation = np.asarray(permutation, dtype=np.int64)
        src, dst = graph.src, graph.dst
        for start in range(0, int(permutation.size), chunk_size):
            chunk_ids = permutation[start:start + chunk_size]
            yield chunk_ids, src[chunk_ids], dst[chunk_ids]
        return
    ids: list = []
    srcs: list = []
    dsts: list = []
    for arrival in stream:
        edge_id, u, v = arrival
        ids.append(edge_id)
        srcs.append(u)
        dsts.append(v)
        if len(ids) >= chunk_size:
            yield (np.asarray(ids, dtype=np.int64),
                   np.asarray(srcs, dtype=np.int64),
                   np.asarray(dsts, dtype=np.int64))
            ids, srcs, dsts = [], [], []
    if ids:
        yield (np.asarray(ids, dtype=np.int64),
               np.asarray(srcs, dtype=np.int64),
               np.asarray(dsts, dtype=np.int64))


def zip_chunked(*arrays: np.ndarray,
                chunk_size: int = DEFAULT_EDGE_CHUNK) -> Iterator[tuple]:
    """``zip`` over parallel arrays, converted to Python scalars per chunk.

    The sequential vertex-cut loops read each arrival as Python scalars;
    ``tolist`` on a bounded chunk is far cheaper than per-element
    ``arr[i]`` indexing and never materialises stream-length lists.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    size = int(arrays[0].size)
    for start in range(0, size, chunk_size):
        stop = start + chunk_size
        yield from zip(*[a[start:stop].tolist() for a in arrays])


def streaming_partial_degrees(
    src: np.ndarray, dst: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-arrival partial degrees, vectorized over the whole stream.

    Element ``i`` of the returned ``(d_src, d_dst)`` pair equals the
    counters a sequential loop would hold **after** incrementing both
    endpoints of edge ``i`` — exactly the state HDRF's θ term, DBH's
    partial mode and PowerGraph-greedy's degree comparison read.  A
    self-loop counts twice, matching two scalar increments.

    This is the whole-stream form; when the stream cannot be held in
    memory, :class:`repro.partitioning.degree_state.ExactDegreeTable`
    accumulates the identical counters chunk by chunk (bit-identical for
    any chunk layout) and is what the partitioners actually use.
    """
    from repro.partitioning.degree_state import run_inclusive_ranks

    m = int(src.size)
    if m == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    interleaved = np.empty(2 * m, dtype=np.int64)
    interleaved[0::2] = src
    interleaved[1::2] = dst
    occurrences = run_inclusive_ranks(interleaved)
    d_src = occurrences[0::2] + (src == dst)
    d_dst = occurrences[1::2]
    return d_src, d_dst


# ----------------------------------------------------------------------
# Tie-breaking (bit-identical to the base helpers, fewer allocations)
# ----------------------------------------------------------------------
def argmax_tie_least_loaded(
    scores: np.ndarray, sizes: np.ndarray,
    rng: np.random.Generator | None,
) -> int:
    """Index of the max score; ties to the least-loaded partition, then RNG.

    Semantically identical — including *when* the RNG is consumed — to
    ``argmax_with_ties(scores, tie_break=sizes, rng=rng)``.  The k-wide
    vectors are scanned as Python scalars: at the small k of the paper's
    experiments, one ``tolist`` plus a scalar loop is several times
    cheaper than the ``max``/``flatnonzero``/fancy-index sequence, and
    scalar float comparison is the same IEEE-754 comparison numpy
    performs elementwise.
    """
    values = scores.tolist()
    best = values[0]
    ties = [0]
    for i in range(1, len(values)):
        value = values[i]
        if value > best:
            best = value
            ties = [i]
        elif value == best:
            ties.append(i)
    if len(ties) == 1:
        return ties[0]
    loads = sizes.tolist()
    lightest = min(loads[i] for i in ties)
    ties = [i for i in ties if loads[i] == lightest]
    if len(ties) == 1 or rng is None:
        return ties[0]
    return ties[int(rng.integers(0, len(ties)))]


def argmin_with_ties_inline(
    values: np.ndarray, rng: np.random.Generator | None,
) -> int:
    """Index of the min; ties broken uniformly at random when *rng* given.

    Semantically identical — including RNG consumption — to
    :func:`repro.partitioning.base.argmin_with_ties`, scalar-scanned for
    the same reason as :func:`argmax_tie_least_loaded`.
    """
    items = values.tolist()
    best = items[0]
    ties = [0]
    for i in range(1, len(items)):
        item = items[i]
        if item < best:
            best = item
            ties = [i]
        elif item == best:
            ties.append(i)
    if len(ties) == 1 or rng is None:
        return ties[0]
    return ties[int(rng.integers(0, len(ties)))]


# ----------------------------------------------------------------------
# Edge-cut scoring kernels (vertex streams)
# ----------------------------------------------------------------------
class _EdgeCutKernel:
    """Shared preallocated state for vertex-stream scoring kernels.

    Vertex placements live in ``slots``: ``slots[v] == k`` means "not yet
    placed".  Mapping the unplaced sentinel to bucket ``k`` lets
    neighbour counting be a single ``bincount(minlength=k + 1)`` whose
    overflow bucket absorbs unplaced neighbours — no mask, no filtered
    copy per arrival.
    """

    def __init__(self, num_partitions: int, num_vertices: int) -> None:
        self.k = int(num_partitions)
        self.num_vertices = int(num_vertices)
        self.slots = np.full(self.num_vertices, self.k, dtype=np.int64)
        self.sizes = np.zeros(self.k, dtype=np.int64)
        self.scores = np.empty(self.k, dtype=np.float64)

    def neighbor_counts(self, neighbors: np.ndarray) -> np.ndarray:
        """|P_i ∩ N(u)| for all i (bucket ``k`` = unplaced, ignored)."""
        return np.bincount(self.slots[neighbors], minlength=self.k + 1)

    def mixed_counts(self, neighbors: np.ndarray,
                     previous_slots: np.ndarray) -> np.ndarray:
        """Neighbour counts against the restreaming mixed view.

        Neighbours already re-assigned in the current pass use their
        fresh slot; everyone else falls back to the previous pass's
        (Nishimura & Ugander's update rule).
        """
        fresh = self.slots[neighbors]
        stale = previous_slots[neighbors]
        view = np.where(fresh != self.k, fresh, stale)
        return np.bincount(view, minlength=self.k + 1)

    def begin_pass(self) -> None:
        """Reset placements and loads (restreaming refills from empty)."""
        self.slots.fill(self.k)
        self.sizes.fill(0)

    def export_assignment(self) -> np.ndarray:
        """Slots as an ``int32`` assignment with the UNASSIGNED sentinel."""
        from repro.partitioning.base import UNASSIGNED

        if sanitize.ACTIVE:
            sanitize.check_sizes(self.sizes,
                                 "kernels._EdgeCutKernel.export_assignment")
        assignment = np.where(self.slots == self.k, UNASSIGNED, self.slots)
        return assignment.astype(np.int32)


class LdgKernel(_EdgeCutKernel):
    """Fused LDG objective: ``counts * (1 - sizes / capacity)`` (Eq. 4).

    The multiplicative availability term ``1 - |P_i| / C`` changes only
    for the partition that just gained a vertex, so it is maintained
    incrementally and the per-arrival score is a single in-place
    ``np.multiply`` into the preallocated buffer.
    """

    def __init__(self, num_partitions: int, num_vertices: int,
                 capacity: float) -> None:
        super().__init__(num_partitions, num_vertices)
        self.capacity = float(capacity)
        self._availability = np.ones(self.k, dtype=np.float64)

    def score_counts(self, counts: np.ndarray) -> np.ndarray:
        if sanitize.ACTIVE:
            sanitize.check_no_alias(self.scores, counts,
                                    "kernels.LdgKernel.score_counts")
        np.multiply(counts[:self.k], self._availability, out=self.scores)
        if sanitize.ACTIVE:
            sanitize.check_scores(self.scores,
                                  "kernels.LdgKernel.score_counts")
        return self.scores

    def score(self, neighbors: np.ndarray) -> np.ndarray:
        return self.score_counts(self.neighbor_counts(neighbors))

    def place(self, vertex: int, target: int) -> None:
        self.slots[vertex] = target
        size = int(self.sizes[target]) + 1
        self.sizes[target] = size
        self._availability[target] = 1.0 - size / self.capacity

    def begin_pass(self) -> None:
        super().begin_pass()
        self._availability.fill(1.0)


class FennelKernel(_EdgeCutKernel):
    """Fused FENNEL objective: ``counts - α γ |P_i|^(γ-1)`` (Eq. 5).

    The additive load penalty (including the ν-capacity mask, folded in
    as ``+inf`` so ``counts - penalty`` is ``-inf`` for full partitions)
    is maintained incrementally: placing a vertex recomputes one scalar
    power instead of a k-wide vector power per arrival.
    """

    def __init__(self, num_partitions: int, num_vertices: int,
                 alpha: float, gamma: float, capacity: float) -> None:
        super().__init__(num_partitions, num_vertices)
        self.gamma = float(gamma)
        self.capacity = float(capacity)
        self._exponent = self.gamma - 1.0
        self._coefficient = float(alpha) * self.gamma
        self._penalty = np.zeros(self.k, dtype=np.float64)

    def score_counts(self, counts: np.ndarray) -> np.ndarray:
        if sanitize.ACTIVE:
            sanitize.check_no_alias(self.scores, counts,
                                    "kernels.FennelKernel.score_counts")
        np.subtract(counts[:self.k], self._penalty, out=self.scores)
        if sanitize.ACTIVE:
            # -inf is legitimate here (full partitions); NaN is not.
            sanitize.check_scores(self.scores,
                                  "kernels.FennelKernel.score_counts")
        return self.scores

    def score(self, neighbors: np.ndarray) -> np.ndarray:
        return self.score_counts(self.neighbor_counts(neighbors))

    def place(self, vertex: int, target: int) -> None:
        self.slots[vertex] = target
        size = int(self.sizes[target]) + 1
        self.sizes[target] = size
        if size >= self.capacity:
            self._penalty[target] = np.inf
        else:
            self._penalty[target] = (
                self._coefficient * np.float64(size) ** self._exponent)

    def begin_pass(self, alpha: float | None = None) -> None:
        """Reset for a restreaming pass, optionally annealing α."""
        super().begin_pass()
        if alpha is not None:
            self._coefficient = float(alpha) * self.gamma
        self._penalty.fill(0.0)
