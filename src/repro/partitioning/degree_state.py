"""Bounded-memory degree state for the vertex-cut streaming loops.

HDRF's θ term, DBH-partial's hash choice and PowerGraph-greedy's rule 2
all read the *partial degree* counters a sequential edge loop would hold
after each arrival.  The kernel layer originally reconstructed those
counters for the whole stream in one vectorized pass
(:func:`repro.partitioning.kernels.streaming_partial_degrees`), which is
fast but requires the full stream in memory — exactly what the
out-of-core ingest path (:mod:`repro.ingest`) must avoid.

This module provides the chunk-accumulating equivalent behind one small
interface, ``push(src, dst) -> (d_src, d_dst)``:

* :class:`ExactDegreeTable` — an ``int64[num_vertices]`` counter table.
  Feeding a stream through ``push`` chunk by chunk yields **bit-identical**
  per-arrival degrees to the whole-stream helper, for *any* chunk layout
  (the golden-digest suite pins this).  Memory: ``8·n`` bytes.
* :class:`SketchDegreeTable` — the same interface over a deterministic
  :class:`CountMinSketch` (seeded via :func:`repro.rng.splitmix64`), per
  "Streaming Hypergraph Partitioning Algorithms on Limited Memory
  Environments" (arXiv 2103.05394).  Memory: ``8·width·depth`` bytes,
  independent of the vertex count; estimates never *under*-count, with
  overcount ≤ ``e/width · N`` at probability ``1 − e^{−depth}`` (N =
  total endpoint arrivals).

Both states are chunk-size invariant: splitting the same stream into
different chunk layouts produces the same per-arrival answers, which is
what makes the sharded ingest driver's digests independent of file chunk
geometry.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import splitmix64
from repro.tools import sanitize

__all__ = [
    "DEFAULT_SKETCH_DEPTH",
    "DEFAULT_SKETCH_WIDTH",
    "DEGREE_STATES",
    "CountMinSketch",
    "ExactDegreeTable",
    "SketchDegreeTable",
    "make_degree_state",
    "run_inclusive_ranks",
]

#: Recognised ``state=`` values on the vertex-cut partitioners.
DEGREE_STATES = ("exact", "sketch")

#: Default count-min geometry: 4 × 16384 × 8 B = 512 KiB of state,
#: ε = e/width ≈ 1.7e-4 relative overcount at δ = e^-4 ≈ 1.8%.
DEFAULT_SKETCH_WIDTH = 16384
DEFAULT_SKETCH_DEPTH = 4


def run_inclusive_ranks(values: np.ndarray) -> np.ndarray:
    """1-based rank of each element within its equal-value run.

    ``out[i]`` counts the occurrences of ``values[i]`` at positions
    ``<= i`` — the inclusive per-occurrence counter a scalar tally loop
    would report.  This is the vectorized core shared by
    :func:`repro.partitioning.kernels.streaming_partial_degrees` (whole
    stream) and the chunk-accumulating tables here (per chunk, offset by
    the carried counters).
    """
    n = int(values.size)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    is_run_start = np.empty(n, dtype=bool)
    is_run_start[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=is_run_start[1:])
    run_starts = np.flatnonzero(is_run_start)
    run_lengths = np.diff(np.append(run_starts, n))
    rank = np.arange(n, dtype=np.int64) - np.repeat(run_starts, run_lengths)
    out = np.empty(n, dtype=np.int64)
    out[order] = rank + 1
    return out


def _interleave(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Endpoint arrivals in scalar-loop order: src0, dst0, src1, dst1, …"""
    m = int(src.size)
    interleaved = np.empty(2 * m, dtype=np.int64)
    interleaved[0::2] = src
    interleaved[1::2] = dst
    return interleaved


def _run_totals(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique values of a chunk with their occurrence counts.

    Like ``np.unique(values, return_counts=True)`` but reusing the same
    stable sort the rank computation performs; the unique index arrays
    let the tables apply one fancy-indexed ``+=`` per chunk instead of
    the much slower ``np.add.at`` scatter.
    """
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    n = int(values.size)
    is_run_start = np.empty(n, dtype=bool)
    is_run_start[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=is_run_start[1:])
    run_starts = np.flatnonzero(is_run_start)
    run_lengths = np.diff(np.append(run_starts, n))
    return sorted_values[run_starts], run_lengths


class ExactDegreeTable:
    """Exact partial-degree counters, accumulated chunk by chunk.

    Bit-identical to the sequential scalar loop (and therefore to the
    whole-stream vectorized reconstruction) for any chunk layout.
    """

    kind = "exact"

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = int(num_vertices)
        if self.num_vertices < 0:
            raise ConfigurationError("num_vertices must be non-negative")
        self._counts = np.zeros(self.num_vertices, dtype=np.int64)

    @property
    def nbytes(self) -> int:
        """Bytes of counter state held."""
        return int(self._counts.nbytes)

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        """Current (exact) degree counters of *vertices*."""
        return self._counts[np.asarray(vertices, dtype=np.int64)]

    def push(self, src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Account one chunk of edges; per-arrival inclusive degrees.

        Element ``i`` of the returned ``(d_src, d_dst)`` equals the
        counters a scalar loop would hold **after** incrementing both
        endpoints of edge ``i`` (a self-loop counts twice).
        """
        m = int(src.size)
        if m == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        interleaved = _interleave(src, dst)
        inclusive = self._counts[interleaved] + run_inclusive_ranks(interleaved)
        uniques, totals = _run_totals(interleaved)
        self._counts[uniques] += totals
        d_src = inclusive[0::2] + (src == dst)
        d_dst = inclusive[1::2]
        return d_src, d_dst


class CountMinSketch:
    """Deterministic count-min sketch over non-negative integer keys.

    ``depth`` rows of ``width`` counters; row ``j`` hashes through
    :func:`repro.rng.splitmix64` with seed ``seed + j``, so the whole
    structure is a pure function of ``(width, depth, seed)`` — two
    processes building sketches from the same stream agree exactly.
    Counters only grow, so estimates never under-count the true
    frequency; the classic bound gives overcount ``≤ (e/width)·N`` with
    probability ``1 − e^{−depth}`` for N total increments.
    """

    def __init__(self, width: int = DEFAULT_SKETCH_WIDTH,
                 depth: int = DEFAULT_SKETCH_DEPTH, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError(
                f"count-min sketch needs width >= 1 and depth >= 1, "
                f"got width={width}, depth={depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)

    @property
    def nbytes(self) -> int:
        return int(self._table.nbytes)

    def _slots(self, values: np.ndarray, row: int) -> np.ndarray:
        hashed = splitmix64(values, self.seed + row)
        return (hashed % np.uint64(self.width)).astype(np.int64)

    def add(self, values: np.ndarray) -> None:
        """Count one occurrence of every element of *values*."""
        if int(values.size) == 0:
            return
        values = np.asarray(values, dtype=np.int64)
        for row in range(self.depth):
            uniques, totals = _run_totals(self._slots(values, row))
            self._table[row, uniques] += totals

    def estimate(self, values: np.ndarray) -> np.ndarray:
        """Frequency estimates (min over rows) for *values*."""
        values = np.asarray(values, dtype=np.int64)
        estimates = self._table[0, self._slots(values, 0)].copy()
        for row in range(1, self.depth):
            np.minimum(estimates, self._table[row, self._slots(values, row)],
                       out=estimates)
        return estimates

    def add_with_ranks(self, values: np.ndarray) -> np.ndarray:
        """Count *values* and return inclusive per-occurrence estimates.

        ``out[i]`` is the estimate a scalar loop doing
        ``add(v); estimate(v)`` per element would report at position
        ``i`` — prior table content plus the element's inclusive rank
        among equal-slot arrivals within this call, minimised over rows.
        Chunk-size invariant for the same overall sequence.
        """
        n = int(values.size)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        estimates: np.ndarray | None = None
        for row in range(self.depth):
            slots = self._slots(values, row)
            row_estimate = self._table[row, slots] + run_inclusive_ranks(slots)
            uniques, totals = _run_totals(slots)
            self._table[row, uniques] += totals
            if estimates is None:
                estimates = row_estimate
            else:
                np.minimum(estimates, row_estimate, out=estimates)
        assert estimates is not None
        if sanitize.ACTIVE:
            # Counters only grow; a negative cell is int64 wraparound.
            sanitize.check_sizes(self._table.reshape(-1),
                                 "degree_state.CountMinSketch")
        return estimates


class SketchDegreeTable:
    """Count-min-backed partial degrees with the :class:`ExactDegreeTable`
    interface — the ``state="sketch"`` mode of HDRF/DBH/greedy.

    Estimates are upper bounds on the exact counters, so θ and the
    degree comparisons degrade gracefully (hubs stay hubs); memory is
    fixed at ``8·width·depth`` bytes regardless of graph size.
    """

    kind = "sketch"

    def __init__(self, num_vertices: int, width: int = DEFAULT_SKETCH_WIDTH,
                 depth: int = DEFAULT_SKETCH_DEPTH, seed: int = 0) -> None:
        self.num_vertices = int(num_vertices)
        self.sketch = CountMinSketch(width, depth, seed)

    @property
    def nbytes(self) -> int:
        return self.sketch.nbytes

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        """Current degree estimates (never below the exact counters)."""
        return self.sketch.estimate(vertices)

    def push(self, src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Account one chunk of edges; per-arrival degree estimates."""
        m = int(src.size)
        if m == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        inclusive = self.sketch.add_with_ranks(_interleave(src, dst))
        d_src = inclusive[0::2] + (src == dst)
        d_dst = inclusive[1::2]
        return d_src, d_dst


def make_degree_state(
    state: str, num_vertices: int, *,
    sketch_width: int = DEFAULT_SKETCH_WIDTH,
    sketch_depth: int = DEFAULT_SKETCH_DEPTH,
    sketch_seed: int = 0,
) -> "ExactDegreeTable | SketchDegreeTable":
    """Build the degree state selected by a partitioner's ``state=``."""
    if state == "exact":
        return ExactDegreeTable(num_vertices)
    if state == "sketch":
        return SketchDegreeTable(num_vertices, sketch_width, sketch_depth,
                                 sketch_seed)
    raise ConfigurationError(
        f"unknown degree state {state!r}; expected one of {DEGREE_STATES}")
