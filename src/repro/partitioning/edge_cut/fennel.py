"""FENNEL — Tsourakakis et al., WSDM 2014.

Eq. 5 of the paper: modularity-style streaming objective with an *additive*
load penalty instead of LDG's multiplicative one:

    argmax_i  |P_i ∩ N(u)| - α γ |P_i|^(γ-1)

The original paper recommends ``γ = 1.5`` and
``α = sqrt(k) * m / n^1.5`` (their Theorem/parameter analysis as a function
of m and k), and additionally caps partitions at ``ν n / k`` so the additive
relaxation cannot run away; we implement both with the same defaults.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    VertexPartition,
    VertexPartitioner,
    check_num_partitions,
)
from repro.partitioning.kernels import (
    FennelKernel,
    argmax_tie_least_loaded,
    iter_vertex_arrivals,
)
from repro.rng import make_rng
from repro.telemetry import get_tracer


class FennelPartitioner(VertexPartitioner):
    """FENNEL edge-cut streaming partitioner.

    Parameters
    ----------
    gamma:
        Exponent of the load term (γ in Eq. 5); 1.5 per the original paper.
    alpha:
        Scaling of the load term; when ``None`` (default) it is computed as
        ``sqrt(k) * m / n^1.5`` at stream time, which requires the stream
        to know the total edge count — the in-memory convenience path
        provides it, and external callers can pass ``num_edges``.
    load_cap:
        Hard capacity multiplier ν: no partition may exceed ``ν n / k``.
    seed:
        Tie-break randomness.
    """

    name = "fennel"

    def __init__(self, gamma: float = 1.5, alpha: float | None = None,
                 load_cap: float = 1.1, seed=None):
        if gamma <= 1.0:
            raise ConfigurationError("gamma must be > 1")
        if load_cap < 1.0:
            raise ConfigurationError("load_cap (nu) must be >= 1")
        self.gamma = gamma
        self.alpha = alpha
        self.load_cap = load_cap
        self.seed = seed

    def _resolve_alpha(self, k: int, num_vertices: int, num_edges: int | None) -> float:
        if self.alpha is not None:
            return self.alpha
        if num_edges is None:
            raise ConfigurationError(
                "FENNEL needs num_edges to derive alpha; pass alpha= explicitly "
                "for streams of unknown size"
            )
        n = max(num_vertices, 1)
        return float(np.sqrt(k) * num_edges / n ** 1.5)

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int,
                         num_edges: int | None = None) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        if num_edges is None:
            graph = getattr(stream, "graph", None)
            num_edges = graph.num_edges if graph is not None else None
        alpha = self._resolve_alpha(k, num_vertices, num_edges)
        capacity = max(1.0, self.load_cap * num_vertices / k)
        kernel = FennelKernel(k, num_vertices, alpha, self.gamma, capacity)
        sizes = kernel.sizes
        tracer = get_tracer()
        trace_every = tracer.decision_sample_every if tracer.enabled else 0
        decision = 0

        for vertex, neighbors in iter_vertex_arrivals(stream):
            scores = kernel.score(neighbors)
            target = argmax_tie_least_loaded(scores, sizes, rng)
            if trace_every:
                if decision % trace_every == 0:
                    tracer.point(
                        "sgp.decision", float(decision),
                        algorithm=self.name, vertex=int(vertex),
                        chosen=int(target),
                        ties=int(np.count_nonzero(scores == scores.max())),
                        # -inf marks capacity-masked partitions; JSON-ify
                        # the mask as null so traces stay standard JSON.
                        scores=[float(s) if np.isfinite(s) else None
                                for s in scores],
                        state_size=int(sizes.sum()))
                decision += 1
            kernel.place(vertex, target)
        return VertexPartition(k, kernel.export_assignment(),
                               algorithm=self.name)
