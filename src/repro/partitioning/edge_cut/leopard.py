"""Leopard-style dynamic edge-cut partitioning with replication.

Huang & Abadi (VLDB 2016), the last row of the paper's Table 1:
"lightweight edge-oriented partitioning and replication for dynamic
graphs" — an edge-cut / edge-stream method with update support whose
distinguishing feature is maintaining *read replicas* alongside the
primary copy of each vertex.

This implementation follows the system's three mechanisms in simplified
but faithful form:

1. **Incremental placement** — a vertex is assigned on first sight by an
   LDG-like score over its already-seen neighbours;
2. **Lazy reassignment** — each time a vertex gains edges (checked on
   degree doublings), its current primary is re-scored against the best
   alternative and moved only when the alternative wins by at least
   ``reassignment_gain`` (Leopard's "is the move worth it" test) and the
   target has capacity;
3. **Replication policy** — a replica of ``v`` is kept on every partition
   holding at least ``replication_fraction`` of v's neighbours (read
   locality), capped at ``max_replicas`` copies including the primary.

``partition_stream`` returns the primary assignment as a
:class:`VertexPartition`; ``last_replicas`` holds the replica sets and
``replication_overhead()`` the average copies per vertex — the metric
Leopard trades against the cut.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    UNASSIGNED,
    EdgePartitioner,
    VertexPartition,
    check_num_partitions,
    iter_edge_arrivals,
)
from repro.rng import SeededHash


class LeopardPartitioner(EdgePartitioner):
    """Leopard-style dynamic edge-cut partitioner with read replicas.

    Parameters
    ----------
    balance_slack:
        β: primaries may not migrate into partitions above ``β n / k``.
    reassignment_gain:
        Minimum multiplicative score improvement before a primary moves
        (1.0 = move on any improvement; higher = stickier placement).
    replication_fraction:
        A partition holding at least this fraction of a vertex's observed
        neighbours earns a read replica.
    max_replicas:
        Cap on copies per vertex, primary included.
    """

    name = "leopard"

    def __init__(self, balance_slack: float = 1.1,
                 reassignment_gain: float = 1.5,
                 replication_fraction: float = 0.3,
                 max_replicas: int = 3, hash_seed: int = 0):
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        if reassignment_gain < 1.0:
            raise ConfigurationError("reassignment_gain must be >= 1")
        if not 0.0 < replication_fraction <= 1.0:
            raise ConfigurationError("replication_fraction must be in (0, 1]")
        if max_replicas < 1:
            raise ConfigurationError("max_replicas must be >= 1")
        self.balance_slack = balance_slack
        self.reassignment_gain = reassignment_gain
        self.replication_fraction = replication_fraction
        self.max_replicas = max_replicas
        self.hash_seed = hash_seed
        self.last_replicas: list[set[int]] | None = None
        self.last_reassignments = 0

    # ------------------------------------------------------------------
    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int,
                         num_edges: int | None = None) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        hasher = SeededHash(k, self.hash_seed)
        capacity = max(1.0, self.balance_slack * num_vertices / k)

        primary = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        neighbor_counts = np.zeros((num_vertices, k), dtype=np.int32)
        degree = np.zeros(num_vertices, dtype=np.int64)
        next_check = np.ones(num_vertices, dtype=np.int64)
        reassignments = 0

        def score(vertex: int) -> np.ndarray:
            """LDG-like placement score against current loads."""
            counts = neighbor_counts[vertex].astype(np.float64)
            return (counts + 1.0) * (1.0 - sizes / (capacity * 1.0000001))

        def place_first(vertex: int, other: int) -> None:
            if primary[other] != UNASSIGNED:
                target = int(primary[other])      # join the known neighbour
                if sizes[target] >= capacity:
                    target = hasher(vertex)
            else:
                target = hasher(vertex)
            primary[vertex] = target
            sizes[target] += 1

        def maybe_reassign(vertex: int) -> None:
            nonlocal reassignments
            current = int(primary[vertex])
            scores = score(vertex)
            best = int(np.argmax(scores))
            if best == current:
                return
            if scores[best] < self.reassignment_gain * max(scores[current], 1e-12):
                return
            if sizes[best] + 1 > capacity:
                return
            primary[vertex] = best
            sizes[current] -= 1
            sizes[best] += 1
            reassignments += 1

        for _eid, src, dst in iter_edge_arrivals(stream):
            if primary[src] == UNASSIGNED:
                place_first(src, dst)
            if primary[dst] == UNASSIGNED:
                place_first(dst, src)
            neighbor_counts[src, primary[dst]] += 1
            neighbor_counts[dst, primary[src]] += 1
            for vertex in (src, dst):
                degree[vertex] += 1
                if degree[vertex] >= next_check[vertex]:
                    next_check[vertex] *= 2
                    maybe_reassign(vertex)

        # Unseen (isolated) vertices: hash placement.
        unseen = np.flatnonzero(primary == UNASSIGNED)
        if unseen.size:
            parts = hasher(unseen)
            primary[unseen] = parts
            sizes += np.bincount(parts, minlength=k)

        self.last_replicas = self._build_replicas(primary, neighbor_counts,
                                                  degree, k)
        self.last_reassignments = reassignments
        self._last_primary = primary.copy()
        return VertexPartition(k, primary, algorithm=self.name)

    # ------------------------------------------------------------------
    def _build_replicas(self, primary, neighbor_counts, degree,
                        k: int) -> list[set[int]]:
        """Replica sets per vertex: the primary plus read replicas on
        partitions hosting >= replication_fraction of the neighbours."""
        replicas: list[set[int]] = []
        for vertex in range(primary.size):
            copies = {int(primary[vertex])}
            total = int(degree[vertex])
            if total > 0:
                counts = neighbor_counts[vertex]
                eligible = np.flatnonzero(
                    counts >= self.replication_fraction * total)
                # Strongest partitions first, up to the cap.
                for part in eligible[np.argsort(-counts[eligible],
                                                kind="stable")].tolist():
                    if len(copies) >= self.max_replicas:
                        break
                    copies.add(int(part))
            replicas.append(copies)
        return replicas

    def replication_overhead(self) -> float:
        """Average copies per vertex (1.0 = no replication) of the last run."""
        if not self.last_replicas:
            return 0.0
        return float(np.mean([len(c) for c in self.last_replicas]))

    def local_read_fraction(self, graph) -> float:
        """Fraction of (directed) edges whose source's primary partition
        holds a copy of the target — the read locality Leopard's replicas
        buy over the plain edge-cut (where it equals 1 − cut ratio)."""
        if self.last_replicas is None:
            return 0.0
        hits = 0
        primary = self._last_primary
        for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
            if int(primary[u]) in self.last_replicas[v]:
                hits += 1
        return hits / max(graph.num_edges, 1)
