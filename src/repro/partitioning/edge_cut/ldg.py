"""Linear Deterministic Greedy (LDG) — Stanton & Kliot, KDD 2012.

Eq. 4 of the paper: assign vertex ``u`` to the partition with the most of
``u``'s already-placed neighbours, discounted multiplicatively by fullness:

    argmax_i  |P_i ∩ N(u)| * (1 - |P_i| / C),      C = β |V| / k

The multiplicative weight *strictly* enforces the capacity: a full
partition's score is <= 0, so it can only be chosen when every partition
is full (which β >= 1 prevents).  Ties break to the least-loaded partition
(Stanton & Kliot's convention), then randomly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    VertexPartition,
    VertexPartitioner,
    check_num_partitions,
)
from repro.partitioning.kernels import (
    LdgKernel,
    argmax_tie_least_loaded,
    iter_vertex_arrivals,
)
from repro.rng import make_rng
from repro.telemetry import get_tracer


class LdgPartitioner(VertexPartitioner):
    """Linear Deterministic Greedy edge-cut streaming partitioner.

    Parameters
    ----------
    balance_slack:
        The paper's β: partition capacity is ``β |V| / k``.  ``1.0``
        requires exact balance (up to rounding).
    seed:
        Tie-break randomness.
    """

    name = "ldg"

    def __init__(self, balance_slack: float = 1.0, seed=None):
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        self.balance_slack = balance_slack
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        capacity = max(1.0, math.ceil(self.balance_slack * num_vertices / k))
        kernel = LdgKernel(k, num_vertices, capacity)
        sizes = kernel.sizes
        # Decision tracing: one `if 0:` branch per vertex when disabled —
        # no tracer calls, no allocations (the overhead tests assert it).
        tracer = get_tracer()
        trace_every = tracer.decision_sample_every if tracer.enabled else 0
        decision = 0

        for vertex, neighbors in iter_vertex_arrivals(stream):
            scores = kernel.score(neighbors)
            target = argmax_tie_least_loaded(scores, sizes, rng)
            if trace_every:
                if decision % trace_every == 0:
                    tracer.point(
                        "sgp.decision", float(decision),
                        algorithm=self.name, vertex=int(vertex),
                        chosen=int(target),
                        ties=int(np.count_nonzero(scores == scores.max())),
                        scores=[float(s) for s in scores],
                        state_size=int(sizes.sum()))
                decision += 1
            kernel.place(vertex, target)
        return VertexPartition(k, kernel.export_assignment(),
                               algorithm=self.name)
