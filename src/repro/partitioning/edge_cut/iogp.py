"""IOGP-style incremental edge-cut partitioning on edge streams.

Section 4.1.2: "Edge streams do not necessarily have locality and
algorithms in this class cannot maintain complete adjacency information
N(u) until all incident edges of vertex u arrive. Therefore, they produce
partitionings of lower quality than their vertex stream counterparts and
need to revisit their initial assignments (e.g. ... IOGP)."

Following Dai et al.'s IOGP (ICDCS 2017), this partitioner:

* places each vertex by hash the first time it appears (*quiet* stage);
* tracks, per vertex, how its already-seen neighbours are distributed;
* re-evaluates a vertex each time its observed degree doubles: if most of
  its neighbours live elsewhere and the target has headroom, the vertex
  (and, conceptually, its stored edges) migrates (*dynamic* stage).

The output is a :class:`VertexPartition` over the stream's vertices plus
a count of reassignments — Table 1 classifies IOGP as an edge-cut /
edge-stream / update-supporting greedy method, which is exactly this
shape.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    UNASSIGNED,
    EdgePartitioner,
    VertexPartition,
    check_num_partitions,
    iter_edge_arrivals,
)
from repro.rng import SeededHash


class IogpPartitioner(EdgePartitioner):
    """Incremental online edge-cut partitioning over an edge stream.

    Parameters
    ----------
    balance_slack:
        β: no partition may exceed ``β |V| / k`` vertices after a
        migration (initial hash placements are unconditional, as in the
        original system).
    reassignment_threshold:
        Fraction of a vertex's observed neighbours that must live on the
        best other partition before a migration triggers (0.5 = simple
        majority).
    hash_seed:
        Seed of the first-sight hash placement.

    Notes
    -----
    ``partition_stream`` returns the vertex partitioning; the number of
    migrations performed is available as ``last_reassignments`` — the
    quality/instability trade-off the paper cites as the reason this class
    "is not generally deployed in real systems".
    """

    name = "iogp"

    def __init__(self, balance_slack: float = 1.1,
                 reassignment_threshold: float = 0.5, hash_seed: int = 0):
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        if not 0.0 <= reassignment_threshold <= 1.0:
            raise ConfigurationError("reassignment_threshold must be in [0, 1]")
        self.balance_slack = balance_slack
        self.reassignment_threshold = reassignment_threshold
        self.hash_seed = hash_seed
        self.last_reassignments = 0

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int,
                         num_edges: int | None = None) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        hasher = SeededHash(k, self.hash_seed)
        capacity = max(1.0, self.balance_slack * num_vertices / k)

        assignment = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        # Per-vertex neighbour distribution over partitions.
        neighbor_counts = np.zeros((num_vertices, k), dtype=np.int32)
        degree = np.zeros(num_vertices, dtype=np.int64)
        next_check = np.ones(num_vertices, dtype=np.int64)
        reassignments = 0

        def place_first(vertex: int) -> None:
            part = hasher(vertex)
            assignment[vertex] = part
            sizes[part] += 1

        def maybe_migrate(vertex: int) -> None:
            nonlocal reassignments
            current = assignment[vertex]
            counts = neighbor_counts[vertex]
            best = int(np.argmax(counts))
            if best == current:
                return
            total = int(counts.sum())
            if total == 0:
                return
            if counts[best] < self.reassignment_threshold * total:
                return
            if sizes[best] + 1 > capacity:
                return
            assignment[vertex] = best
            sizes[current] -= 1
            sizes[best] += 1
            reassignments += 1

        for _eid, src, dst in iter_edge_arrivals(stream):
            for vertex in (src, dst):
                if assignment[vertex] == UNASSIGNED:
                    place_first(vertex)
            neighbor_counts[src, assignment[dst]] += 1
            neighbor_counts[dst, assignment[src]] += 1
            for vertex in (src, dst):
                degree[vertex] += 1
                # Re-evaluate on degree doublings (IOGP's staged checks).
                if degree[vertex] >= next_check[vertex]:
                    next_check[vertex] *= 2
                    maybe_migrate(vertex)

        # Vertices that never appeared on the stream (isolated) get the
        # same first-sight hash placement they would receive on arrival.
        unseen = np.flatnonzero(assignment == UNASSIGNED)
        if unseen.size:
            parts = hasher(unseen)
            assignment[unseen] = parts
            sizes += np.bincount(parts, minlength=k)

        self.last_reassignments = reassignments
        return VertexPartition(k, assignment, algorithm=self.name)
