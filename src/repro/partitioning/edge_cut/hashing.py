"""Hash-based edge-cut partitioning (the paper's ECR).

Assigns each vertex by a seeded hash of its id.  Perfect balance in
expectation, zero topology awareness: under uniform random placement into
``k`` machines the expected edge-cut ratio is ``1 - 1/k`` (Section 4.1.1),
which the test suite verifies.  Because the hash is stateless, ECR is
"embarrassingly parallel" — no synchronisation between loaders.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.base import VertexPartition, VertexPartitioner, check_num_partitions
from repro.rng import SeededHash


class HashVertexPartitioner(VertexPartitioner):
    """Edge-cut hash partitioning over vertex keys (ECR)."""

    name = "ecr"

    def __init__(self, hash_seed: int = 0):
        self.hash_seed = hash_seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        hasher = SeededHash(k, self.hash_seed)
        assignment = np.full(num_vertices, -1, dtype=np.int32)
        # Stateless: only vertices that arrive are assigned, but their
        # hash can be evaluated in bulk.
        permutation = getattr(stream, "permutation", None)
        if permutation is not None:
            arrived = np.asarray(permutation, dtype=np.int64)
        else:
            arrived = np.asarray([vertex for vertex, _neighbors in stream],
                                 dtype=np.int64)
        if arrived.size:
            assignment[arrived] = hasher(arrived)
        return VertexPartition(k, assignment, algorithm=self.name)

    def assign(self, vertex: int, num_partitions: int) -> int:
        """Direct stateless assignment — what a parallel loader would call."""
        return SeededHash(check_num_partitions(num_partitions), self.hash_seed)(vertex)
