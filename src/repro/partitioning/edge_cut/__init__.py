"""edge-cut streaming graph partitioning algorithms."""
