"""Restreaming partitioners — Nishimura & Ugander, KDD 2013.

re-LDG and re-FENNEL iterate their one-pass counterparts: pass ``t`` streams
the whole graph again, scoring each vertex against a *mixed* view of
neighbour placements — neighbours already re-assigned in the current pass
use their fresh assignment, everyone else uses the previous pass's.  Loads
are the current pass's (partitions refill from empty each pass).  A handful
of passes closes most of the quality gap to offline multilevel
partitioning, which Table 1 of the paper records as these algorithms'
distinguishing feature.

Both variants share one multi-pass driver over the fused scoring kernels
of :mod:`repro.partitioning.kernels`; since restreaming multiplies the
per-element cost by the pass count, the kernel speedup compounds here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    VertexPartition,
    VertexPartitioner,
    check_num_partitions,
)
from repro.partitioning.edge_cut.fennel import FennelPartitioner
from repro.partitioning.kernels import (
    FennelKernel,
    LdgKernel,
    argmax_tie_least_loaded,
    iter_vertex_arrivals,
)
from repro.rng import make_rng


class _RestreamingBase(VertexPartitioner):
    """Shared multi-pass driver; subclasses provide the scoring kernel."""

    def __init__(self, num_passes: int = 5, seed=None):
        if num_passes < 1:
            raise ConfigurationError("num_passes must be >= 1")
        self.num_passes = num_passes
        self.seed = seed

    def _make_kernel(self, k: int, num_vertices: int,
                     num_edges: int | None):
        raise NotImplementedError

    def _begin_pass(self, kernel, pass_index: int) -> None:
        kernel.begin_pass()

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int,
                         num_edges: int | None = None) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        if num_edges is None:
            graph = getattr(stream, "graph", None)
            num_edges = graph.num_edges if graph is not None else None
        kernel = self._make_kernel(k, num_vertices, num_edges)
        sizes = kernel.sizes

        # Slot-encoded placements of the previous pass (k = unplaced).
        previous = np.full(num_vertices, k, dtype=np.int64)
        for pass_index in range(self.num_passes):
            self._begin_pass(kernel, pass_index)
            for vertex, neighbors in iter_vertex_arrivals(stream):
                counts = kernel.mixed_counts(neighbors, previous)
                scores = kernel.score_counts(counts)
                target = argmax_tie_least_loaded(scores, sizes, rng)
                kernel.place(vertex, target)
            previous = kernel.slots.copy()
        return VertexPartition(k, kernel.export_assignment(),
                               algorithm=self.name)


class RestreamingLdgPartitioner(_RestreamingBase):
    """re-LDG: LDG's multiplicative objective, restreamed.

    Table 1 of the paper marks re-LDG as the restreaming algorithm with
    update support (a changed graph can simply be streamed again starting
    from the previous assignment).
    """

    name = "re-ldg"

    def __init__(self, num_passes: int = 5, balance_slack: float = 1.0, seed=None):
        super().__init__(num_passes=num_passes, seed=seed)
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        self.balance_slack = balance_slack

    def _make_kernel(self, k, num_vertices, num_edges):
        capacity = max(1.0, math.ceil(self.balance_slack * num_vertices / k))
        return LdgKernel(k, num_vertices, capacity)


class RestreamingFennelPartitioner(_RestreamingBase):
    """re-FENNEL: FENNEL's additive objective, restreamed.

    Follows the original restreaming paper in annealing α upward across
    passes (``alpha_growth`` multiplier per pass) so later passes weigh
    balance more heavily.
    """

    name = "re-fennel"

    def __init__(self, num_passes: int = 5, gamma: float = 1.5,
                 alpha: float | None = None, load_cap: float = 1.1,
                 alpha_growth: float = 1.5, seed=None):
        super().__init__(num_passes=num_passes, seed=seed)
        # Parameter template only (never streams); seeded anyway so the
        # seed lane is complete end to end.
        self._template = FennelPartitioner(gamma=gamma, alpha=alpha,
                                           load_cap=load_cap, seed=seed)
        self.alpha_growth = alpha_growth
        self._alpha = 0.0
        self._gamma = gamma

    def _make_kernel(self, k, num_vertices, num_edges):
        self._alpha = self._template._resolve_alpha(k, num_vertices, num_edges)
        capacity = max(1.0, self._template.load_cap * num_vertices / k)
        return FennelKernel(k, num_vertices, self._alpha, self._gamma,
                            capacity)

    def _begin_pass(self, kernel, pass_index):
        kernel.begin_pass(self._alpha * (self.alpha_growth ** pass_index))
