"""Restreaming partitioners — Nishimura & Ugander, KDD 2013.

re-LDG and re-FENNEL iterate their one-pass counterparts: pass ``t`` streams
the whole graph again, scoring each vertex against a *mixed* view of
neighbour placements — neighbours already re-assigned in the current pass
use their fresh assignment, everyone else uses the previous pass's.  Loads
are the current pass's (partitions refill from empty each pass).  A handful
of passes closes most of the quality gap to offline multilevel
partitioning, which Table 1 of the paper records as these algorithms'
distinguishing feature.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    UNASSIGNED,
    VertexPartition,
    VertexPartitioner,
    argmax_with_ties,
    check_num_partitions,
)
from repro.partitioning.edge_cut.fennel import FennelPartitioner
from repro.rng import make_rng


class _RestreamingBase(VertexPartitioner):
    """Shared multi-pass driver; subclasses provide the per-vertex score."""

    def __init__(self, num_passes: int = 5, seed=None):
        if num_passes < 1:
            raise ConfigurationError("num_passes must be >= 1")
        self.num_passes = num_passes
        self.seed = seed

    def _score(self, counts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _prepare(self, k: int, num_vertices: int, num_edges: int | None):
        """Hook for per-run parameter derivation (capacity, alpha...)."""

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int,
                         num_edges: int | None = None) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        if num_edges is None:
            graph = getattr(stream, "graph", None)
            num_edges = graph.num_edges if graph is not None else None
        self._prepare(k, num_vertices, num_edges)

        previous = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        current = previous
        for _pass in range(self.num_passes):
            current = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
            sizes = np.zeros(k, dtype=np.int64)
            for vertex, neighbors in stream:
                fresh = current[neighbors]
                stale = previous[neighbors]
                # Neighbours keep last known placement until restreamed.
                view = np.where(fresh != UNASSIGNED, fresh, stale)
                view = view[view != UNASSIGNED]
                if view.size:
                    counts = np.bincount(view, minlength=k).astype(np.float64)
                else:
                    counts = np.zeros(k, dtype=np.float64)
                scores = self._score(counts, sizes)
                target = argmax_with_ties(scores, tie_break=sizes, rng=rng)
                current[vertex] = target
                sizes[target] += 1
            previous = current
        return VertexPartition(k, current, algorithm=self.name)


class RestreamingLdgPartitioner(_RestreamingBase):
    """re-LDG: LDG's multiplicative objective, restreamed.

    Table 1 of the paper marks re-LDG as the restreaming algorithm with
    update support (a changed graph can simply be streamed again starting
    from the previous assignment).
    """

    name = "re-ldg"

    def __init__(self, num_passes: int = 5, balance_slack: float = 1.0, seed=None):
        super().__init__(num_passes=num_passes, seed=seed)
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        self.balance_slack = balance_slack
        self._capacity = 1.0

    def _prepare(self, k, num_vertices, num_edges):
        self._capacity = max(1.0, math.ceil(self.balance_slack * num_vertices / k))

    def _score(self, counts, sizes):
        return counts * (1.0 - sizes / self._capacity)


class RestreamingFennelPartitioner(_RestreamingBase):
    """re-FENNEL: FENNEL's additive objective, restreamed.

    Follows the original restreaming paper in annealing α upward across
    passes (``alpha_growth`` multiplier per pass) so later passes weigh
    balance more heavily.
    """

    name = "re-fennel"

    def __init__(self, num_passes: int = 5, gamma: float = 1.5,
                 alpha: float | None = None, load_cap: float = 1.1,
                 alpha_growth: float = 1.5, seed=None):
        super().__init__(num_passes=num_passes, seed=seed)
        self._template = FennelPartitioner(gamma=gamma, alpha=alpha,
                                           load_cap=load_cap)
        self.alpha_growth = alpha_growth
        self._alpha = 0.0
        self._capacity = 1.0
        self._gamma = gamma

    def _prepare(self, k, num_vertices, num_edges):
        self._alpha = self._template._resolve_alpha(k, num_vertices, num_edges)
        self._capacity = max(1.0, self._template.load_cap * num_vertices / k)
        self._pass_alpha = self._alpha

    def _score(self, counts, sizes):
        scores = counts - self._pass_alpha * self._gamma * sizes ** (self._gamma - 1.0)
        scores[sizes >= self._capacity] = -np.inf
        return scores

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int | None = None):
        # Wrap the base driver to anneal alpha between passes: we re-enter
        # the parent implementation but intercept pass boundaries by
        # running passes one at a time.
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        if num_edges is None:
            graph = getattr(stream, "graph", None)
            num_edges = graph.num_edges if graph is not None else None
        self._prepare(k, num_vertices, num_edges)

        previous = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        current = previous
        for pass_index in range(self.num_passes):
            self._pass_alpha = self._alpha * (self.alpha_growth ** pass_index)
            current = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
            sizes = np.zeros(k, dtype=np.int64)
            for vertex, neighbors in stream:
                fresh = current[neighbors]
                stale = previous[neighbors]
                view = np.where(fresh != UNASSIGNED, fresh, stale)
                view = view[view != UNASSIGNED]
                if view.size:
                    counts = np.bincount(view, minlength=k).astype(np.float64)
                else:
                    counts = np.zeros(k, dtype=np.float64)
                scores = self._score(counts, sizes)
                target = argmax_with_ties(scores, tie_break=sizes, rng=rng)
                current[vertex] = target
                sizes[target] += 1
            previous = current
        return VertexPartition(k, current, algorithm=self.name)
