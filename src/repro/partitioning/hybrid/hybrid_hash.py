"""Hybrid Random (HCR) — PowerLyra's hash-based hybrid-cut, Chen et al. 2015.

PowerLyra differentiates low- and high-degree vertices: the in-edges of a
*low*-degree vertex are all grouped on ``hash(v)`` (edge-cut-like locality,
cheap uni-directional sync), while the in-edges of a *high*-degree vertex
are spread by ``hash(u)`` over the source (vertex-cut-like hub splitting).

On an edge stream this requires two phases (Section 4.3): the first pass
counts in-degrees while provisionally placing every edge on ``hash(dst)``;
the second re-assigns the in-edges of vertices over the degree threshold
to ``hash(src)``.  Both hashes are stateless, so — threshold detection
aside — HCR parallelises like plain hashing (Table 1: "Hash").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
    edge_stream_arrays,
)
from repro.rng import SeededHash

#: PowerLyra's default high-degree threshold.
DEFAULT_DEGREE_THRESHOLD = 100


class HybridHashPartitioner(EdgePartitioner):
    """PowerLyra hybrid-cut with hash placement (HCR).

    Parameters
    ----------
    degree_threshold:
        In-degree above which a vertex is treated as high-degree.
    hash_seed:
        Seed of the stateless vertex hash.
    """

    name = "hcr"

    def __init__(self, degree_threshold: int = DEFAULT_DEGREE_THRESHOLD,
                 hash_seed: int = 0):
        if degree_threshold < 1:
            raise ConfigurationError("degree_threshold must be >= 1")
        self.degree_threshold = degree_threshold
        self.hash_seed = hash_seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        hasher = SeededHash(k, self.hash_seed)

        # Phase 1: place every in-edge with its target, counting degrees.
        # Both phases are stateless hashes, so bulk evaluation over the
        # stream content matches the two-pass streaming behaviour exactly.
        edge_ids, sources, targets = edge_stream_arrays(stream)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        assignment[edge_ids] = hasher(targets)
        in_degree = np.bincount(targets, minlength=num_vertices)

        # Phase 2: re-assign in-edges of high-degree vertices by source.
        high = in_degree > self.degree_threshold
        reassign = high[targets]
        if reassign.any():
            assignment[edge_ids[reassign]] = hasher(sources[reassign])

        masters = hasher(np.arange(num_vertices)).astype(np.int32)
        return EdgePartition(k, assignment, algorithm=self.name, masters=masters)
