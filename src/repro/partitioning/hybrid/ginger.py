"""Ginger (HG) — PowerLyra's heuristic hybrid-cut, Chen et al. 2015.

Eq. 8 of the paper: a FENNEL-like greedy that assigns each *vertex* ``v``
together with all of its in-edges to the partition maximising

    |P_i ∩ N_in(v)|  -  c · ½ (|V_i| + (|V| / |E|) · |E_i|)

i.e. FENNEL's neighbour affinity, but with a balance term that mixes the
partition's vertex count ``|V_i|`` and (rescaled) edge count ``|E_i|``.
After the first phase, vertices whose in-degree exceeds a user threshold
are declared high-degree and their in-edges are *re-assigned* by hashing
on the source, exactly like HCR — preserving low-degree locality while
spreading hubs.

On an edge stream Ginger therefore "works in two phases" (Section 4.3):
we buffer arrivals, group them by target in first-arrival order, and run
the greedy vertex pass over that order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    argmax_with_ties,
    check_num_partitions,
    iter_edge_arrivals,
)
from repro.partitioning.hybrid.hybrid_hash import DEFAULT_DEGREE_THRESHOLD
from repro.rng import SeededHash, make_rng


class GingerPartitioner(EdgePartitioner):
    """Ginger hybrid-cut streaming partitioner (HG).

    Parameters
    ----------
    degree_threshold:
        In-degree above which a vertex's in-edges are spread by source hash.
    balance_coefficient:
        The ``c`` of Eq. 8; ``None`` derives FENNEL's
        ``sqrt(k) * m / n^1.5`` at run time.
    hash_seed, seed:
        Hash seed for the high-degree phase / tie-break randomness.
    """

    name = "hg"

    def __init__(self, degree_threshold: int = DEFAULT_DEGREE_THRESHOLD,
                 balance_coefficient: float | None = None,
                 hash_seed: int = 0, seed=None):
        if degree_threshold < 1:
            raise ConfigurationError("degree_threshold must be >= 1")
        self.degree_threshold = degree_threshold
        self.balance_coefficient = balance_coefficient
        self.hash_seed = hash_seed
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        hasher = SeededHash(k, self.hash_seed)
        coefficient = self.balance_coefficient
        if coefficient is None:
            n = max(num_vertices, 1)
            coefficient = float(np.sqrt(k) * num_edges / n ** 1.5)
        edge_scale = num_vertices / max(num_edges, 1)

        # Buffer the stream grouped by target, keeping first-arrival order
        # of targets (the two-phase behaviour the paper describes).
        order: list[int] = []
        in_edges: dict[int, list[tuple[int, int]]] = {}
        for edge_id, src, dst in iter_edge_arrivals(stream):
            bucket = in_edges.get(dst)
            if bucket is None:
                bucket = in_edges[dst] = []
                order.append(dst)
            bucket.append((edge_id, src))

        assignment = np.full(num_edges, -1, dtype=np.int32)
        vertex_part = np.full(num_vertices, -1, dtype=np.int32)
        vertex_sizes = np.zeros(k, dtype=np.int64)
        edge_sizes = np.zeros(k, dtype=np.int64)

        # Phase 1: FENNEL-like greedy per target vertex.
        for v in order:
            bucket = in_edges[v]
            neighbor_parts = vertex_part[[src for _, src in bucket]]
            neighbor_parts = neighbor_parts[neighbor_parts >= 0]
            if neighbor_parts.size:
                counts = np.bincount(neighbor_parts, minlength=k).astype(np.float64)
            else:
                counts = np.zeros(k, dtype=np.float64)
            balance = coefficient * 0.5 * (vertex_sizes + edge_scale * edge_sizes)
            scores = counts - balance
            target = argmax_with_ties(scores, tie_break=edge_sizes, rng=rng)
            vertex_part[v] = target
            vertex_sizes[target] += 1
            for edge_id, _src in bucket:
                assignment[edge_id] = target
            edge_sizes[target] += len(bucket)

        # Vertices that only appear as sources still need a home (they own
        # no in-edges): place them greedily on the least-loaded partition.
        for v in np.flatnonzero(vertex_part < 0):
            target = int(np.argmin(vertex_sizes))
            vertex_part[v] = target
            vertex_sizes[target] += 1

        # Phase 2: spread the in-edges of high-degree vertices by source.
        for v in order:
            bucket = in_edges[v]
            if len(bucket) <= self.degree_threshold:
                continue
            old = vertex_part[v]
            for edge_id, src in bucket:
                new = hasher(src)
                assignment[edge_id] = new
                edge_sizes[old] -= 1
                edge_sizes[new] += 1

        return EdgePartition(k, assignment, algorithm=self.name,
                             masters=vertex_part)
