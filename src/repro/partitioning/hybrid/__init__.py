"""hybrid streaming graph partitioning algorithms."""
