"""Workload-aware partitioning (Section 6.3.3, Figure 8).

The paper shows that online graph queries suffer from *workload skew* that
structural SGP objectives ignore: hotspots concentrate accesses on a few
partitions.  Its remedy — "we record vertex and edge accesses during the
execution of the 1-hop query workload to compute a weighted graph where
weights represent the access ratio. Then, we compute a 16-way balanced
partitioning of this weighted graph using METIS" — is implemented here on
top of our multilevel partitioner.

Besides the offline weighted-multilevel variant the module also provides
weighted LDG/FENNEL streaming variants (the Appendix-A generalisation:
substituting partition cardinality with an arbitrary vertex attribute sum
``x_i = Σ_{u ∈ P_i} a(u)`` in Eqs. 4/5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.partitioning.base import (
    UNASSIGNED,
    VertexPartition,
    VertexPartitioner,
    argmax_with_ties,
    check_num_partitions,
)
from repro.partitioning.multilevel import multilevel_partition
from repro.rng import make_rng


def workload_aware_partition(
    graph: Graph,
    num_partitions: int,
    access_counts,
    *,
    balance_slack: float = 1.05,
    smoothing: float = 1.0,
    seed=None,
) -> VertexPartition:
    """Weighted multilevel partitioning balancing on access counts.

    Parameters
    ----------
    access_counts:
        Per-vertex access counts recorded from a workload run (the
        weighted graph "W" of Figure 8).
    smoothing:
        Added to every count so never-accessed vertices still carry a
        minimal weight (otherwise balance would ignore them entirely).
    """
    counts = np.asarray(access_counts, dtype=np.float64)
    if counts.shape != (graph.num_vertices,):
        raise ConfigurationError("access_counts must have one entry per vertex")
    if (counts < 0).any():
        raise ConfigurationError("access_counts must be non-negative")
    weights = counts + smoothing
    partition = multilevel_partition(
        graph, num_partitions,
        vertex_weights=weights,
        balance_slack=balance_slack,
        seed=seed,
    )
    partition.algorithm = "mts-w"
    return partition


class WeightedLdgPartitioner(VertexPartitioner):
    """LDG balancing on a vertex attribute instead of cardinality.

    Appendix A: re-streaming versions of LDG "can generate a balanced
    partitioning on any vertex attribute a(u) by substituting |P_i| with
    ``x_i = Σ_{u ∈ P_i} a(u)``".  We apply the same substitution to the
    single-pass algorithm.
    """

    name = "ldg-w"

    def __init__(self, vertex_weights, balance_slack: float = 1.0, seed=None):
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        self.vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        if (self.vertex_weights < 0).any():
            raise ConfigurationError("vertex_weights must be non-negative")
        self.balance_slack = balance_slack
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        if self.vertex_weights.shape != (num_vertices,):
            raise ConfigurationError("vertex_weights must have one entry per vertex")
        rng = make_rng(self.seed)
        total = float(self.vertex_weights.sum())
        capacity = max(total / k * self.balance_slack, 1e-12)
        assignment = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        loads = np.zeros(k, dtype=np.float64)

        for vertex, neighbors in stream:
            placed = assignment[neighbors]
            placed = placed[placed != UNASSIGNED]
            if placed.size:
                counts = np.bincount(placed, minlength=k).astype(np.float64)
            else:
                counts = np.zeros(k, dtype=np.float64)
            scores = counts * (1.0 - loads / capacity)
            target = argmax_with_ties(scores, tie_break=loads, rng=rng)
            assignment[vertex] = target
            loads[target] += self.vertex_weights[vertex]
        return VertexPartition(k, assignment, algorithm=self.name)
