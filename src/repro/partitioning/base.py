"""Partitioning result types and algorithm base classes.

The paper (Section 3) frames every SGP algorithm as a rule that places each
arriving stream element into the partition maximising an objective
``h(a_i, P^t)`` subject to a balance slack ``β``.  This module provides:

* :class:`VertexPartition` — a vertex-disjoint (edge-cut) result;
* :class:`EdgePartition` — an edge-disjoint (vertex-cut) result;
* :class:`VertexPartitioner` / :class:`EdgePartitioner` — base classes
  giving every algorithm the same two entry points:

  - ``partition_stream(stream, k, ...)`` — the true streaming interface
    (single pass over arrivals, bounded state);
  - ``partition(graph, k, order=..., seed=...)`` — convenience wrapper that
    builds the matching stream over an in-memory graph, which is how the
    experimental harness drives all algorithms uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError, PartitioningError
from repro.graph.digraph import Graph
from repro.graph.stream import EdgeStream, VertexStream

UNASSIGNED = -1


def check_num_partitions(k: Any) -> int:
    """Validate a partition count."""
    if not isinstance(k, (int, np.integer)) or k < 1:
        raise ConfigurationError(f"number of partitions must be a positive int, got {k!r}")
    return int(k)


def _checked_assignment(values: Any, num_partitions: int,
                        what: str) -> np.ndarray:
    """Contiguous int32 copy of *values* with every entry in
    ``[0, num_partitions)`` or ``UNASSIGNED``."""
    array = np.ascontiguousarray(values, dtype=np.int32)
    if array.ndim != 1:
        raise PartitioningError(f"{what} must be a 1-D array")
    valid = array[array != UNASSIGNED]
    if valid.size and (valid.min() < 0 or valid.max() >= num_partitions):
        raise PartitioningError(f"{what} contains out-of-range partition ids")
    return array


class VertexPartition:
    """A vertex-disjoint partitioning (edge-cut model, Section 4.1).

    ``assignment[u]`` is the partition of vertex ``u`` (``UNASSIGNED`` for
    vertices never seen, which a complete run never produces).
    """

    cut_model = "edge-cut"

    def __init__(self, num_partitions: int, assignment: Any,
                 algorithm: str = "?") -> None:
        self.num_partitions = check_num_partitions(num_partitions)
        self.assignment = _checked_assignment(assignment, self.num_partitions,
                                              "assignment")
        self.algorithm = algorithm

    @property
    def num_vertices(self) -> int:
        return int(self.assignment.size)

    def sizes(self) -> np.ndarray:
        """Number of vertices per partition (w(P_i) of Eq. 3)."""
        assigned = self.assignment[self.assignment != UNASSIGNED]
        return np.bincount(assigned, minlength=self.num_partitions).astype(np.int64)

    def of(self, vertex: int) -> int:
        """Partition of *vertex*; raises if the vertex was never assigned."""
        part = int(self.assignment[vertex])
        if part == UNASSIGNED:
            raise PartitioningError(f"vertex {vertex} was never assigned")
        return part

    def is_complete(self) -> bool:
        """True when every vertex has a partition."""
        return bool(np.all(self.assignment != UNASSIGNED))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VertexPartition(algorithm={self.algorithm!r}, "
                f"k={self.num_partitions}, n={self.num_vertices})")


class EdgePartition:
    """An edge-disjoint partitioning (vertex-cut model, Section 4.2).

    ``assignment[eid]`` is the partition of edge ``eid`` (edge ids are the
    positions in the source graph's edge arrays).  ``masters`` optionally
    records a designated master partition per vertex — hybrid-cut
    algorithms produce it; for everyone else the analytics placement layer
    picks masters itself.
    """

    cut_model = "vertex-cut"

    def __init__(self, num_partitions: int, assignment: Any,
                 algorithm: str = "?", masters: Any = None) -> None:
        self.num_partitions = check_num_partitions(num_partitions)
        self.assignment = _checked_assignment(assignment, self.num_partitions,
                                              "assignment")
        self.algorithm = algorithm
        self.masters = (_checked_assignment(masters, self.num_partitions,
                                            "masters")
                        if masters is not None else None)

    @property
    def num_edges(self) -> int:
        return int(self.assignment.size)

    def sizes(self) -> np.ndarray:
        """Number of edges per partition (w(P_i) of Eq. 6)."""
        assigned = self.assignment[self.assignment != UNASSIGNED]
        return np.bincount(assigned, minlength=self.num_partitions).astype(np.int64)

    def of(self, edge_id: int) -> int:
        """Partition of *edge_id*; raises if the edge was never assigned."""
        part = int(self.assignment[edge_id])
        if part == UNASSIGNED:
            raise PartitioningError(f"edge {edge_id} was never assigned")
        return part

    def is_complete(self) -> bool:
        return bool(np.all(self.assignment != UNASSIGNED))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EdgePartition(algorithm={self.algorithm!r}, "
                f"k={self.num_partitions}, m={self.num_edges})")


class VertexPartitioner(ABC):
    """Base class for edge-cut SGP algorithms consuming vertex streams."""

    #: Registry name (the paper's acronym), set by subclasses.
    name = "?"

    @abstractmethod
    def partition_stream(self, stream: Iterable, num_partitions: int, *,
                         num_vertices: int) -> VertexPartition:
        """Single pass over a vertex stream; returns the partitioning.

        ``num_vertices`` is required because the balance terms of LDG and
        FENNEL need the partition capacity ``C = β|V|/k`` — exactly the
        synopsis streaming systems know ahead of a bulk load.
        """

    def partition(self, graph: Graph, num_partitions: int, *,
                  order: str = "random", seed: Any = None) -> VertexPartition:
        """Partition an in-memory graph by streaming it in *order*."""
        stream = VertexStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class EdgePartitioner(ABC):
    """Base class for vertex-cut / hybrid SGP algorithms on edge streams."""

    name = "?"

    @abstractmethod
    def partition_stream(self, stream: Iterable, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        """Single pass over an edge stream; returns the partitioning."""

    def partition(self, graph: Graph, num_partitions: int, *,
                  order: str = "random", seed: Any = None) -> EdgePartition:
        """Partition an in-memory graph by streaming its edges in *order*."""
        stream = EdgeStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices,
                                     num_edges=graph.num_edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def iter_edge_arrivals(stream: Iterable) -> Iterator[tuple[int, int, int]]:
    """Yield ``(edge_id, src, dst)`` tuples from an edge stream, cheaply.

    Graph-backed :class:`~repro.graph.stream.EdgeStream` objects expose
    their permutation, letting us iterate raw arrays and skip per-arrival
    object construction — a large constant-factor win for the sequential
    greedy algorithms.  Any other iterable of
    :class:`~repro.graph.stream.EdgeArrival`-shaped elements works too.
    """
    graph = getattr(stream, "graph", None)
    permutation = getattr(stream, "permutation", None)
    if graph is not None and permutation is not None:
        src = graph.src[permutation]
        dst = graph.dst[permutation]
        yield from zip(permutation.tolist(), src.tolist(), dst.tolist())
    else:
        for arrival in stream:
            edge_id, src, dst = arrival
            yield int(edge_id), int(src), int(dst)


def edge_stream_arrays(
        stream: Iterable) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialise an edge stream as ``(edge_ids, src, dst)`` arrays.

    Used by the *stateless* hash partitioners (VCR, DBH-exact, HCR), whose
    placement of one edge never depends on another — bulk evaluation is
    semantically identical to element-at-a-time processing.
    """
    graph = getattr(stream, "graph", None)
    permutation = getattr(stream, "permutation", None)
    if graph is not None and permutation is not None:
        return (np.asarray(permutation, dtype=np.int64),
                graph.src[permutation], graph.dst[permutation])
    ids, srcs, dsts = [], [], []
    for arrival in stream:
        edge_id, src, dst = arrival
        ids.append(edge_id)
        srcs.append(src)
        dsts.append(dst)
    return (np.asarray(ids, dtype=np.int64), np.asarray(srcs, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64))


def argmin_with_ties(values: np.ndarray,
                     rng: np.random.Generator | None = None) -> int:
    """Index of the minimum, breaking ties uniformly at random when *rng*
    is given (deterministically taking the first otherwise)."""
    values = np.asarray(values)
    best = values.min()
    ties = np.flatnonzero(values == best)
    if ties.size == 1 or rng is None:
        return int(ties[0])
    return int(ties[rng.integers(0, ties.size)])


def argmax_with_ties(values: np.ndarray, tie_break: np.ndarray | None = None,
                     rng: np.random.Generator | None = None) -> int:
    """Index of the maximum of *values*.

    Ties are broken by the smallest *tie_break* value (typically current
    partition load — the convention of Stanton & Kliot), then uniformly at
    random when *rng* is given.
    """
    values = np.asarray(values)
    best = values.max()
    ties = np.flatnonzero(values == best)
    if ties.size == 1:
        return int(ties[0])
    if tie_break is not None:
        sub = np.asarray(tie_break)[ties]
        ties = ties[sub == sub.min()]
        if ties.size == 1:
            return int(ties[0])
    if rng is None:
        return int(ties[0])
    return int(ties[rng.integers(0, ties.size)])
