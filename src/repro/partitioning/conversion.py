"""Cut-model conversion (Appendix B of the paper).

PowerLyra stores graphs edge-disjointly, so evaluating *edge-cut*
algorithms on it requires deriving an equivalent edge-disjoint placement:
"for a given vertex-to-partition mapping ... we create an equivalent
edge-disjoint (vertex-cut) partitioning by assigning all out-edges of
vertex u to partition P_i".  Mirrors then arise only for *target* vertices,
and the replication factor of the derived placement equals the edge-cut
communication cost under sender-side aggregation (Appendix B's theorem,
reproduced in :func:`expected_replication_factor`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import Graph
from repro.partitioning.base import EdgePartition, VertexPartition


def edge_cut_to_edge_partition(graph: Graph,
                               partition: VertexPartition) -> EdgePartition:
    """Derive the Appendix-B edge-disjoint placement from an edge-cut one.

    Every edge follows its *source* vertex; each vertex's master is its
    edge-cut partition, so the derived :class:`EdgePartition` carries
    ``masters`` and the analytics engine can reproduce PowerLyra's
    edge-cut emulation exactly.
    """
    if partition.num_vertices != graph.num_vertices:
        raise PartitioningError(
            f"partition covers {partition.num_vertices} vertices but graph "
            f"has {graph.num_vertices}"
        )
    if not partition.is_complete():
        raise PartitioningError("cannot convert an incomplete partitioning")
    assignment = partition.assignment[graph.src].astype(np.int32)
    return EdgePartition(
        partition.num_partitions,
        assignment,
        algorithm=partition.algorithm,
        masters=partition.assignment.copy(),
    )


def expected_replication_factor(in_degrees: np.ndarray, num_partitions: int) -> float:
    """Appendix B's closed form for uniform-random out-edge grouping.

    With every vertex hashed uniformly and out-edges following their
    source, a vertex ``v`` with in-degree ``d`` receives in-edges from
    ``d`` uniformly placed sources.  Each of the ``k - 1`` non-master
    partitions hosts at least one of them with probability
    ``1 - (1 - 1/k)^d``, so (master included)

        E[|A(v)|] = 1 + (k - 1) · (1 - (1 - 1/k)^d)

    and the expected replication factor is the mean over vertices — the
    ``n(k-1)(1 - ψ(d, k))`` mirror count of Appendix B, normalised per
    vertex, plus the master.  The test suite validates hash edge-cut
    partitioning against this formula.
    """
    degrees = np.asarray(in_degrees, dtype=np.float64)
    if degrees.size == 0:
        return 0.0
    k = float(num_partitions)
    if k == 1:
        return 1.0
    hit = 1.0 - (1.0 - 1.0 / k) ** degrees
    return float(1.0 + (k - 1.0) * hit.mean())
