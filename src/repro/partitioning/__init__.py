"""Streaming graph partitioning algorithms (the paper's subject matter)."""

from repro.partitioning.base import (
    UNASSIGNED,
    EdgePartition,
    EdgePartitioner,
    VertexPartition,
    VertexPartitioner,
)
from repro.partitioning.conversion import (
    edge_cut_to_edge_partition,
    expected_replication_factor,
)
from repro.partitioning.decision import Recommendation, recommend, recommend_for_graph
from repro.partitioning.dynamic import (
    IncrementalEdgeCutPartitioner,
    hermes_refine,
    reassign_lost_vertices,
)
from repro.partitioning.edge_cut.fennel import FennelPartitioner
from repro.partitioning.edge_cut.hashing import HashVertexPartitioner
from repro.partitioning.edge_cut.iogp import IogpPartitioner
from repro.partitioning.edge_cut.leopard import LeopardPartitioner
from repro.partitioning.edge_cut.ldg import LdgPartitioner
from repro.partitioning.edge_cut.restreaming import (
    RestreamingFennelPartitioner,
    RestreamingLdgPartitioner,
)
from repro.partitioning.io import (
    load_partition_npz,
    read_partition_tsv,
    save_partition_npz,
    write_partition_tsv,
)
from repro.partitioning.heterogeneous import (
    HeterogeneousFennelPartitioner,
    HeterogeneousLdgPartitioner,
)
from repro.partitioning.hybrid.ginger import GingerPartitioner
from repro.partitioning.hybrid.hybrid_hash import HybridHashPartitioner
from repro.partitioning.multilevel import MultilevelPartitioner, multilevel_partition
from repro.partitioning.taper import (
    inter_partition_traversals,
    taper_refine,
    traversal_weights_from_plans,
)
from repro.partitioning.registry import (
    CUT_MODELS,
    OFFLINE_ALGORITHMS,
    ONLINE_ALGORITHMS,
    accepts_seed,
    available_algorithms,
    canonical_name,
    cut_model,
    make_partitioner,
    make_seeded_partitioner,
)
from repro.partitioning.vertex_cut.dbh import DbhPartitioner
from repro.partitioning.vertex_cut.greedy import GreedyVertexCutPartitioner
from repro.partitioning.vertex_cut.grid import GridPartitioner
from repro.partitioning.vertex_cut.hashing import HashEdgePartitioner
from repro.partitioning.vertex_cut.hdrf import HdrfPartitioner
from repro.partitioning.workload_aware import (
    WeightedLdgPartitioner,
    workload_aware_partition,
)

__all__ = [
    "UNASSIGNED",
    "VertexPartition",
    "EdgePartition",
    "VertexPartitioner",
    "EdgePartitioner",
    "HashVertexPartitioner",
    "LdgPartitioner",
    "FennelPartitioner",
    "RestreamingLdgPartitioner",
    "RestreamingFennelPartitioner",
    "HashEdgePartitioner",
    "DbhPartitioner",
    "GridPartitioner",
    "GreedyVertexCutPartitioner",
    "HdrfPartitioner",
    "HybridHashPartitioner",
    "GingerPartitioner",
    "MultilevelPartitioner",
    "multilevel_partition",
    "workload_aware_partition",
    "WeightedLdgPartitioner",
    "edge_cut_to_edge_partition",
    "expected_replication_factor",
    "make_partitioner",
    "make_seeded_partitioner",
    "accepts_seed",
    "canonical_name",
    "cut_model",
    "available_algorithms",
    "CUT_MODELS",
    "OFFLINE_ALGORITHMS",
    "ONLINE_ALGORITHMS",
    "recommend",
    "recommend_for_graph",
    "Recommendation",
    "HeterogeneousLdgPartitioner",
    "HeterogeneousFennelPartitioner",
    "IncrementalEdgeCutPartitioner",
    "hermes_refine",
    "reassign_lost_vertices",
    "IogpPartitioner",
    "LeopardPartitioner",
    "taper_refine",
    "traversal_weights_from_plans",
    "inter_partition_traversals",
    "write_partition_tsv",
    "read_partition_tsv",
    "save_partition_npz",
    "load_partition_npz",
]
