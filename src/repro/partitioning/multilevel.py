"""Multilevel k-way graph partitioning (the paper's MTS baseline).

The paper uses METIS as the offline quality baseline.  Since this repo
builds everything from scratch, this module implements the classic
multilevel scheme (Karypis & Kumar):

1. **Coarsening** — heavy-edge matching collapses matched vertex pairs,
   aggregating edge and vertex weights, until the graph is small;
2. **Initial partitioning** — greedy balanced region growing over the
   coarsest graph;
3. **Uncoarsening + refinement** — each level projects the coarse
   assignment back and improves it with gain-driven boundary moves under
   the balance constraint (a lightweight Fiduccia–Mattheyses variant).

Vertex weights are first-class: the workload-aware partitioning of the
paper's Figure 8 balances on *access counts* rather than vertex counts,
and plugs in here directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.partitioning.base import VertexPartition, check_num_partitions
from repro.rng import make_rng

#: Stop coarsening once the graph has at most this many vertices per part.
_COARSEST_PER_PART = 12
#: Stop coarsening when a level shrinks less than this factor.
_MIN_SHRINK = 0.95
#: Refinement passes per level.
_REFINE_PASSES = 4


class _Level:
    """One level of the multilevel hierarchy: an undirected weighted CSR."""

    __slots__ = ("indptr", "indices", "weights", "vweights", "coarse_map")

    def __init__(self, indptr, indices, weights, vweights, coarse_map=None):
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.vweights = vweights
        self.coarse_map = coarse_map  # fine vertex -> coarse vertex

    @property
    def num_vertices(self) -> int:
        return self.vweights.size


def _undirected_csr(graph: Graph, vertex_weights: np.ndarray) -> _Level:
    """Symmetrise the directed graph, merging parallel edges into weights."""
    n = graph.num_vertices
    src = np.concatenate([graph.src, graph.dst])
    dst = np.concatenate([graph.dst, graph.src])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    return _csr_from_weighted_edges(n, src, dst,
                                    np.ones(src.size, dtype=np.float64),
                                    vertex_weights)


def _csr_from_weighted_edges(n, src, dst, w, vweights) -> _Level:
    if src.size == 0:
        return _Level(np.zeros(n + 1, np.int64), np.empty(0, np.int64),
                      np.empty(0, np.float64), vweights)
    keys = src.astype(np.int64) * n + dst
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    unique_keys, start = np.unique(keys_sorted, return_index=True)
    summed = np.add.reduceat(w[order], start)
    u_src = (unique_keys // n).astype(np.int64)
    u_dst = (unique_keys % n).astype(np.int64)
    counts = np.bincount(u_src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return _Level(indptr, u_dst, summed.astype(np.float64), vweights)


def _heavy_edge_matching(level: _Level, rng,
                         max_vertex_weight: float) -> np.ndarray:
    """Match each vertex with its heaviest unmatched neighbour.

    Matches that would create a coarse vertex heavier than
    ``max_vertex_weight`` are skipped — the standard METIS guard that
    keeps coarse vertices small enough for the balance constraint to be
    satisfiable at the coarsest level.
    """
    n = level.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    visit = rng.permutation(n)
    indptr, indices, weights = level.indptr, level.indices, level.weights
    vweights = level.vweights
    for u in visit.tolist():
        if match[u] != -1:
            continue
        best, best_w = -1, -1.0
        for pos in range(indptr[u], indptr[u + 1]):
            v = indices[pos]
            if (match[v] == -1 and v != u and weights[pos] > best_w
                    and vweights[u] + vweights[v] <= max_vertex_weight):
                best, best_w = v, weights[pos]
        if best >= 0:
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    return match


def _max_coarse_weight(level: _Level, k: int) -> float:
    """Cap on a single coarse vertex's weight during matching."""
    total = float(level.vweights.sum())
    return max(total / (k * 4.0), float(level.vweights.max()))


def _coarsen(level: _Level, rng, k: int) -> _Level:
    """One coarsening step: contract a heavy-edge matching."""
    n = level.num_vertices
    match = _heavy_edge_matching(level, rng, _max_coarse_weight(level, k))
    # Coarse id: the smaller endpoint of each matched pair names the pair.
    representative = np.minimum(np.arange(n), match)
    unique_reps, coarse_map = np.unique(representative, return_inverse=True)
    coarse_n = unique_reps.size

    src = coarse_map[np.repeat(np.arange(n), np.diff(level.indptr))]
    dst = coarse_map[level.indices]
    keep = src != dst
    vweights = np.bincount(coarse_map, weights=level.vweights,
                           minlength=coarse_n)
    coarse = _csr_from_weighted_edges(coarse_n, src[keep], dst[keep],
                                      level.weights[keep], vweights)
    coarse.coarse_map = coarse_map
    return coarse


def _initial_partition(level: _Level, k: int, capacity: float, rng) -> np.ndarray:
    """Greedy balanced region growing on the coarsest graph."""
    n = level.num_vertices
    assignment = np.full(n, -1, dtype=np.int32)
    loads = np.zeros(k, dtype=np.float64)
    order = np.argsort(-level.vweights, kind="stable")
    indptr, indices = level.indptr, level.indices

    from collections import deque

    part = 0
    for seed_vertex in order.tolist():
        if assignment[seed_vertex] != -1:
            continue
        # Grow the currently lightest partition from this seed.
        part = int(np.argmin(loads))
        frontier = deque([seed_vertex])
        while frontier and loads[part] < capacity:
            u = frontier.popleft()
            if assignment[u] != -1:
                continue
            assignment[u] = part
            loads[part] += level.vweights[u]
            for pos in range(indptr[u], indptr[u + 1]):
                v = indices[pos]
                if assignment[v] == -1:
                    frontier.append(v)
    # Any stragglers go to the lightest partition.
    for u in np.flatnonzero(assignment == -1).tolist():
        part = int(np.argmin(loads))
        assignment[u] = part
        loads[part] += level.vweights[u]
    return assignment


def _refine(level: _Level, assignment: np.ndarray, k: int, capacity: float,
            rng, passes: int = _REFINE_PASSES) -> np.ndarray:
    """Gain-driven boundary moves (lightweight FM) under the balance cap."""
    indptr, indices, weights = level.indptr, level.indices, level.weights
    vweights = level.vweights
    loads = np.bincount(assignment, weights=vweights, minlength=k).astype(np.float64)

    for _pass in range(passes):
        moved = 0
        # Boundary vertices only: any vertex with a neighbour elsewhere.
        neighbor_parts = assignment[indices]
        owner = np.repeat(np.arange(level.num_vertices), np.diff(indptr))
        boundary = np.unique(owner[neighbor_parts != assignment[owner]])
        if boundary.size == 0:
            break
        for u in rng.permutation(boundary).tolist():
            current = assignment[u]
            lo, hi = indptr[u], indptr[u + 1]
            parts = assignment[indices[lo:hi]]
            gain_to = np.zeros(k, dtype=np.float64)
            np.add.at(gain_to, parts, weights[lo:hi])
            internal = gain_to[current]
            gain_to -= internal
            gain_to[current] = 0.0
            # Feasible targets: balance respected after the move.
            feasible = loads + vweights[u] <= capacity
            feasible[current] = False
            candidate_gain = np.where(feasible, gain_to, -np.inf)
            best = int(np.argmax(candidate_gain))
            if candidate_gain[best] > 0:
                assignment[u] = best
                loads[current] -= vweights[u]
                loads[best] += vweights[u]
                moved += 1
        if moved == 0:
            break
    return assignment


def _rebalance(level: _Level, assignment: np.ndarray, k: int,
               capacity: float, rng) -> np.ndarray:
    """Force the balance constraint: evict minimum-damage vertices from
    overweight partitions into the lightest feasible ones."""
    indptr, indices, weights = level.indptr, level.indices, level.weights
    vweights = level.vweights
    loads = np.bincount(assignment, weights=vweights, minlength=k).astype(np.float64)

    for part in range(k):
        if loads[part] <= capacity:
            continue
        members = np.flatnonzero(assignment == part)
        # Cheapest-to-move first: vertices with the least internal edge
        # weight lose the least locality when evicted.
        internal = np.zeros(members.size, dtype=np.float64)
        for idx, u in enumerate(members.tolist()):
            lo, hi = indptr[u], indptr[u + 1]
            internal[idx] = weights[lo:hi][assignment[indices[lo:hi]] == part].sum()
        for u in members[np.argsort(internal, kind="stable")].tolist():
            if loads[part] <= capacity:
                break
            target = int(np.argmin(loads))
            if target == part:
                break
            assignment[u] = target
            loads[part] -= vweights[u]
            loads[target] += vweights[u]
    return assignment


def multilevel_partition(
    graph: Graph,
    num_partitions: int,
    *,
    vertex_weights=None,
    balance_slack: float = 1.05,
    seed=None,
) -> VertexPartition:
    """Offline multilevel k-way partitioning (MTS).

    Parameters
    ----------
    graph:
        Input (directed) graph; partitioning works on its undirected view.
    num_partitions:
        k.
    vertex_weights:
        Optional per-vertex load to balance (defaults to 1 per vertex).
        Figure 8's workload-aware variant passes access counts here.
    balance_slack:
        β: maximum partition weight is ``β · total / k``.
    """
    k = check_num_partitions(num_partitions)
    if balance_slack < 1.0:
        raise ConfigurationError("balance_slack (beta) must be >= 1")
    rng = make_rng(seed)
    n = graph.num_vertices
    if n == 0:
        return VertexPartition(k, np.empty(0, np.int32), algorithm="mts")
    if vertex_weights is None:
        vweights = np.ones(n, dtype=np.float64)
    else:
        vweights = np.asarray(vertex_weights, dtype=np.float64)
        if vweights.shape != (n,):
            raise ConfigurationError("vertex_weights must have one entry per vertex")
        if (vweights < 0).any():
            raise ConfigurationError("vertex_weights must be non-negative")
        # Zero-weight vertices still need somewhere to live; give them a
        # tiny weight so balance terms stay meaningful.
        positive = vweights[vweights > 0]
        floor = positive.min() * 1e-3 if positive.size else 1.0
        vweights = np.maximum(vweights, floor)

    capacity = balance_slack * vweights.sum() / k

    # Phase 1: coarsen.
    levels = [_undirected_csr(graph, vweights)]
    while (levels[-1].num_vertices > max(k * _COARSEST_PER_PART, 48)):
        coarse = _coarsen(levels[-1], rng, k)
        if coarse.num_vertices >= levels[-1].num_vertices * _MIN_SHRINK:
            break
        levels.append(coarse)

    # Phase 2: initial partition at the coarsest level.
    assignment = _initial_partition(levels[-1], k, capacity, rng)
    assignment = _rebalance(levels[-1], assignment, k, capacity, rng)
    assignment = _refine(levels[-1], assignment, k, capacity, rng)

    # Phase 3: project back and refine at every level.
    for level_index in range(len(levels) - 1, 0, -1):
        coarse = levels[level_index]
        fine = levels[level_index - 1]
        assignment = assignment[coarse.coarse_map]
        assignment = _refine(fine, assignment, k, capacity, rng)
        assignment = _rebalance(fine, assignment, k, capacity, rng)

    return VertexPartition(k, assignment.astype(np.int32), algorithm="mts")


class MultilevelPartitioner:
    """Object wrapper so MTS slots into the same registry as SGP algorithms.

    Unlike the streaming classes this consumes the whole graph — exactly
    the paper's setup, where METIS runs as a pre-processing step on a
    dedicated machine before loading.
    """

    name = "mts"
    cut_model = "edge-cut"

    def __init__(self, balance_slack: float = 1.05, seed=None):
        self.balance_slack = balance_slack
        self.seed = seed

    def partition(self, graph: Graph, num_partitions: int, *,
                  order: str = "random", seed=None,
                  vertex_weights=None) -> VertexPartition:
        # ``order`` is accepted (and ignored) for interface uniformity:
        # offline algorithms see the whole graph regardless of stream order.
        return multilevel_partition(
            graph, num_partitions,
            vertex_weights=vertex_weights,
            balance_slack=self.balance_slack,
            seed=seed if seed is not None else self.seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultilevelPartitioner(balance_slack={self.balance_slack})"
