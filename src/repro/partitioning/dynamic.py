"""Dynamic partitioning: incremental placement and Hermes-style refinement.

Section 2 of the paper points at two classes of dynamic techniques this
module implements in their simplest faithful forms:

* **Incremental placement** — re-streaming algorithms "can simply be
  streamed again starting from the previous assignment" when the graph
  grows.  :class:`IncrementalEdgeCutPartitioner` scores *new* vertices
  with the LDG objective against an existing partitioning, which is how a
  bulk-loaded cluster absorbs arrivals without re-partitioning.

* **Hermes-style refinement** (Nicoara et al., EDBT 2015) — "dynamic
  refinement of an initial partitioning instead of re-partitioning the
  whole graph".  :func:`hermes_refine` runs iterative gain-driven vertex
  migration under a balance constraint on top of *any* edge-cut
  partitioning, improving the cut in place.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, PartitioningError
from repro.graph.digraph import Graph
from repro.partitioning.base import (
    UNASSIGNED,
    VertexPartition,
    argmax_with_ties,
)
from repro.rng import make_rng


class IncrementalEdgeCutPartitioner:
    """Place newly arriving vertices into an existing partitioning.

    Parameters
    ----------
    base:
        The current :class:`VertexPartition` (its assignment array is not
        modified; placements accumulate in a copy).
    balance_slack:
        β against the *final* expected vertex count, supplied per call.
    """

    def __init__(self, base: VertexPartition, balance_slack: float = 1.1,
                 seed=None):
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        if not base.is_complete():
            raise PartitioningError("base partitioning must be complete")
        self.num_partitions = base.num_partitions
        self.balance_slack = balance_slack
        self.seed = seed
        self._assignment = base.assignment.copy()
        self._sizes = base.sizes().astype(np.int64)

    @property
    def assignment(self) -> np.ndarray:
        return self._assignment

    def add_vertex(self, neighbors, rng=None) -> int:
        """Place one new vertex given its (already-placed) neighbours.

        ``neighbors`` may reference vertices that are themselves new; the
        unplaced ones are simply ignored, exactly like a streaming pass.
        Returns the chosen partition.
        """
        k = self.num_partitions
        rng = make_rng(rng if rng is not None else self.seed)
        total = int(self._sizes.sum()) + 1
        capacity = max(1.0, math.ceil(self.balance_slack * total / k))
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if neighbors.size and int(neighbors.min()) < 0:
            # A negative id would wrap-index into the assignment array and
            # silently score against an arbitrary vertex's partition.
            raise PartitioningError(
                f"neighbor ids must be >= 0, got {int(neighbors.min())}")
        in_range = neighbors[neighbors < self._assignment.size]
        placed = self._assignment[in_range]
        placed = placed[placed != UNASSIGNED]
        if placed.size:
            counts = np.bincount(placed, minlength=k).astype(np.float64)
        else:
            counts = np.zeros(k, dtype=np.float64)
        scores = counts * (1.0 - self._sizes / capacity)
        target = argmax_with_ties(scores, tie_break=self._sizes, rng=rng)
        self._assignment = np.append(self._assignment, np.int32(target))
        self._sizes[target] += 1
        return int(target)

    def require_covers(self, graph: Graph) -> None:
        """Raise unless the accumulated assignment covers *graph* exactly.

        Guards the refinement path of the online service: a materialised
        graph whose vertex count diverged from the placement state would
        otherwise mis-index silently.
        """
        if self._assignment.size != graph.num_vertices:
            raise PartitioningError(
                f"assignment covers {self._assignment.size} vertices but "
                f"graph {graph.name!r} has {graph.num_vertices}; place new "
                f"arrivals with add_vertex() before refining")

    def apply_moves(self, vertices, targets) -> None:
        """Re-home *vertices* to *targets*, keeping size counters in sync.

        The migration executor's entry point: a bounded
        :func:`hermes_refine` proposes moves, the service commits them
        here batch by batch.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if vertices.shape != targets.shape:
            raise ConfigurationError("vertices and targets must align")
        if vertices.size == 0:
            return
        if int(vertices.min()) < 0 or \
                int(vertices.max()) >= self._assignment.size:
            raise PartitioningError(
                f"move targets vertices outside the assignment "
                f"(size {self._assignment.size})")
        if int(targets.min()) < 0 or int(targets.max()) >= self.num_partitions:
            raise ConfigurationError(
                f"target partitions must be in [0, {self.num_partitions})")
        old = self._assignment[vertices].astype(np.int64)
        self._sizes -= np.bincount(old, minlength=self.num_partitions)
        self._sizes += np.bincount(targets, minlength=self.num_partitions)
        self._assignment[vertices] = targets.astype(np.int32)

    def to_partition(self, algorithm: str = "ldg-incr") -> VertexPartition:
        """Snapshot the accumulated assignment."""
        return VertexPartition(self.num_partitions, self._assignment.copy(),
                               algorithm=algorithm)


def hermes_refine(
    graph: Graph,
    partition: VertexPartition,
    *,
    balance_slack: float = 1.1,
    max_passes: int = 8,
    max_moves: int | None = None,
    seed=None,
) -> VertexPartition:
    """Iterative gain-driven refinement of an edge-cut partitioning.

    Each pass visits boundary vertices in random order and moves a vertex
    to the neighbouring partition with the largest positive gain (cut
    edges saved) whenever the balance constraint permits.  Converges when
    a pass moves nothing — typically a handful of passes.

    ``max_moves`` caps the total number of accepted moves — the online
    service's migration budget: each move is a vertex whose state must be
    shipped between workers, so refinement quality is bought at an
    explicit migration price.  ``None`` refines to convergence.

    Returns a new :class:`VertexPartition` (the input is not modified)
    whose cut is never worse than the input's.
    """
    if partition.num_vertices != graph.num_vertices:
        raise PartitioningError(
            f"partition covers {partition.num_vertices} vertices but graph "
            f"{graph.name!r} has {graph.num_vertices}; refine against the "
            f"same materialisation the partition was built for")
    if not partition.is_complete():
        raise PartitioningError("cannot refine an incomplete partitioning")
    if balance_slack < 1.0:
        raise ConfigurationError("balance_slack (beta) must be >= 1")
    if max_moves is not None and max_moves < 0:
        raise ConfigurationError("max_moves must be >= 0 (or None)")
    rng = make_rng(seed)
    k = partition.num_partitions
    assignment = partition.assignment.copy()
    sizes = partition.sizes().astype(np.int64)
    capacity = max(1.0, balance_slack * graph.num_vertices / k)
    budget = math.inf if max_moves is None else max_moves

    total_moved = 0
    for _pass in range(max_passes):
        if total_moved >= budget:
            break
        boundary = _boundary_vertices(graph, assignment)
        if boundary.size == 0:
            break
        moved = 0
        for u in rng.permutation(boundary).tolist():
            if total_moved >= budget:
                break
            current = assignment[u]
            neighbor_parts = assignment[graph.neighbors(u)]
            gain_to = np.bincount(neighbor_parts, minlength=k).astype(np.float64)
            internal = gain_to[current]
            gain_to -= internal
            gain_to[current] = 0.0
            feasible = sizes + 1 <= capacity
            feasible[current] = False
            candidate = np.where(feasible, gain_to, -np.inf)
            best = int(np.argmax(candidate))
            if candidate[best] > 0:
                assignment[u] = best
                sizes[current] -= 1
                sizes[best] += 1
                moved += 1
                total_moved += 1
        if moved == 0:
            break
    return VertexPartition(k, assignment,
                           algorithm=f"{partition.algorithm}+hermes")


def reassign_lost_vertices(
    graph: Graph,
    partition: VertexPartition,
    lost_part: int,
    *,
    balance_slack: float = 1.2,
    seed=None,
) -> VertexPartition:
    """Re-home every vertex of a failed partition onto the survivors.

    The fault-tolerance recovery path (see :mod:`repro.faults`): when a
    worker dies permanently, the vertices it mastered must be re-placed on
    the remaining ``k - 1`` partitions.  Each lost vertex is streamed (in
    id order — the order replicas re-read the failed worker's key range)
    and placed with the LDG objective restricted to surviving partitions,
    so the recovered placement's quality — and hence the migration traffic
    and post-recovery cut — depends on the partitioning under test.

    Returns a new :class:`VertexPartition` with the same ``k`` in which no
    vertex is assigned to *lost_part*.
    """
    if not 0 <= lost_part < partition.num_partitions:
        raise ConfigurationError(
            f"lost_part must be in [0, {partition.num_partitions}), "
            f"got {lost_part}")
    if partition.num_partitions < 2:
        raise PartitioningError(
            "cannot recover a 1-partition placement: there is no survivor")
    if partition.num_vertices != graph.num_vertices:
        raise PartitioningError("partition does not cover the graph")
    if not partition.is_complete():
        raise PartitioningError("cannot recover an incomplete partitioning")
    rng = make_rng(seed)
    k = partition.num_partitions
    assignment = partition.assignment.copy()
    lost = np.flatnonzero(assignment == lost_part)
    algorithm = f"{partition.algorithm}+failover"
    if lost.size == 0:
        return VertexPartition(k, assignment, algorithm=algorithm)
    assignment[lost] = UNASSIGNED
    survivors = assignment[assignment != UNASSIGNED]
    sizes = np.bincount(survivors, minlength=k).astype(np.int64)
    capacity = max(1.0, math.ceil(
        balance_slack * graph.num_vertices / (k - 1)))
    # Exclude the dead partition from both score and tie-break.
    dead_penalty = np.zeros(k)
    dead_penalty[lost_part] = -np.inf
    for u in lost.tolist():
        neighbor_parts = assignment[graph.neighbors(u)]
        neighbor_parts = neighbor_parts[neighbor_parts != UNASSIGNED]
        counts = np.bincount(neighbor_parts, minlength=k).astype(np.float64)
        scores = counts * (1.0 - sizes / capacity) + dead_penalty
        target = argmax_with_ties(scores, tie_break=sizes, rng=rng)
        assignment[u] = target
        sizes[target] += 1
    return VertexPartition(k, assignment, algorithm=algorithm)


def _boundary_vertices(graph: Graph, assignment: np.ndarray) -> np.ndarray:
    """Vertices with at least one neighbour in another partition."""
    cross = assignment[graph.src] != assignment[graph.dst]
    if not cross.any():
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate([graph.src[cross], graph.dst[cross]]))
