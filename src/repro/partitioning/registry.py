"""Algorithm registry keyed by the paper's acronyms (Table 2).

Maps the names used throughout the paper's tables and figures — ECR, LDG,
FNL, MTS, VCR, Grid, DBH, HDRF, HCR, HG — to partitioner factories, so the
experiment harness can sweep "all algorithms" the way the paper does.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.partitioning.edge_cut.fennel import FennelPartitioner
from repro.partitioning.edge_cut.hashing import HashVertexPartitioner
from repro.partitioning.edge_cut.iogp import IogpPartitioner
from repro.partitioning.edge_cut.leopard import LeopardPartitioner
from repro.partitioning.edge_cut.ldg import LdgPartitioner
from repro.partitioning.edge_cut.restreaming import (
    RestreamingFennelPartitioner,
    RestreamingLdgPartitioner,
)
from repro.partitioning.hybrid.ginger import GingerPartitioner
from repro.partitioning.hybrid.hybrid_hash import HybridHashPartitioner
from repro.partitioning.multilevel import MultilevelPartitioner
from repro.partitioning.vertex_cut.dbh import DbhPartitioner
from repro.partitioning.vertex_cut.greedy import GreedyVertexCutPartitioner
from repro.partitioning.vertex_cut.grid import GridPartitioner
from repro.partitioning.vertex_cut.hashing import HashEdgePartitioner
from repro.partitioning.vertex_cut.hdrf import HdrfPartitioner

_FACTORIES: dict[str, Callable[..., object]] = {
    # Edge-cut (vertex streams) — Section 4.1.
    "ecr": HashVertexPartitioner,
    "ldg": LdgPartitioner,
    "fennel": FennelPartitioner,
    "re-ldg": RestreamingLdgPartitioner,
    "re-fennel": RestreamingFennelPartitioner,
    "iogp": IogpPartitioner,
    "leopard": LeopardPartitioner,
    "mts": MultilevelPartitioner,
    # Vertex-cut (edge streams) — Section 4.2.
    "vcr": HashEdgePartitioner,
    "dbh": DbhPartitioner,
    "grid": GridPartitioner,
    "greedy": GreedyVertexCutPartitioner,
    "hdrf": HdrfPartitioner,
    # Hybrid-cut — Section 4.3.
    "hcr": HybridHashPartitioner,
    "hg": GingerPartitioner,
}

#: Whether each factory accepts a ``seed=`` keyword (RNG tie-breaking).
#: Hash-based algorithms are stateless and expose only ``hash_seed``;
#: calling them with ``seed=`` is a caller error, not something to paper
#: over with a retry.  The flag is validated against the constructor
#: signatures at import time (see ``_validate_seed_flags``), so it cannot
#: silently drift when an algorithm gains or loses its RNG.
_ACCEPTS_SEED: dict[str, bool] = {
    "ecr": False,
    "ldg": True,
    "fennel": True,
    "re-ldg": True,
    "re-fennel": True,
    "iogp": False,
    "leopard": False,
    "mts": True,
    "vcr": False,
    "dbh": False,
    "grid": True,
    "greedy": True,
    "hdrf": True,
    "hcr": False,
    "hg": True,
}


def _validate_seed_flags() -> None:
    import inspect

    for name, factory in _FACTORIES.items():
        has_seed = "seed" in inspect.signature(factory).parameters
        if has_seed != _ACCEPTS_SEED[name]:
            raise ConfigurationError(
                f"registry accepts_seed flag for {name!r} is "
                f"{_ACCEPTS_SEED[name]} but the constructor "
                f"{'has' if has_seed else 'lacks'} a seed parameter")


_validate_seed_flags()

#: Aliases used in the paper's figures.
_ALIASES = {
    "fnl": "fennel",
    "hash": "ecr",
    "metis": "mts",
    "ginger": "hg",
    "hybrid-random": "hcr",
}

#: Cut model per algorithm, as classified in Table 1 / Table 2.
CUT_MODELS = {
    "ecr": "edge-cut",
    "ldg": "edge-cut",
    "fennel": "edge-cut",
    "re-ldg": "edge-cut",
    "re-fennel": "edge-cut",
    "iogp": "edge-cut",
    "leopard": "edge-cut",
    "mts": "edge-cut",
    "vcr": "vertex-cut",
    "dbh": "vertex-cut",
    "grid": "vertex-cut",
    "greedy": "vertex-cut",
    "hdrf": "vertex-cut",
    "hcr": "hybrid-cut",
    "hg": "hybrid-cut",
}

#: The algorithm sets used by the paper's two experiment families
#: (Table 2: "Parameters / Algorithms").
OFFLINE_ALGORITHMS = ("vcr", "grid", "dbh", "hdrf", "hcr", "hg", "ecr", "ldg",
                      "fennel", "mts")
ONLINE_ALGORITHMS = ("ecr", "ldg", "fennel", "mts")


def canonical_name(name: str) -> str:
    """Resolve aliases to the registry's canonical algorithm name."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _FACTORIES:
        known = sorted(set(_FACTORIES) | set(_ALIASES))
        raise ConfigurationError(f"unknown algorithm {name!r}; known: {known}")
    return key


def accepts_seed(name: str) -> bool:
    """Whether the partitioner registered under *name* takes ``seed=``.

    Callers that sweep "all algorithms" with one seed use this to drop
    the keyword for the stateless hash-based methods — explicitly, rather
    than by catching ``TypeError`` (which would also swallow a genuine
    constructor bug)."""
    return _ACCEPTS_SEED[canonical_name(name)]


def make_partitioner(name: str, **kwargs):
    """Instantiate the partitioner registered under *name* (or an alias)."""
    return _FACTORIES[canonical_name(name)](**kwargs)


def make_seeded_partitioner(name: str, seed: int, **kwargs):
    """Instantiate *name* with ``seed=seed`` when it accepts one.

    The uniform constructor the experiment harness sweeps with: seedable
    algorithms get the seed, hash-based ones are built without it, and a
    ``TypeError`` raised *inside* a constructor propagates untouched."""
    if accepts_seed(name):
        return make_partitioner(name, seed=seed, **kwargs)
    return make_partitioner(name, **kwargs)


def cut_model(name: str) -> str:
    """The cut model ('edge-cut' | 'vertex-cut' | 'hybrid-cut') of *name*."""
    return CUT_MODELS[canonical_name(name)]


def available_algorithms() -> tuple[str, ...]:
    """All canonical algorithm names."""
    return tuple(sorted(_FACTORIES))
