"""vertex-cut streaming graph partitioning algorithms."""
