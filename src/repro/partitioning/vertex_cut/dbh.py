"""Degree-Based Hashing (DBH) — Xie et al., NeurIPS 2014.

Assigns edge ``(u, v)`` to ``h(u)`` if ``d(u) < d(v)`` else ``h(v)``:
cutting through the *higher*-degree endpoint preserves the locality of
low-degree vertices while the few hubs absorb the replication, which is
why DBH's expected replication factor *improves* as degree skew grows
(Section 4.2.2).

The paper notes DBH "relies on a priori knowledge of degree information".
We support both modes: exact degrees (taken from the stream's backing
graph, the bulk-load setting) and partial degrees counted on the fly (the
pure-streaming setting), selected by ``degrees="exact"|"partial"``.
Partial mode runs chunk-at-a-time against a pluggable degree state
(exact counters or a count-min sketch via ``state=``) through
:class:`DbhCore`, so it also drives the out-of-core/sharded ingest path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
    edge_stream_arrays,
)
from repro.partitioning.degree_state import (
    DEFAULT_SKETCH_DEPTH,
    DEFAULT_SKETCH_WIDTH,
    make_degree_state,
)
from repro.partitioning.kernels import iter_edge_chunks
from repro.rng import SeededHash


class DbhCore:
    """Chunk-driven partial-degree DBH: hash the lower-degree endpoint.

    DBH never reads partition loads, so ``rebase_sizes`` is a no-op —
    present only so the sharded driver can treat every core uniformly.
    """

    algorithm = "dbh"

    def __init__(self, num_partitions: int, hash_seed: int, *,
                 degrees) -> None:
        self.k = int(num_partitions)
        self.hasher = SeededHash(self.k, hash_seed)
        self.degrees = degrees
        self.sizes = np.zeros(self.k, dtype=np.int64)

    def rebase_sizes(self, global_sizes: np.ndarray) -> None:
        np.copyto(self.sizes, global_sizes)

    def state_nbytes(self) -> int:
        return int(self.sizes.nbytes + self.degrees.nbytes)

    def process_chunk(self, edge_ids: np.ndarray, src_arr: np.ndarray,
                      dst_arr: np.ndarray, assignment: np.ndarray) -> None:
        d_u, d_v = self.degrees.push(src_arr, dst_arr)
        lower = np.where(d_u < d_v, src_arr, dst_arr)
        choices = self.hasher(lower)
        assignment[edge_ids] = choices
        self.sizes += np.bincount(choices, minlength=self.k)


class DbhPartitioner(EdgePartitioner):
    """Degree-Based Hashing vertex-cut streaming partitioner."""

    name = "dbh"

    def __init__(self, hash_seed: int = 0, degrees: str = "exact",
                 state: str = "exact",
                 sketch_width: int = DEFAULT_SKETCH_WIDTH,
                 sketch_depth: int = DEFAULT_SKETCH_DEPTH):
        if degrees not in ("exact", "partial"):
            raise ConfigurationError("degrees must be 'exact' or 'partial'")
        self.hash_seed = hash_seed
        self.degrees = degrees
        self.state = state
        self.sketch_width = sketch_width
        self.sketch_depth = sketch_depth

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        assignment = np.full(num_edges, -1, dtype=np.int32)

        if self.degrees == "exact":
            graph = getattr(stream, "graph", None)
            if graph is None:
                raise ConfigurationError(
                    "degrees='exact' needs a graph-backed stream; "
                    "use degrees='partial' for external streams"
                )
            # With a-priori degrees the rule is stateless: bulk-evaluate.
            hasher = SeededHash(k, self.hash_seed)
            degree = graph.degree
            edge_ids, src, dst = edge_stream_arrays(stream)
            lower = np.where(degree[src] < degree[dst], src, dst)
            assignment[edge_ids] = hasher(lower)
        else:
            # Partial mode reads only the counters a scalar loop would
            # hold at each arrival — accumulated chunk by chunk, so
            # file-backed streams never materialise.
            state = make_degree_state(self.state, num_vertices,
                                      sketch_width=self.sketch_width,
                                      sketch_depth=self.sketch_depth)
            core = DbhCore(k, self.hash_seed, degrees=state)
            for edge_ids, src_arr, dst_arr in iter_edge_chunks(stream):
                core.process_chunk(edge_ids, src_arr, dst_arr, assignment)
        return EdgePartition(k, assignment, algorithm=self.name)
