"""Degree-Based Hashing (DBH) — Xie et al., NeurIPS 2014.

Assigns edge ``(u, v)`` to ``h(u)`` if ``d(u) < d(v)`` else ``h(v)``:
cutting through the *higher*-degree endpoint preserves the locality of
low-degree vertices while the few hubs absorb the replication, which is
why DBH's expected replication factor *improves* as degree skew grows
(Section 4.2.2).

The paper notes DBH "relies on a priori knowledge of degree information".
We support both modes: exact degrees (taken from the stream's backing
graph, the bulk-load setting) and partial degrees counted on the fly (the
pure-streaming setting), selected by ``degrees="exact"|"partial"``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
    edge_stream_arrays,
)
from repro.partitioning.kernels import streaming_partial_degrees
from repro.rng import SeededHash


class DbhPartitioner(EdgePartitioner):
    """Degree-Based Hashing vertex-cut streaming partitioner."""

    name = "dbh"

    def __init__(self, hash_seed: int = 0, degrees: str = "exact"):
        if degrees not in ("exact", "partial"):
            raise ConfigurationError("degrees must be 'exact' or 'partial'")
        self.hash_seed = hash_seed
        self.degrees = degrees

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        hasher = SeededHash(k, self.hash_seed)
        assignment = np.full(num_edges, -1, dtype=np.int32)

        if self.degrees == "exact":
            graph = getattr(stream, "graph", None)
            if graph is None:
                raise ConfigurationError(
                    "degrees='exact' needs a graph-backed stream; "
                    "use degrees='partial' for external streams"
                )
            # With a-priori degrees the rule is stateless: bulk-evaluate.
            degree = graph.degree
            edge_ids, src, dst = edge_stream_arrays(stream)
            lower = np.where(degree[src] < degree[dst], src, dst)
            assignment[edge_ids] = hasher(lower)
        else:
            # The partial-degree rule reads only the counters the scalar
            # loop would hold at each arrival — which the kernel layer
            # derives vectorized, so partial mode bulk-evaluates too.
            edge_ids, src, dst = edge_stream_arrays(stream)
            d_u, d_v = streaming_partial_degrees(src, dst)
            lower = np.where(d_u < d_v, src, dst)
            assignment[edge_ids] = hasher(lower)
        return EdgePartition(k, assignment, algorithm=self.name)
