"""Grid constrained vertex-cut partitioning — Jain et al. (GraphBuilder).

Partitions are arranged on a virtual 2-D grid; the *constrained set* of a
partition is its row plus its column.  An edge ``(u, v)`` hashes both
endpoints to partitions ``P_i``/``P_j`` and is placed on the least-loaded
member of ``constraint(P_i) ∩ constraint(P_j)``.  Any two row+column sets
of a full grid intersect in at least two cells, which upper-bounds every
vertex's replication by ``2 sqrt(k) - 1`` (Section 4.2.2) — a property the
test suite asserts.

For non-square ``k`` the grid is ragged (last row short); when the ragged
intersection is empty we fall back to the union of the two constrained
sets, preserving the bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
)
from repro.partitioning.kernels import (
    argmin_with_ties_inline,
    iter_edge_chunks,
)
from repro.rng import SeededHash, make_rng


def grid_shape(k: int) -> tuple[int, int]:
    """Rows/cols of the virtual grid for *k* partitions (rows <= cols)."""
    rows = max(1, int(math.floor(math.sqrt(k))))
    cols = int(math.ceil(k / rows))
    return rows, cols


def constrained_sets(k: int) -> list[np.ndarray]:
    """The constrained set (row ∪ column members) of every partition."""
    rows, cols = grid_shape(k)
    sets = []
    for p in range(k):
        r, c = divmod(p, cols)
        row_members = [r * cols + j for j in range(cols) if r * cols + j < k]
        col_members = [i * cols + c for i in range(rows) if i * cols + c < k]
        sets.append(np.unique(np.array(row_members + col_members, dtype=np.int64)))
    return sets


class GridPartitioner(EdgePartitioner):
    """Grid constrained vertex-cut streaming partitioner."""

    name = "grid"

    def __init__(self, hash_seed: int = 0, seed=None):
        self.hash_seed = hash_seed
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        hasher = SeededHash(k, self.hash_seed)
        sets = constrained_sets(k)
        # Pre-computing the k x k candidate table keeps the per-edge work
        # to a lookup plus an argmin over O(sqrt(k)) loads.
        candidate_table = [[None] * k for _ in range(k)]
        for i in range(k):
            for j in range(k):
                inter = np.intersect1d(sets[i], sets[j], assume_unique=True)
                if inter.size == 0:           # ragged-grid corner case
                    inter = np.union1d(sets[i], sets[j])
                candidate_table[i][j] = inter
        assignment = np.full(num_edges, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)

        # Bulk-hash the anchors one chunk at a time (the hash is
        # stateless); the load-aware choice stays sequential because it
        # reads the evolving sizes.
        for ids_chunk, src_chunk, dst_chunk in iter_edge_chunks(stream):
            anchors_u = hasher(src_chunk)
            anchors_v = hasher(dst_chunk)
            for edge_id, anchor_u, anchor_v in zip(ids_chunk.tolist(),
                                                   anchors_u.tolist(),
                                                   anchors_v.tolist()):
                candidates = candidate_table[anchor_u][anchor_v]
                choice = candidates[argmin_with_ties_inline(sizes[candidates],
                                                            rng)]
                assignment[edge_id] = choice
                sizes[choice] += 1
        return EdgePartition(k, assignment, algorithm=self.name)
