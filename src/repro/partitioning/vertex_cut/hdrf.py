"""HDRF (High-Degree Replicated First) — Petroni et al., CIKM 2015.

Eq. 7 of the paper: a degree-aware greedy vertex-cut that replicates hub
vertices and preserves low-degree locality, using only *partial* degree
counts (no pre-processing pass):

    θ(u) = d(u) / (d(u) + d(v)),   θ(v) = 1 - θ(u)
    g(v, P_i) = (1 + (1 - θ(v))) · 1_{P_i ∈ A(v)}
    argmax_i  g(v, P_i) + g(u, P_i) + λ (1 - |e(P_i)| / C)

A partition already hosting the *lower*-degree endpoint scores higher
(``1 - θ`` is larger for the smaller degree), so cuts land on hubs.  The
balance term with ``λ > 1`` keeps HDRF well-defined on BFS-ordered streams
where plain greedy collapses (Section 4.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
    edge_stream_arrays,
)
from repro.partitioning.kernels import (
    argmax_tie_least_loaded,
    streaming_partial_degrees,
    zip_chunked,
)
from repro.rng import make_rng
from repro.telemetry import get_tracer


class HdrfPartitioner(EdgePartitioner):
    """HDRF vertex-cut streaming partitioner.

    Parameters
    ----------
    balance_weight:
        λ of Eq. 7.  The paper recommends λ > 1 so the balance term
        dominates when neighbourhood signals tie; 1.1 is the default here
        (the original paper's experiments use values near 1).
    balance_slack:
        β defining the capacity ``C = β m / k`` that normalises the
        balance term.
    seed:
        Tie-break randomness.
    """

    name = "hdrf"

    def __init__(self, balance_weight: float = 1.1, balance_slack: float = 1.0,
                 seed=None):
        if balance_weight <= 0:
            raise ConfigurationError("balance_weight (lambda) must be positive")
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        self.balance_weight = balance_weight
        self.balance_slack = balance_slack
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        capacity = max(1.0, self.balance_slack * num_edges / k)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        replicas = np.zeros((num_vertices, k), dtype=bool)

        # θ only depends on the partial-degree counters, which the kernel
        # layer derives for the whole stream in one vectorized pass.
        edge_ids, src_arr, dst_arr = edge_stream_arrays(stream)
        d_u, d_v = streaming_partial_degrees(src_arr, dst_arr)
        thetas = d_u / (d_u + d_v)

        # The balance term only changes for the partition that last gained
        # an edge, so we maintain it incrementally.
        balance = np.full(k, self.balance_weight, dtype=np.float64)
        balance_step = self.balance_weight / capacity
        scores = np.empty(k, dtype=np.float64)
        g_other = np.empty(k, dtype=np.float64)
        tracer = get_tracer()
        trace_every = tracer.decision_sample_every if tracer.enabled else 0
        decision = 0
        for edge_id, src, dst, theta_u in zip_chunked(edge_ids, src_arr,
                                                      dst_arr, thetas):
            # Fused g(u,·) + g(v,·) + balance into preallocated buffers.
            np.multiply(replicas[src], 2.0 - theta_u, out=scores)
            np.multiply(replicas[dst], 1.0 + theta_u, out=g_other)
            scores += g_other                           # 1 + (1 - θ(·))
            scores += balance
            choice = argmax_tie_least_loaded(scores, sizes, rng)
            if trace_every:
                if decision % trace_every == 0:
                    tracer.point(
                        "sgp.decision", float(decision),
                        algorithm=self.name, edge=int(edge_id),
                        src=int(src), dst=int(dst), chosen=int(choice),
                        ties=int(np.count_nonzero(scores == scores.max())),
                        scores=[float(s) for s in scores],
                        state_size=int(np.count_nonzero(replicas)))
                decision += 1
            assignment[edge_id] = choice
            sizes[choice] += 1
            balance[choice] -= balance_step
            replicas[src, choice] = True
            replicas[dst, choice] = True
        return EdgePartition(k, assignment, algorithm=self.name)
