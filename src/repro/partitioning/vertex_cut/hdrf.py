"""HDRF (High-Degree Replicated First) — Petroni et al., CIKM 2015.

Eq. 7 of the paper: a degree-aware greedy vertex-cut that replicates hub
vertices and preserves low-degree locality, using only *partial* degree
counts (no pre-processing pass):

    θ(u) = d(u) / (d(u) + d(v)),   θ(v) = 1 - θ(u)
    g(v, P_i) = (1 + (1 - θ(v))) · 1_{P_i ∈ A(v)}
    argmax_i  g(v, P_i) + g(u, P_i) + λ (1 - |e(P_i)| / C)

A partition already hosting the *lower*-degree endpoint scores higher
(``1 - θ`` is larger for the smaller degree), so cuts land on hubs.  The
balance term with ``λ > 1`` keeps HDRF well-defined on BFS-ordered streams
where plain greedy collapses (Section 4.2.2).

The scoring loop lives in :class:`HdrfCore`, which consumes the stream
one chunk at a time against a pluggable degree state (exact counters or
a count-min sketch, ``state="exact"|"sketch"``) — the same core the
sharded out-of-core driver (:mod:`repro.ingest.shard`) runs per stream
segment with periodic load-vector rebasing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
)
from repro.partitioning.degree_state import (
    DEFAULT_SKETCH_DEPTH,
    DEFAULT_SKETCH_WIDTH,
    make_degree_state,
)
from repro.partitioning.kernels import (
    argmax_tie_least_loaded,
    iter_edge_chunks,
    zip_chunked,
)
from repro.rng import make_rng
from repro.telemetry import get_tracer


class HdrfCore:
    """Incremental HDRF scoring state, fed one edge chunk at a time.

    Owns everything the per-arrival argmax reads: the replica sets, the
    per-partition edge counts, the incrementally maintained balance term
    and the degree state.  ``rebase_sizes`` re-anchors the load vector on
    an externally synced snapshot, which is how the sharded ingest
    driver shares (stale) load information between stream segments.
    """

    algorithm = "hdrf"

    def __init__(self, num_partitions: int, num_vertices: int, *,
                 capacity: float, balance_weight: float, degrees,
                 rng: np.random.Generator | None, tracer=None) -> None:
        self.k = int(num_partitions)
        self.rng = rng
        self.degrees = degrees
        self.sizes = np.zeros(self.k, dtype=np.int64)
        self.replicas = np.zeros((int(num_vertices), self.k), dtype=bool)
        self.balance_weight = float(balance_weight)
        self.balance_step = float(balance_weight) / float(capacity)
        # The balance term only changes for the partition that last
        # gained an edge, so it is maintained incrementally.
        self.balance = np.full(self.k, self.balance_weight, dtype=np.float64)
        self._scores = np.empty(self.k, dtype=np.float64)
        self._g_other = np.empty(self.k, dtype=np.float64)
        self._tracer = tracer
        self._trace_every = (tracer.decision_sample_every
                             if tracer is not None and tracer.enabled else 0)
        self._decision = 0

    def rebase_sizes(self, global_sizes: np.ndarray) -> None:
        """Re-anchor loads (and the derived balance term) on a synced
        global snapshot — λ(1 - |e(P_i)|/C) recomputed from scratch."""
        np.copyto(self.sizes, global_sizes)
        np.multiply(self.sizes, -self.balance_step, out=self.balance)
        self.balance += self.balance_weight

    def state_nbytes(self) -> int:
        """Bytes of partitioner state held (the bounded-memory claim)."""
        return int(self.sizes.nbytes + self.replicas.nbytes +
                   self.balance.nbytes + self._scores.nbytes +
                   self._g_other.nbytes + self.degrees.nbytes)

    def process_chunk(self, edge_ids: np.ndarray, src_arr: np.ndarray,
                      dst_arr: np.ndarray, assignment: np.ndarray) -> None:
        """Place one chunk of arrivals, writing ``assignment[edge_id]``."""
        d_u, d_v = self.degrees.push(src_arr, dst_arr)
        thetas = d_u / (d_u + d_v)
        replicas = self.replicas
        sizes = self.sizes
        balance = self.balance
        scores = self._scores
        g_other = self._g_other
        trace_every = self._trace_every
        for edge_id, src, dst, theta_u in zip_chunked(edge_ids, src_arr,
                                                      dst_arr, thetas):
            # Fused g(u,·) + g(v,·) + balance into preallocated buffers.
            np.multiply(replicas[src], 2.0 - theta_u, out=scores)
            np.multiply(replicas[dst], 1.0 + theta_u, out=g_other)
            scores += g_other                           # 1 + (1 - θ(·))
            scores += balance
            choice = argmax_tie_least_loaded(scores, sizes, self.rng)
            if trace_every:
                if self._decision % trace_every == 0:
                    self._tracer.point(
                        "sgp.decision", float(self._decision),
                        algorithm=self.algorithm, edge=int(edge_id),
                        src=int(src), dst=int(dst), chosen=int(choice),
                        ties=int(np.count_nonzero(scores == scores.max())),
                        scores=[float(s) for s in scores],
                        state_size=int(np.count_nonzero(replicas)))
                self._decision += 1
            assignment[edge_id] = choice
            sizes[choice] += 1
            balance[choice] -= self.balance_step
            replicas[src, choice] = True
            replicas[dst, choice] = True


class HdrfPartitioner(EdgePartitioner):
    """HDRF vertex-cut streaming partitioner.

    Parameters
    ----------
    balance_weight:
        λ of Eq. 7.  The paper recommends λ > 1 so the balance term
        dominates when neighbourhood signals tie; 1.1 is the default here
        (the original paper's experiments use values near 1).
    balance_slack:
        β defining the capacity ``C = β m / k`` that normalises the
        balance term.
    seed:
        Tie-break randomness.
    state:
        ``"exact"`` (default, bit-identical to the original counters) or
        ``"sketch"`` — count-min degree estimates in fixed memory.
    sketch_width / sketch_depth:
        Count-min geometry when ``state="sketch"``.
    """

    name = "hdrf"

    def __init__(self, balance_weight: float = 1.1, balance_slack: float = 1.0,
                 seed=None, state: str = "exact",
                 sketch_width: int = DEFAULT_SKETCH_WIDTH,
                 sketch_depth: int = DEFAULT_SKETCH_DEPTH):
        if balance_weight <= 0:
            raise ConfigurationError("balance_weight (lambda) must be positive")
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        self.balance_weight = balance_weight
        self.balance_slack = balance_slack
        self.seed = seed
        self.state = state
        self.sketch_width = sketch_width
        self.sketch_depth = sketch_depth

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        capacity = max(1.0, self.balance_slack * num_edges / k)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        degrees = make_degree_state(self.state, num_vertices,
                                    sketch_width=self.sketch_width,
                                    sketch_depth=self.sketch_depth)
        core = HdrfCore(k, num_vertices, capacity=capacity,
                        balance_weight=self.balance_weight, degrees=degrees,
                        rng=make_rng(self.seed), tracer=get_tracer())
        for edge_ids, src_arr, dst_arr in iter_edge_chunks(stream):
            core.process_chunk(edge_ids, src_arr, dst_arr, assignment)
        return EdgePartition(k, assignment, algorithm=self.name)
