"""Hash-based vertex-cut partitioning (the paper's VCR).

"The simplest solution in this category is to partition the edges using a
hash function on some attributes of the endpoints, e.g. concatenation of
the vertex ids" (Section 4.2.2).  We hash the ``(src, dst)`` pair, so
repeated edges between the same endpoints co-locate, and balance is
perfect in expectation while the replication factor is the worst of the
vertex-cut family.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
    edge_stream_arrays,
)
from repro.rng import SeededHash, splitmix64


class HashEdgePartitioner(EdgePartitioner):
    """Vertex-cut hash partitioning over endpoint pairs (VCR)."""

    name = "vcr"

    def __init__(self, hash_seed: int = 0):
        self.hash_seed = hash_seed

    def _pair_key(self, src, dst):
        # Mix src first so (u, v) and (v, u) hash independently, like
        # concatenating the ids.
        return splitmix64(np.asarray(src, dtype=np.uint64), self.hash_seed) ^ \
            np.asarray(dst, dtype=np.uint64)

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        hasher = SeededHash(k, self.hash_seed + 1)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        # Stateless: bulk evaluation over the stream content is identical
        # to per-arrival processing.
        edge_ids, src, dst = edge_stream_arrays(stream)
        assignment[edge_ids] = hasher(self._pair_key(src, dst))
        return EdgePartition(k, assignment, algorithm=self.name)
