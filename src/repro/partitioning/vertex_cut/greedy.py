"""PowerGraph's greedy vertex-cut — Gonzalez et al., OSDI 2012.

The classic oblivious/coordinated greedy placement rules, driven by the
replica sets ``A(u)`` of the two endpoints of each arriving edge:

1. ``A(u) ∩ A(v) ≠ ∅``  → least-loaded common partition;
2. both non-empty but disjoint → least-loaded partition among the replica
   set of the *higher-degree* endpoint gains the new replica (PowerGraph
   places the edge with the endpoint that has more unassigned edges; we
   use current partial degree);
3. exactly one non-empty → least-loaded member of it;
4. both empty → least-loaded partition overall.

The paper (Section 4.2.2) notes this formulation is sensitive to stream
order — a BFS-ordered stream can collapse into a single partition because
rule 1 always finds the previously used partition — which HDRF's λ term
fixes.  The ablation bench measures exactly that contrast.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    argmin_with_ties,
    check_num_partitions,
    iter_edge_arrivals,
)
from repro.rng import make_rng


class GreedyVertexCutPartitioner(EdgePartitioner):
    """PowerGraph-style greedy vertex-cut streaming partitioner."""

    name = "greedy"

    def __init__(self, seed=None):
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        replicas = np.zeros((num_vertices, k), dtype=bool)
        partial_degree = np.zeros(num_vertices, dtype=np.int64)

        for edge_id, src, dst in iter_edge_arrivals(stream):
            partial_degree[src] += 1
            partial_degree[dst] += 1
            mask_u = replicas[src]
            mask_v = replicas[dst]
            common = mask_u & mask_v
            if common.any():
                candidates = np.flatnonzero(common)
            elif mask_u.any() and mask_v.any():
                # Cut through the higher-degree endpoint: the edge goes to
                # the replica set of the *lower*-degree one... PowerGraph's
                # heuristic keeps the endpoint with more remaining edges
                # intact, so we choose among the replicas of the endpoint
                # with the larger partial degree.
                chosen = mask_u if partial_degree[src] >= partial_degree[dst] else mask_v
                candidates = np.flatnonzero(chosen)
            elif mask_u.any():
                candidates = np.flatnonzero(mask_u)
            elif mask_v.any():
                candidates = np.flatnonzero(mask_v)
            else:
                candidates = np.arange(k)
            choice = candidates[argmin_with_ties(sizes[candidates], rng=rng)]
            assignment[edge_id] = choice
            sizes[choice] += 1
            replicas[src, choice] = True
            replicas[dst, choice] = True
        return EdgePartition(k, assignment, algorithm=self.name)
