"""PowerGraph's greedy vertex-cut — Gonzalez et al., OSDI 2012.

The classic oblivious/coordinated greedy placement rules, driven by the
replica sets ``A(u)`` of the two endpoints of each arriving edge:

1. ``A(u) ∩ A(v) ≠ ∅``  → least-loaded common partition;
2. both non-empty but disjoint → least-loaded partition among the replica
   set of the *higher-degree* endpoint gains the new replica (PowerGraph
   places the edge with the endpoint that has more unassigned edges; we
   use current partial degree);
3. exactly one non-empty → least-loaded member of it;
4. both empty → least-loaded partition overall.

The paper (Section 4.2.2) notes this formulation is sensitive to stream
order — a BFS-ordered stream can collapse into a single partition because
rule 1 always finds the previously used partition — which HDRF's λ term
fixes.  The ablation bench measures exactly that contrast.

Like HDRF, the scoring loop lives in a chunk-driven core
(:class:`GreedyCore`) over a pluggable degree state, so the same rules
run in-memory, out-of-core and sharded (:mod:`repro.ingest.shard`).
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
)
from repro.partitioning.degree_state import (
    DEFAULT_SKETCH_DEPTH,
    DEFAULT_SKETCH_WIDTH,
    make_degree_state,
)
from repro.partitioning.kernels import (
    argmin_with_ties_inline,
    iter_edge_chunks,
    zip_chunked,
)
from repro.rng import make_rng


class GreedyCore:
    """Incremental PowerGraph-greedy state, fed one edge chunk at a time."""

    algorithm = "greedy"

    def __init__(self, num_partitions: int, num_vertices: int, *,
                 degrees, rng: np.random.Generator | None) -> None:
        self.k = int(num_partitions)
        self.rng = rng
        self.degrees = degrees
        self.sizes = np.zeros(self.k, dtype=np.int64)
        self.replicas = np.zeros((int(num_vertices), self.k), dtype=bool)
        self._common = np.empty(self.k, dtype=bool)
        self._everyone = np.arange(self.k)

    def rebase_sizes(self, global_sizes: np.ndarray) -> None:
        """Re-anchor the least-loaded comparisons on a synced snapshot."""
        np.copyto(self.sizes, global_sizes)

    def state_nbytes(self) -> int:
        return int(self.sizes.nbytes + self.replicas.nbytes +
                   self._common.nbytes + self._everyone.nbytes +
                   self.degrees.nbytes)

    def process_chunk(self, edge_ids: np.ndarray, src_arr: np.ndarray,
                      dst_arr: np.ndarray, assignment: np.ndarray) -> None:
        d_u, d_v = self.degrees.push(src_arr, dst_arr)
        replicas = self.replicas
        sizes = self.sizes
        common = self._common
        everyone = self._everyone
        rng = self.rng
        for edge_id, src, dst, du, dv in zip_chunked(edge_ids, src_arr,
                                                     dst_arr, d_u, d_v):
            mask_u = replicas[src]
            mask_v = replicas[dst]
            np.logical_and(mask_u, mask_v, out=common)
            if common.any():
                candidates = np.flatnonzero(common)
            elif mask_u.any() and mask_v.any():
                # Cut through the higher-degree endpoint: the edge goes to
                # the replica set of the *lower*-degree one... PowerGraph's
                # heuristic keeps the endpoint with more remaining edges
                # intact, so we choose among the replicas of the endpoint
                # with the larger partial degree.
                chosen = mask_u if du >= dv else mask_v
                candidates = np.flatnonzero(chosen)
            elif mask_u.any():
                candidates = np.flatnonzero(mask_u)
            elif mask_v.any():
                candidates = np.flatnonzero(mask_v)
            else:
                candidates = everyone
            choice = candidates[argmin_with_ties_inline(sizes[candidates], rng)]
            assignment[edge_id] = choice
            sizes[choice] += 1
            replicas[src, choice] = True
            replicas[dst, choice] = True


class GreedyVertexCutPartitioner(EdgePartitioner):
    """PowerGraph-style greedy vertex-cut streaming partitioner."""

    name = "greedy"

    def __init__(self, seed=None, state: str = "exact",
                 sketch_width: int = DEFAULT_SKETCH_WIDTH,
                 sketch_depth: int = DEFAULT_SKETCH_DEPTH):
        self.seed = seed
        self.state = state
        self.sketch_width = sketch_width
        self.sketch_depth = sketch_depth

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        degrees = make_degree_state(self.state, num_vertices,
                                    sketch_width=self.sketch_width,
                                    sketch_depth=self.sketch_depth)
        core = GreedyCore(k, num_vertices, degrees=degrees,
                          rng=make_rng(self.seed))
        for edge_ids, src_arr, dst_arr in iter_edge_chunks(stream):
            core.process_chunk(edge_ids, src_arr, dst_arr, assignment)
        return EdgePartition(k, assignment, algorithm=self.name)
