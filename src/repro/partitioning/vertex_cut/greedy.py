"""PowerGraph's greedy vertex-cut — Gonzalez et al., OSDI 2012.

The classic oblivious/coordinated greedy placement rules, driven by the
replica sets ``A(u)`` of the two endpoints of each arriving edge:

1. ``A(u) ∩ A(v) ≠ ∅``  → least-loaded common partition;
2. both non-empty but disjoint → least-loaded partition among the replica
   set of the *higher-degree* endpoint gains the new replica (PowerGraph
   places the edge with the endpoint that has more unassigned edges; we
   use current partial degree);
3. exactly one non-empty → least-loaded member of it;
4. both empty → least-loaded partition overall.

The paper (Section 4.2.2) notes this formulation is sensitive to stream
order — a BFS-ordered stream can collapse into a single partition because
rule 1 always finds the previously used partition — which HDRF's λ term
fixes.  The ablation bench measures exactly that contrast.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.base import (
    EdgePartition,
    EdgePartitioner,
    check_num_partitions,
    edge_stream_arrays,
)
from repro.partitioning.kernels import (
    argmin_with_ties_inline,
    streaming_partial_degrees,
    zip_chunked,
)
from repro.rng import make_rng


class GreedyVertexCutPartitioner(EdgePartitioner):
    """PowerGraph-style greedy vertex-cut streaming partitioner."""

    name = "greedy"

    def __init__(self, seed=None):
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int, num_edges: int) -> EdgePartition:
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        replicas = np.zeros((num_vertices, k), dtype=bool)

        # Rule 2's degree comparison reads the partial-degree counters a
        # scalar loop would hold; the kernel layer derives them for the
        # whole stream vectorized, so the loop carries no counters.
        edge_ids, src_arr, dst_arr = edge_stream_arrays(stream)
        d_u, d_v = streaming_partial_degrees(src_arr, dst_arr)
        common = np.empty(k, dtype=bool)
        everyone = np.arange(k)
        for edge_id, src, dst, du, dv in zip_chunked(edge_ids, src_arr,
                                                     dst_arr, d_u, d_v):
            mask_u = replicas[src]
            mask_v = replicas[dst]
            np.logical_and(mask_u, mask_v, out=common)
            if common.any():
                candidates = np.flatnonzero(common)
            elif mask_u.any() and mask_v.any():
                # Cut through the higher-degree endpoint: the edge goes to
                # the replica set of the *lower*-degree one... PowerGraph's
                # heuristic keeps the endpoint with more remaining edges
                # intact, so we choose among the replicas of the endpoint
                # with the larger partial degree.
                chosen = mask_u if du >= dv else mask_v
                candidates = np.flatnonzero(chosen)
            elif mask_u.any():
                candidates = np.flatnonzero(mask_u)
            elif mask_v.any():
                candidates = np.flatnonzero(mask_v)
            else:
                candidates = everyone
            choice = candidates[argmin_with_ties_inline(sizes[candidates], rng)]
            assignment[edge_id] = choice
            sizes[choice] += 1
            replicas[src, choice] = True
            replicas[dst, choice] = True
        return EdgePartition(k, assignment, algorithm=self.name)
