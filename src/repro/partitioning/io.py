"""Partition serialisation: TSV and npz round trips.

Partitionings are expensive to compute (METIS on the paper's Twitter
graph took ~8 hours); real deployments persist them and load them at
bulk-load time, exactly as the paper does ("we perform METIS partitioning
as a pre-processing step prior to data loading, and load these partitions
into the system manually").  These helpers make that workflow concrete:

* TSV (``id<TAB>partition``) — the interchange format written by the
  ``repro-partition`` CLI tool, with a ``#``-comment header;
* npz — a fast binary cache.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError, PartitioningError
from repro.partitioning.base import EdgePartition, VertexPartition


def write_partition_tsv(partition, path, *, comment: str = "") -> None:
    """Write ``id<TAB>partition`` rows (vertex ids for edge-cut
    partitionings, edge ids for vertex-cut ones)."""
    with open(path, "w") as handle:
        kind = "vertex" if isinstance(partition, VertexPartition) else "edge"
        handle.write(f"# kind={kind} k={partition.num_partitions} "
                     f"algorithm={partition.algorithm}"
                     f"{' ' + comment if comment else ''}\n")
        for item, part in enumerate(partition.assignment.tolist()):
            handle.write(f"{item}\t{part}\n")


def read_partition_tsv(path):
    """Read a partitioning written by :func:`write_partition_tsv`.

    Returns a :class:`VertexPartition` or :class:`EdgePartition` according
    to the header's ``kind`` field.
    """
    kind = "vertex"
    k = None
    algorithm = "?"
    assignment: list[int] = []
    expected_id = 0
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    key, _, value = token.partition("=")
                    if key == "kind":
                        kind = value
                    elif key == "k":
                        k = int(value)
                    elif key == "algorithm":
                        algorithm = value
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise GraphFormatError(
                    f"{path}:{line_no}: expected 'id<TAB>partition'")
            item, part = int(parts[0]), int(parts[1])
            if item != expected_id:
                raise GraphFormatError(
                    f"{path}:{line_no}: ids must be dense and ordered "
                    f"(expected {expected_id}, got {item})")
            assignment.append(part)
            expected_id += 1
    if k is None:
        k = max(assignment) + 1 if assignment else 1
    array = np.asarray(assignment, dtype=np.int32)
    if kind == "vertex":
        return VertexPartition(k, array, algorithm=algorithm)
    if kind == "edge":
        return EdgePartition(k, array, algorithm=algorithm)
    raise GraphFormatError(f"{path}: unknown partition kind {kind!r}")


def save_partition_npz(partition, path) -> None:
    """Binary save of a partitioning (fast cache format)."""
    masters = getattr(partition, "masters", None)
    payload = {
        "kind": "vertex" if isinstance(partition, VertexPartition) else "edge",
        "k": partition.num_partitions,
        "assignment": partition.assignment,
        "algorithm": partition.algorithm,
    }
    if masters is not None:
        payload["masters"] = masters
    np.savez_compressed(path, **payload)


def load_partition_npz(path):
    """Load a partitioning written by :func:`save_partition_npz`."""
    data = np.load(path, allow_pickle=False)
    kind = str(data["kind"])
    k = int(data["k"])
    algorithm = str(data["algorithm"])
    if kind == "vertex":
        return VertexPartition(k, data["assignment"], algorithm=algorithm)
    if kind == "edge":
        masters = data["masters"] if "masters" in data else None
        return EdgePartition(k, data["assignment"], algorithm=algorithm,
                             masters=masters)
    raise PartitioningError(f"unknown partition kind {kind!r} in {path}")
