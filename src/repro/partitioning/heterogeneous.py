"""Heterogeneity-aware streaming partitioning (Appendix A).

The algorithms of Section 4 assume a homogeneous cluster.  Appendix A
surveys two extensions this module implements:

* **Capacity-aware LDG / FENNEL** (LeBeane et al. [29], Xu et al.'s BMI
  [44]): each machine ``i`` gets a capacity share ``s_i`` (proportional to
  its compute power); the balance terms of Eqs. 4/5 are evaluated against
  per-partition capacities ``C_i = β·s_i·|V|`` instead of a uniform
  ``β·|V|/k``, so faster machines receive proportionally more vertices
  while the neighbour-affinity objective is unchanged.

The uniform algorithms are the special case ``shares = [1/k] * k``, which
the test suite verifies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partitioning.base import (
    UNASSIGNED,
    VertexPartition,
    VertexPartitioner,
    argmax_with_ties,
    check_num_partitions,
)
from repro.rng import make_rng


def normalize_shares(shares, num_partitions: int) -> np.ndarray:
    """Validate capacity shares and normalise them to sum to 1."""
    arr = np.asarray(shares, dtype=np.float64)
    if arr.shape != (num_partitions,):
        raise ConfigurationError(
            f"expected {num_partitions} capacity shares, got {arr.shape}"
        )
    if (arr <= 0).any():
        raise ConfigurationError("capacity shares must be positive")
    return arr / arr.sum()


class HeterogeneousLdgPartitioner(VertexPartitioner):
    """LDG with per-machine capacity shares.

    Parameters
    ----------
    shares:
        Relative machine capacities, one per partition.  They need not be
        normalised.
    balance_slack:
        β, as in plain LDG.
    """

    name = "ldg-het"

    def __init__(self, shares, balance_slack: float = 1.0, seed=None):
        if balance_slack < 1.0:
            raise ConfigurationError("balance_slack (beta) must be >= 1")
        self.shares = np.asarray(shares, dtype=np.float64)
        self.balance_slack = balance_slack
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        shares = normalize_shares(self.shares, k)
        rng = make_rng(self.seed)
        capacities = np.maximum(
            np.ceil(self.balance_slack * shares * num_vertices), 1.0)
        assignment = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)

        for vertex, neighbors in stream:
            placed = assignment[neighbors]
            placed = placed[placed != UNASSIGNED]
            if placed.size:
                counts = np.bincount(placed, minlength=k).astype(np.float64)
            else:
                counts = np.zeros(k, dtype=np.float64)
            scores = counts * (1.0 - sizes / capacities)
            # Tie-break toward the emptiest partition *relative to its
            # capacity*, so big machines fill first proportionally.
            fill = sizes / capacities
            target = argmax_with_ties(scores, tie_break=fill, rng=rng)
            assignment[vertex] = target
            sizes[target] += 1
        return VertexPartition(k, assignment, algorithm=self.name)


class HeterogeneousFennelPartitioner(VertexPartitioner):
    """FENNEL with per-machine capacity shares.

    The additive load penalty of Eq. 5 is evaluated on the partition's
    *fill fraction* ``|P_i| / (k·s_i)`` so a machine with twice the share
    pays the penalty of half the vertices.
    """

    name = "fennel-het"

    def __init__(self, shares, gamma: float = 1.5, alpha: float | None = None,
                 load_cap: float = 1.1, seed=None):
        if gamma <= 1.0:
            raise ConfigurationError("gamma must be > 1")
        if load_cap < 1.0:
            raise ConfigurationError("load_cap (nu) must be >= 1")
        self.shares = np.asarray(shares, dtype=np.float64)
        self.gamma = gamma
        self.alpha = alpha
        self.load_cap = load_cap
        self.seed = seed

    def partition_stream(self, stream, num_partitions: int, *,
                         num_vertices: int,
                         num_edges: int | None = None) -> VertexPartition:
        k = check_num_partitions(num_partitions)
        shares = normalize_shares(self.shares, k)
        rng = make_rng(self.seed)
        if num_edges is None:
            graph = getattr(stream, "graph", None)
            num_edges = graph.num_edges if graph is not None else None
        if self.alpha is not None:
            alpha = self.alpha
        elif num_edges is not None:
            alpha = float(np.sqrt(k) * num_edges / max(num_vertices, 1) ** 1.5)
        else:
            raise ConfigurationError(
                "heterogeneous FENNEL needs num_edges or an explicit alpha")
        capacities = np.maximum(self.load_cap * shares * num_vertices, 1.0)
        # Effective size for the penalty: scale each partition's count to
        # what it would be on a uniform cluster.
        scale = 1.0 / (k * shares)
        assignment = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)

        for vertex, neighbors in stream:
            placed = assignment[neighbors]
            placed = placed[placed != UNASSIGNED]
            if placed.size:
                counts = np.bincount(placed, minlength=k).astype(np.float64)
            else:
                counts = np.zeros(k, dtype=np.float64)
            effective = sizes * scale
            scores = counts - alpha * self.gamma * effective ** (self.gamma - 1.0)
            scores[sizes >= capacities] = -np.inf
            target = argmax_with_ties(scores, tie_break=sizes / capacities,
                                      rng=rng)
            assignment[vertex] = target
            sizes[target] += 1
        return VertexPartition(k, assignment, algorithm=self.name)
