"""TAPER-style query-aware partition enhancement (Firth & Missier, 2017).

Table 1 of the paper lists TAPER as the workload-aware edge-cut method:
it "continuously monitors incoming subgraph matching queries to discover
frequent patterns and uses an LDG-like heuristic that reduces the
possibility of inter-partition traversals".  Its cost metric is not the
edge-cut ratio but the **inter-partition traversal** count: cut edges
weighted by how often queries actually traverse them.

This module implements that idea on top of this repo's query machinery:

1. :func:`traversal_weights_from_plans` turns recorded query plans into
   per-edge traversal weights (how often each edge was walked);
2. :func:`inter_partition_traversals` is TAPER's objective;
3. :func:`taper_refine` migrates boundary vertices, LDG-like, to the
   partition holding the largest traversal weight, under a balance
   constraint — improving the objective monotonically.

Together with :func:`repro.partitioning.workload_aware.
workload_aware_partition` this covers both workload-aware strategies the
paper's Section 6.3.3 calls for.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, PartitioningError
from repro.graph.digraph import Graph
from repro.partitioning.base import VertexPartition
from repro.rng import make_rng


def traversal_weights_from_plans(graph: Graph, plans) -> np.ndarray:
    """Per-edge traversal counts implied by a set of query plans.

    A plan's phase ``i`` reads a vertex set ``A`` and phase ``i+1`` reads
    ``B``: the traversal walked every edge between a vertex of ``A`` and a
    vertex of ``B`` (in either direction).  Each such edge's weight grows
    by one per plan.
    """
    weights = np.zeros(graph.num_edges, dtype=np.float64)
    src, dst = graph.src, graph.dst
    for plan in plans:
        for phase_a, phase_b in zip(plan.phases, plan.phases[1:]):
            set_a = set(phase_a.tolist())
            set_b = set(phase_b.tolist())
            # Walk the smaller side's incident edges.
            anchor, other = (set_a, set_b) if len(set_a) <= len(set_b) \
                else (set_b, set_a)
            for u in anchor:
                for eid in graph.out_edge_ids(int(u)).tolist():
                    if int(dst[eid]) in other:
                        weights[eid] += 1.0
                for eid in graph.in_edge_ids(int(u)).tolist():
                    if int(src[eid]) in other:
                        weights[eid] += 1.0
    return weights


def inter_partition_traversals(graph: Graph, partition: VertexPartition,
                               edge_weights) -> float:
    """TAPER's objective: traversal weight crossing partition boundaries."""
    weights = np.asarray(edge_weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ConfigurationError("edge_weights must have one entry per edge")
    assignment = partition.assignment
    cut = assignment[graph.src] != assignment[graph.dst]
    return float(weights[cut].sum())


def taper_refine(
    graph: Graph,
    partition: VertexPartition,
    edge_weights,
    *,
    balance_slack: float = 1.1,
    max_passes: int = 8,
    seed=None,
) -> VertexPartition:
    """Traversal-aware boundary migration (the TAPER enhancement step).

    Like Hermes-style refinement, but gains are traversal weights rather
    than raw edge counts: a vertex moves to the partition whose queries
    cross to it most often.  Returns a new partition; the objective never
    worsens.
    """
    weights = np.asarray(edge_weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ConfigurationError("edge_weights must have one entry per edge")
    if (weights < 0).any():
        raise ConfigurationError("edge_weights must be non-negative")
    if partition.num_vertices != graph.num_vertices:
        raise PartitioningError("partition does not cover the graph")
    if not partition.is_complete():
        raise PartitioningError("cannot refine an incomplete partitioning")
    if balance_slack < 1.0:
        raise ConfigurationError("balance_slack (beta) must be >= 1")

    rng = make_rng(seed)
    k = partition.num_partitions
    assignment = partition.assignment.copy()
    sizes = partition.sizes().astype(np.int64)
    capacity = max(1.0, balance_slack * graph.num_vertices / k)
    src, dst = graph.src, graph.dst

    for _pass in range(max_passes):
        # Boundary vertices with traversal weight at stake.
        cross = (assignment[src] != assignment[dst]) & (weights > 0)
        if not cross.any():
            break
        hot = np.unique(np.concatenate([src[cross], dst[cross]]))
        moved = 0
        for u in rng.permutation(hot).tolist():
            current = assignment[u]
            gain_to = np.zeros(k, dtype=np.float64)
            out_ids = graph.out_edge_ids(u)
            in_ids = graph.in_edge_ids(u)
            np.add.at(gain_to, assignment[dst[out_ids]], weights[out_ids])
            np.add.at(gain_to, assignment[src[in_ids]], weights[in_ids])
            internal = gain_to[current]
            gain_to -= internal
            gain_to[current] = 0.0
            feasible = sizes + 1 <= capacity
            feasible[current] = False
            candidate = np.where(feasible, gain_to, -np.inf)
            best = int(np.argmax(candidate))
            if candidate[best] > 0:
                assignment[u] = best
                sizes[current] -= 1
                sizes[best] += 1
                moved += 1
        if moved == 0:
            break
    return VertexPartition(k, assignment,
                           algorithm=f"{partition.algorithm}+taper")
