"""Pre-kernel reference implementations of the streaming hot loops.

These are verbatim snapshots of the scalar, allocate-per-arrival
implementations that shipped before :mod:`repro.partitioning.kernels`
existed (minus decision tracing, which never affects placement).  They
serve two purposes:

* the **golden-digest equivalence tests** assert that the kernelized
  partitioners produce *bit-identical* assignments to these loops for
  every (algorithm, seed, stream order) pair in the test matrix — the
  port is a pure performance change, never a behavioural one;
* ``benchmarks/bench_partitioning.py`` times them as the "before" side
  of the before/after speedup it records in ``BENCH_partitioning.json``.

Nothing else should import this module; production code paths use the
kernelized classes registered in :mod:`repro.partitioning.registry`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.partitioning.base import (
    UNASSIGNED,
    EdgePartition,
    VertexPartition,
    argmax_with_ties,
    argmin_with_ties,
    check_num_partitions,
    edge_stream_arrays,
    iter_edge_arrivals,
)
from repro.rng import SeededHash, make_rng


class ReferenceLdg:
    """Scalar LDG loop (fresh bincount + score array per arrival)."""

    name = "ldg"

    def __init__(self, balance_slack: float = 1.0, seed=None):
        self.balance_slack = balance_slack
        self.seed = seed

    def partition(self, graph, num_partitions, *, order="random", seed=None):
        from repro.graph.stream import VertexStream
        stream = VertexStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices)

    def partition_stream(self, stream, num_partitions, *, num_vertices):
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        capacity = max(1.0, math.ceil(self.balance_slack * num_vertices / k))
        assignment = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        for vertex, neighbors in stream:
            placed = assignment[neighbors]
            placed = placed[placed != UNASSIGNED]
            if placed.size:
                counts = np.bincount(placed, minlength=k)
            else:
                counts = np.zeros(k, dtype=np.int64)
            scores = counts * (1.0 - sizes / capacity)
            target = argmax_with_ties(scores, tie_break=sizes, rng=rng)
            assignment[vertex] = target
            sizes[target] += 1
        return VertexPartition(k, assignment, algorithm=self.name)


class ReferenceFennel:
    """Scalar FENNEL loop (per-arrival vector power + capacity mask)."""

    name = "fennel"

    def __init__(self, gamma: float = 1.5, alpha: float | None = None,
                 load_cap: float = 1.1, seed=None):
        self.gamma = gamma
        self.alpha = alpha
        self.load_cap = load_cap
        self.seed = seed

    def _resolve_alpha(self, k, num_vertices, num_edges):
        if self.alpha is not None:
            return self.alpha
        n = max(num_vertices, 1)
        return float(np.sqrt(k) * num_edges / n ** 1.5)

    def partition(self, graph, num_partitions, *, order="random", seed=None):
        from repro.graph.stream import VertexStream
        stream = VertexStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices)

    def partition_stream(self, stream, num_partitions, *, num_vertices,
                         num_edges=None):
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        if num_edges is None:
            graph = getattr(stream, "graph", None)
            num_edges = graph.num_edges if graph is not None else None
        alpha = self._resolve_alpha(k, num_vertices, num_edges)
        capacity = max(1.0, self.load_cap * num_vertices / k)
        assignment = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        for vertex, neighbors in stream:
            placed = assignment[neighbors]
            placed = placed[placed != UNASSIGNED]
            if placed.size:
                counts = np.bincount(placed, minlength=k).astype(np.float64)
            else:
                counts = np.zeros(k, dtype=np.float64)
            scores = counts - alpha * self.gamma * sizes ** (self.gamma - 1.0)
            scores[sizes >= capacity] = -np.inf
            target = argmax_with_ties(scores, tie_break=sizes, rng=rng)
            assignment[vertex] = target
            sizes[target] += 1
        return VertexPartition(k, assignment, algorithm=self.name)


class _ReferenceRestreamingBase:
    """Scalar multi-pass restreaming driver."""

    name = "?"

    def __init__(self, num_passes: int = 5, seed=None):
        self.num_passes = num_passes
        self.seed = seed

    def _score(self, counts, sizes):
        raise NotImplementedError

    def _prepare(self, k, num_vertices, num_edges):
        pass

    def _begin_pass(self, pass_index):
        pass

    def partition(self, graph, num_partitions, *, order="random", seed=None):
        from repro.graph.stream import VertexStream
        stream = VertexStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices)

    def partition_stream(self, stream, num_partitions, *, num_vertices,
                         num_edges=None):
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        if num_edges is None:
            graph = getattr(stream, "graph", None)
            num_edges = graph.num_edges if graph is not None else None
        self._prepare(k, num_vertices, num_edges)

        previous = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        current = previous
        for pass_index in range(self.num_passes):
            self._begin_pass(pass_index)
            current = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
            sizes = np.zeros(k, dtype=np.int64)
            for vertex, neighbors in stream:
                fresh = current[neighbors]
                stale = previous[neighbors]
                view = np.where(fresh != UNASSIGNED, fresh, stale)
                view = view[view != UNASSIGNED]
                if view.size:
                    counts = np.bincount(view, minlength=k).astype(np.float64)
                else:
                    counts = np.zeros(k, dtype=np.float64)
                scores = self._score(counts, sizes)
                target = argmax_with_ties(scores, tie_break=sizes, rng=rng)
                current[vertex] = target
                sizes[target] += 1
            previous = current
        return VertexPartition(k, current, algorithm=self.name)


class ReferenceRestreamingLdg(_ReferenceRestreamingBase):
    name = "re-ldg"

    def __init__(self, num_passes: int = 5, balance_slack: float = 1.0,
                 seed=None):
        super().__init__(num_passes=num_passes, seed=seed)
        self.balance_slack = balance_slack
        self._capacity = 1.0

    def _prepare(self, k, num_vertices, num_edges):
        self._capacity = max(1.0, math.ceil(self.balance_slack
                                            * num_vertices / k))

    def _score(self, counts, sizes):
        return counts * (1.0 - sizes / self._capacity)


class ReferenceRestreamingFennel(_ReferenceRestreamingBase):
    name = "re-fennel"

    def __init__(self, num_passes: int = 5, gamma: float = 1.5,
                 alpha: float | None = None, load_cap: float = 1.1,
                 alpha_growth: float = 1.5, seed=None):
        super().__init__(num_passes=num_passes, seed=seed)
        # Parameter template only (never streams); seeded anyway so the
        # seed lane is complete end to end.
        self._template = ReferenceFennel(gamma=gamma, alpha=alpha,
                                         load_cap=load_cap, seed=seed)
        self.alpha_growth = alpha_growth
        self._alpha = 0.0
        self._pass_alpha = 0.0
        self._capacity = 1.0
        self._gamma = gamma

    def _prepare(self, k, num_vertices, num_edges):
        self._alpha = self._template._resolve_alpha(k, num_vertices, num_edges)
        self._capacity = max(1.0, self._template.load_cap * num_vertices / k)
        self._pass_alpha = self._alpha

    def _begin_pass(self, pass_index):
        self._pass_alpha = self._alpha * (self.alpha_growth ** pass_index)

    def _score(self, counts, sizes):
        scores = counts - self._pass_alpha * self._gamma * sizes ** (self._gamma - 1.0)
        scores[sizes >= self._capacity] = -np.inf
        return scores


class ReferenceHdrf:
    """Scalar HDRF loop (per-edge degree updates + score allocations)."""

    name = "hdrf"

    def __init__(self, balance_weight: float = 1.1,
                 balance_slack: float = 1.0, seed=None):
        self.balance_weight = balance_weight
        self.balance_slack = balance_slack
        self.seed = seed

    def partition(self, graph, num_partitions, *, order="random", seed=None):
        from repro.graph.stream import EdgeStream
        stream = EdgeStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices,
                                     num_edges=graph.num_edges)

    def partition_stream(self, stream, num_partitions, *, num_vertices,
                         num_edges):
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        capacity = max(1.0, self.balance_slack * num_edges / k)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        replicas = np.zeros((num_vertices, k), dtype=bool)
        partial_degree = np.zeros(num_vertices, dtype=np.int64)
        balance = np.full(k, self.balance_weight, dtype=np.float64)
        balance_step = self.balance_weight / capacity
        for edge_id, src, dst in iter_edge_arrivals(stream):
            partial_degree[src] += 1
            partial_degree[dst] += 1
            d_u = partial_degree[src]
            d_v = partial_degree[dst]
            theta_u = d_u / (d_u + d_v)
            g_u = (2.0 - theta_u) * replicas[src]
            g_v = (1.0 + theta_u) * replicas[dst]
            scores = g_u + g_v + balance
            choice = argmax_with_ties(scores, tie_break=sizes, rng=rng)
            assignment[edge_id] = choice
            sizes[choice] += 1
            balance[choice] -= balance_step
            replicas[src, choice] = True
            replicas[dst, choice] = True
        return EdgePartition(k, assignment, algorithm=self.name)


class ReferenceDbh:
    """Scalar DBH loop (partial mode streams one edge at a time)."""

    name = "dbh"

    def __init__(self, hash_seed: int = 0, degrees: str = "exact"):
        self.hash_seed = hash_seed
        self.degrees = degrees

    def partition(self, graph, num_partitions, *, order="random", seed=None):
        from repro.graph.stream import EdgeStream
        stream = EdgeStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices,
                                     num_edges=graph.num_edges)

    def partition_stream(self, stream, num_partitions, *, num_vertices,
                         num_edges):
        k = check_num_partitions(num_partitions)
        hasher = SeededHash(k, self.hash_seed)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        if self.degrees == "exact":
            graph = stream.graph
            degree = graph.degree
            edge_ids, src, dst = edge_stream_arrays(stream)
            lower = np.where(degree[src] < degree[dst], src, dst)
            assignment[edge_ids] = hasher(lower)
        else:
            partial = np.zeros(num_vertices, dtype=np.int64)
            for edge_id, src, dst in iter_edge_arrivals(stream):
                partial[src] += 1
                partial[dst] += 1
                lower = src if partial[src] < partial[dst] else dst
                assignment[edge_id] = hasher(lower)
        return EdgePartition(k, assignment, algorithm=self.name)


class ReferenceGreedy:
    """Scalar PowerGraph-greedy loop."""

    name = "greedy"

    def __init__(self, seed=None):
        self.seed = seed

    def partition(self, graph, num_partitions, *, order="random", seed=None):
        from repro.graph.stream import EdgeStream
        stream = EdgeStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices,
                                     num_edges=graph.num_edges)

    def partition_stream(self, stream, num_partitions, *, num_vertices,
                         num_edges):
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        assignment = np.full(num_edges, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        replicas = np.zeros((num_vertices, k), dtype=bool)
        partial_degree = np.zeros(num_vertices, dtype=np.int64)
        for edge_id, src, dst in iter_edge_arrivals(stream):
            partial_degree[src] += 1
            partial_degree[dst] += 1
            mask_u = replicas[src]
            mask_v = replicas[dst]
            common = mask_u & mask_v
            if common.any():
                candidates = np.flatnonzero(common)
            elif mask_u.any() and mask_v.any():
                chosen = (mask_u if partial_degree[src] >= partial_degree[dst]
                          else mask_v)
                candidates = np.flatnonzero(chosen)
            elif mask_u.any():
                candidates = np.flatnonzero(mask_u)
            elif mask_v.any():
                candidates = np.flatnonzero(mask_v)
            else:
                candidates = np.arange(k)
            choice = candidates[argmin_with_ties(sizes[candidates], rng=rng)]
            assignment[edge_id] = choice
            sizes[choice] += 1
            replicas[src, choice] = True
            replicas[dst, choice] = True
        return EdgePartition(k, assignment, algorithm=self.name)


class ReferenceGrid:
    """Scalar grid-constrained loop (full-stream zip over Python lists)."""

    name = "grid"

    def __init__(self, hash_seed: int = 0, seed=None):
        self.hash_seed = hash_seed
        self.seed = seed

    def partition(self, graph, num_partitions, *, order="random", seed=None):
        from repro.graph.stream import EdgeStream
        stream = EdgeStream(graph, order=order, seed=seed)
        return self.partition_stream(stream, num_partitions,
                                     num_vertices=graph.num_vertices,
                                     num_edges=graph.num_edges)

    def partition_stream(self, stream, num_partitions, *, num_vertices,
                         num_edges):
        from repro.partitioning.vertex_cut.grid import constrained_sets
        k = check_num_partitions(num_partitions)
        rng = make_rng(self.seed)
        hasher = SeededHash(k, self.hash_seed)
        sets = constrained_sets(k)
        candidate_table = [[None] * k for _ in range(k)]
        for i in range(k):
            for j in range(k):
                inter = np.intersect1d(sets[i], sets[j], assume_unique=True)
                if inter.size == 0:
                    inter = np.union1d(sets[i], sets[j])
                candidate_table[i][j] = inter
        assignment = np.full(num_edges, -1, dtype=np.int32)
        sizes = np.zeros(k, dtype=np.int64)
        edge_ids, src_arr, dst_arr = edge_stream_arrays(stream)
        anchors_u = hasher(src_arr)
        anchors_v = hasher(dst_arr)
        for edge_id, anchor_u, anchor_v in zip(edge_ids.tolist(),
                                               anchors_u.tolist(),
                                               anchors_v.tolist()):
            candidates = candidate_table[anchor_u][anchor_v]
            choice = candidates[argmin_with_ties(sizes[candidates], rng=rng)]
            assignment[edge_id] = choice
            sizes[choice] += 1
        return EdgePartition(k, assignment, algorithm=self.name)


#: Reference implementation per registry name, for the equivalence tests
#: and the before/after benchmark.
REFERENCE_FACTORIES = {
    "ldg": ReferenceLdg,
    "fennel": ReferenceFennel,
    "re-ldg": ReferenceRestreamingLdg,
    "re-fennel": ReferenceRestreamingFennel,
    "hdrf": ReferenceHdrf,
    "dbh": ReferenceDbh,
    "greedy": ReferenceGreedy,
    "grid": ReferenceGrid,
}
