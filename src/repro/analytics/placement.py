"""Distributed placement derived from a partitioning.

PowerLyra (and every GAS system) materialises a partitioning as:

* each **edge** lives on exactly one machine;
* each **vertex** has one **master** replica and zero or more **mirrors**
  — one on every other machine that stores an incident edge.

:class:`Placement` computes that geometry once, for *any* partitioning
produced by this package:

* an :class:`~repro.partitioning.base.EdgePartition` is used directly
  (native vertex-cut / hybrid-cut);
* a :class:`~repro.partitioning.base.VertexPartition` is first converted
  by the Appendix-B rule (out-edges follow their source, the edge-cut
  partition is the master) via
  :func:`repro.partitioning.conversion.edge_cut_to_edge_partition`.

All communication accounting in :mod:`repro.analytics.engine` is a pure
function of this geometry, which is the paper's central modelling claim
(replication factor ⇔ network traffic).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import Graph
from repro.partitioning.base import EdgePartition, VertexPartition
from repro.partitioning.conversion import edge_cut_to_edge_partition
from repro.rng import SeededHash


class Placement:
    """Master/mirror geometry of a partitioned graph.

    Attributes
    ----------
    edge_parts:
        Partition of every edge, aligned with the graph's edge ids.
    master:
        Master partition of every vertex.
    mirror_counts_all:
        ``|A(v) ∪ {master}| - 1`` — mirrors across *all* incident edges.
    mirror_counts_out:
        Mirrors among partitions holding v's *out*-edges only — what a
        changed vertex must update for uni-directional (gather-in /
        scatter-out) workloads such as PageRank and SSSP.
    """

    def __init__(self, graph: Graph, partition, *, master_seed: int = 7):
        if isinstance(partition, VertexPartition):
            edge_partition = edge_cut_to_edge_partition(graph, partition)
        elif isinstance(partition, EdgePartition):
            edge_partition = partition
        else:
            raise PartitioningError(
                f"unsupported partition type {type(partition).__name__}"
            )
        if not edge_partition.is_complete():
            raise PartitioningError("placement requires a complete partitioning")
        if edge_partition.num_edges != graph.num_edges:
            raise PartitioningError("partition does not cover the graph's edges")

        self.graph = graph
        self.algorithm = edge_partition.algorithm
        self.num_partitions = edge_partition.num_partitions
        self.edge_parts = edge_partition.assignment.astype(np.int64)
        #: Whether the hosting engine performs locality-aware mirror sync.
        #: Placements with explicit masters come from PowerLyra-style
        #: differentiated engines (the Appendix-B edge-cut emulation and
        #: the hybrid-cut engine), which only refresh mirrors that will
        #: read the value; raw vertex-cut placements run on a
        #: PowerGraph-style engine that updates every mirror after apply.
        self.locality_aware = edge_partition.masters is not None

        k = self.num_partitions
        n = graph.num_vertices

        # Distinct (vertex, partition) incidence pairs, both endpoints.
        all_pairs = np.unique(np.concatenate([
            graph.src * k + self.edge_parts,
            graph.dst * k + self.edge_parts,
        ]))
        out_pairs = np.unique(graph.src * k + self.edge_parts)

        incidence_counts = np.bincount(all_pairs // k, minlength=n)

        # Masters: explicit (hybrid / converted edge-cut) or balanced
        # placement among the partitions already hosting the vertex.
        if edge_partition.masters is not None:
            self.master = edge_partition.masters.astype(np.int64)
        else:
            self.master = self._balanced_masters(all_pairs, k, n)
        # Isolated vertices get a deterministic hash master.
        isolated = incidence_counts == 0
        if isolated.any():
            hasher = SeededHash(k, master_seed)
            self.master = self.master.copy()
            self.master[isolated] = hasher(np.flatnonzero(isolated))

        self.mirror_counts_all = self._mirror_counts(all_pairs, k, n)
        self.mirror_counts_out = self._mirror_counts(out_pairs, k, n)
        #: |A(v)| including the master replica; 1 for isolated vertices.
        self.replica_counts = self.mirror_counts_all + 1
        #: Sorted (vertex * k + partition) incidence pairs, kept for the
        #: engine's per-iteration mirror-update accounting.
        self.all_pairs = all_pairs
        self.out_pairs = out_pairs

    def _balanced_masters(self, all_pairs: np.ndarray, k: int,
                          n: int) -> np.ndarray:
        """Balanced master placement among each vertex's partitions.

        A master is a communication hub: it receives one gather partial
        from (and sends one update to) every mirror.  Placing the masters
        of high-replication vertices greedily on the least-loaded member
        of ``A(v)`` spreads that traffic — the "balanced master
        assignment" optimisation of GAS systems.  (At the paper's scale
        hash placement achieves the same in expectation, because tens of
        thousands of hub masters average out over 128 machines; at this
        repo's scale the greedy spread stands in for that averaging.)
        """
        vertices = all_pairs // k          # sorted ascending by vertex
        parts = all_pairs % k
        counts = np.bincount(vertices, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        master = np.zeros(n, dtype=np.int64)
        load = np.zeros(k, dtype=np.int64)
        # Heaviest-replicated vertices first; |A(v)| <= 1 vertices have no
        # choice and no mirror traffic, so only multi-partition ones are
        # balanced.
        for v in np.argsort(-counts, kind="stable").tolist():
            weight = counts[v]
            lo, hi = indptr[v], indptr[v + 1]
            if hi == lo:
                continue                  # isolated; hashed later
            if weight == 1:
                master[v] = parts[lo]
                continue
            candidates = parts[lo:hi]
            choice = candidates[np.argmin(load[candidates])]
            master[v] = choice
            load[choice] += weight - 1    # mirrors generate the traffic
        return master

    def _mirror_counts(self, pairs: np.ndarray, k: int, n: int) -> np.ndarray:
        """#partitions in *pairs* per vertex, excluding the master."""
        vertices = pairs // k
        parts = pairs % k
        counts = np.bincount(vertices, minlength=n)
        master_hits = np.bincount(vertices[parts == self.master[vertices]],
                                  minlength=n)
        return counts - master_hits

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def replication_factor(self, include_isolated: bool = False) -> float:
        """Average replicas per vertex (master + mirrors)."""
        counts = self.replica_counts
        if not include_isolated:
            active = self.graph.degree > 0
            counts = counts[active]
        return float(counts.mean()) if counts.size else 0.0

    def edges_per_partition(self) -> np.ndarray:
        """Stored edges per machine (the vertex-cut load w(P_i))."""
        return np.bincount(self.edge_parts, minlength=self.num_partitions)

    def masters_per_partition(self) -> np.ndarray:
        """Master vertices per machine (the edge-cut load w(P_i))."""
        return np.bincount(self.master, minlength=self.num_partitions)

    def replicas_per_partition(self) -> np.ndarray:
        """Vertex replicas per machine — the memory-footprint indicator."""
        k = self.num_partitions
        pairs = np.unique(np.concatenate([
            self.graph.src * k + self.edge_parts,
            self.graph.dst * k + self.edge_parts,
            np.arange(self.graph.num_vertices, dtype=np.int64) * k + self.master,
        ]))
        return np.bincount(pairs % k, minlength=k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Placement(algorithm={self.algorithm!r}, "
                f"k={self.num_partitions}, rf={self.replication_factor():.2f})")
