"""PowerLyra-style distributed analytics engine simulator."""

from repro.analytics.cost import DEFAULT_COST_MODEL, CostModel
from repro.analytics.engine import GasEngine, run_workload
from repro.analytics.placement import Placement
from repro.analytics.result import AnalyticsRun, IterationStats
from repro.analytics.workloads.base import IterationActivity, Workload
from repro.analytics.workloads.bfs import BreadthFirstSearch
from repro.analytics.workloads.kcore import KCore
from repro.analytics.workloads.label_propagation import LabelPropagation
from repro.analytics.workloads.pagerank import PageRank
from repro.analytics.workloads.sssp import SingleSourceShortestPath
from repro.analytics.workloads.wcc import WeaklyConnectedComponents

WORKLOADS = {
    "pagerank": PageRank,
    "wcc": WeaklyConnectedComponents,
    "sssp": SingleSourceShortestPath,
    "bfs": BreadthFirstSearch,
    "kcore": KCore,
    "label-propagation": LabelPropagation,
}

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "GasEngine",
    "run_workload",
    "Placement",
    "AnalyticsRun",
    "IterationStats",
    "Workload",
    "IterationActivity",
    "PageRank",
    "WeaklyConnectedComponents",
    "SingleSourceShortestPath",
    "BreadthFirstSearch",
    "KCore",
    "LabelPropagation",
    "WORKLOADS",
]
