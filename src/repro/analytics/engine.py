"""Synchronous GAS engine with exact communication accounting.

This is the repo's stand-in for PowerLyra's analytics engine.  Each
super-step of a workload is executed on the full graph (the numerical
result of a BSP vertex program is independent of placement), while the
*distributed* quantities — who stores which edge, which replicas exchange
which messages — are derived exactly from the
:class:`~repro.analytics.placement.Placement`:

**Gather** — partial aggregates are computed where edges live.  For every
receiving vertex ``v``, each partition holding at least one active
in-coming edge of ``v`` produces one partial-aggregate message to ``v``'s
master (none if that partition *is* the master).  This is PowerGraph's
mirror→master sync, and — per Appendix B — also the cost of edge-cut
systems with sender-side aggregation, because the Appendix-B placement
stores out-edges at their source's master.

**Apply** — masters combine partials and update the vertex value.

**Scatter/mirror update** — every vertex whose value changed must refresh
the replicas that will read it next step: the partitions holding its
out-edges for uni-directional workloads (PageRank, SSSP), all its
partitions for bi-directional ones (WCC).  For the Appendix-B edge-cut
placement and a uni-directional workload this count is exactly zero —
out-edges are master-local — which is why "edge-cut partitioning has less
network communication for the same replication factor ... for PageRank"
(Section 6.2.1): the behaviour *emerges from the geometry* here rather
than being special-cased.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.cost import DEFAULT_COST_MODEL, CostModel
from repro.analytics.placement import Placement
from repro.analytics.result import AnalyticsRun, IterationStats, RecoveryEvent
from repro.analytics.workloads.base import Workload
from repro.errors import FaultInjectionError, SimulationError
from repro.faults import NO_FAULTS, FaultSchedule
from repro.graph.digraph import Graph
from repro.partitioning.base import VertexPartition
from repro.partitioning.dynamic import reassign_lost_vertices
from repro.telemetry import get_tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import SimClock, Tracer


class GasEngine:
    """Synchronous (BSP) Gather-Apply-Scatter execution simulator.

    Parameters
    ----------
    cost_model:
        Converts counts into seconds/bytes; defaults shared by the whole
        experiment harness so runs are comparable.
    tracer:
        Span tracer for the run (``gas.*`` spans on the simulated clock);
        ``None`` resolves the global :func:`repro.telemetry.get_tracer`
        at run time, which is disabled by default.
    """

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL,
                 tracer: Tracer | None = None):
        self.cost_model = cost_model
        self.tracer = tracer

    def run(self, graph: Graph, placement: Placement,
            workload: Workload, *,
            fault_schedule: FaultSchedule | None = None,
            checkpoint_interval: int = 4,
            sampler=None) -> AnalyticsRun:
        """Execute *workload* over *placement* and return the full trace.

        Parameters
        ----------
        fault_schedule:
            Optional :class:`~repro.faults.FaultSchedule`.  A worker crash
            whose onset falls inside a superstep's wall-clock window
            forces checkpoint-restart: every superstep since the last
            checkpoint is re-executed and the dead machine's vertices are
            re-homed onto the survivors via
            :func:`repro.partitioning.dynamic.reassign_lost_vertices`.
            ``None`` or the empty schedule leaves the run bit-identical to
            the fault-free engine (the ChaosHarness invariant).
        checkpoint_interval:
            Write a coordinated checkpoint every this many supersteps
            (only when a fault schedule is active).
        sampler:
            Optional :class:`~repro.telemetry.timeseries.TimeSeriesSampler`;
            rebound to the run's registry and sampled once per superstep
            at the simulated clock (after any recovery/checkpoint time),
            turning gather/mirror traffic and recovery cost into
            per-superstep series.  Disabled/absent samplers add zero
            registry calls.
        """
        if placement.graph is not graph:
            raise SimulationError("placement was built for a different graph")
        schedule = fault_schedule or NO_FAULTS
        faulty = not schedule.is_empty
        if checkpoint_interval < 1:
            raise FaultInjectionError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}")
        k = placement.num_partitions
        src, dst = graph.src, graph.dst
        edge_parts = placement.edge_parts
        master = placement.master

        run = AnalyticsRun(
            workload=workload.name,
            algorithm=placement.algorithm,
            num_partitions=k,
            replication_factor=placement.replication_factor(),
            checkpoint_interval=checkpoint_interval if faulty else None,
        )
        metrics = run.metrics
        m_steps = metrics.counter("gas.supersteps")
        m_gather = metrics.counter("gas.gather_messages")
        m_mirror = metrics.counter("gas.mirror_update_messages")
        m_bytes = metrics.counter("gas.network_bytes")
        m_recoveries = metrics.counter("gas.recoveries")
        m_reexec = metrics.counter("gas.reexecuted_supersteps")
        m_ckpts = metrics.counter("gas.checkpoints")
        m_ckpt_secs = metrics.counter("gas.checkpoint_seconds_total")
        tracer = self.tracer if self.tracer is not None else get_tracer()
        tracing = tracer.enabled
        sampling = sampler is not None and sampler.enabled
        if sampling:
            sampler.registry = metrics
        #: Simulated wall clock: superstep windows decide which crash
        #: onsets strike which superstep, and give spans their timestamps.
        clock = SimClock()
        covered_until = 0.0
        last_checkpoint_step = 0
        root = tracer.begin("gas.run", 0.0, parent=None,
                            workload=workload.name,
                            algorithm=placement.algorithm,
                            num_partitions=k) if tracing else 0

        for step, activity in enumerate(workload.iterations(graph)):
            gather_msgs = 0
            edge_ops = np.zeros(k, dtype=np.float64)
            apply_targets: list[np.ndarray] = []
            bytes_in = np.zeros(k, dtype=np.float64)

            for direction, senders in (("fwd", activity.sends_forward),
                                       ("rev", activity.sends_reverse)):
                if senders is None or not senders.any():
                    continue
                if direction == "fwd":
                    active = senders[src]
                    receivers = dst[active]
                else:
                    active = senders[dst]
                    receivers = src[active]
                parts = edge_parts[active]
                # Edge work happens where the edges are stored.
                edge_ops += np.bincount(parts, minlength=k)
                # One partial-aggregate message per distinct
                # (receiver, partition) pair whose partition != master.
                pairs = np.unique(receivers * k + parts)
                pair_vertices = pairs // k
                pair_parts = pairs % k
                remote = pair_parts != master[pair_vertices]
                gather_msgs += int(remote.sum())
                bytes_in += np.bincount(
                    master[pair_vertices[remote]], minlength=k,
                ) * self.cost_model.bytes_per_message
                apply_targets.append(np.unique(pair_vertices))

            # Apply: masters combine partials and run the vertex update.
            vertex_ops = np.zeros(k, dtype=np.float64)
            if apply_targets:
                targets = np.unique(np.concatenate(apply_targets))
                vertex_ops += np.bincount(master[targets], minlength=k)

            # Scatter / mirror update for changed vertices.  A
            # locality-aware engine (PowerLyra's edge-cut emulation and
            # hybrid engine) refreshes only the mirrors whose partitions
            # will read the value — the out-edge hosts for uni-directional
            # workloads; a PowerGraph-style engine updates every mirror.
            changed = activity.changed
            update_msgs = 0
            if changed is not None and changed.any():
                uni = workload.direction == "uni"
                pairs = (placement.out_pairs
                         if uni and placement.locality_aware
                         else placement.all_pairs)
                pair_vertices = pairs // k
                pair_parts = pairs % k
                relevant = changed[pair_vertices]
                remote = relevant & (pair_parts != master[pair_vertices])
                update_msgs = int(remote.sum())
                bytes_in += np.bincount(pair_parts[remote], minlength=k) \
                    * self.cost_model.bytes_per_message
                # Masters do the sending work.
                vertex_ops += np.bincount(master[pair_vertices[remote]],
                                          minlength=k)

            compute = (edge_ops * self.cost_model.seconds_per_edge
                       + vertex_ops * self.cost_model.seconds_per_vertex_op)
            network_bytes = float(bytes_in.sum())
            wall = (float(compute.max(initial=0.0))
                    + self.cost_model.network_seconds(float(bytes_in.max(initial=0.0)))
                    + self.cost_model.barrier_seconds)
            run.iterations.append(IterationStats(
                iteration=step,
                gather_messages=gather_msgs,
                mirror_update_messages=update_msgs,
                network_bytes=network_bytes,
                compute_seconds=compute,
                wall_seconds=wall,
            ))
            m_steps.inc()
            m_gather.inc(gather_msgs)
            m_mirror.inc(update_msgs)
            m_bytes.inc(network_bytes)

            step_start = clock.now
            if tracing:
                sid = tracer.begin("gas.superstep", step_start, parent=root,
                                   iteration=step,
                                   gather_messages=gather_msgs,
                                   mirror_update_messages=update_msgs,
                                   network_bytes=network_bytes)
                compute_end = step_start
                for machine in range(k):
                    cid = tracer.begin("gas.compute", step_start, parent=sid,
                                       machine=machine)
                    tracer.end(cid, step_start + float(compute[machine]))
                    compute_end = max(compute_end,
                                      step_start + float(compute[machine]))
                syncid = tracer.begin("gas.sync", compute_end, parent=sid,
                                      network_bytes=network_bytes)
                tracer.end(syncid, step_start + wall)
                tracer.end(sid, step_start + wall)
            clock.advance(wall)

            if faulty:
                # Each window starts where the previous one ended (before
                # any recovery/checkpoint time was appended), so those
                # periods are covered by the next window and no crash
                # onset can fall between windows unnoticed.
                window_end = clock.now
                for crash in schedule.crash_starts_in(covered_until,
                                                      window_end):
                    if crash.worker >= k:
                        continue
                    event = self._recover(graph, placement, run, schedule,
                                          crash, step, last_checkpoint_step)
                    m_recoveries.inc()
                    m_reexec.inc(event.reexecuted_supersteps)
                    if tracing:
                        rid = tracer.begin(
                            "gas.recovery", clock.now, parent=root,
                            step=step, worker=crash.worker,
                            lost_vertices=event.lost_vertices,
                            lost_edges=event.lost_edges,
                            reexecuted_supersteps=event.reexecuted_supersteps,
                            migration_bytes=event.migration_bytes)
                        tracer.end(rid, clock.now + event.recovery_seconds)
                    clock.advance(event.recovery_seconds)
                covered_until = window_end
                if (step + 1) % checkpoint_interval == 0:
                    if tracing:
                        kid = tracer.begin("gas.checkpoint", clock.now,
                                           parent=root, step=step)
                        tracer.end(kid, clock.now
                                   + self.cost_model.checkpoint_seconds)
                    clock.advance(self.cost_model.checkpoint_seconds)
                    m_ckpts.inc()
                    m_ckpt_secs.inc(self.cost_model.checkpoint_seconds)
                    last_checkpoint_step = step + 1
            if sampling:
                # One sample per superstep, stamped after recovery and
                # checkpoint time so the series aligns with the spans.
                sampler.sample(clock.now, index=step)
        metrics.histogram("gas.machine.compute_seconds").observe_many(
            run.compute_seconds_per_machine())
        if tracing:
            tracer.end(root, clock.now, supersteps=run.num_iterations,
                       recoveries=len(run.recovery_events))
        return run

    # ------------------------------------------------------------------
    def _recover(self, graph: Graph, placement: Placement, run: AnalyticsRun,
                 schedule: FaultSchedule, crash, step: int,
                 last_checkpoint_step: int) -> RecoveryEvent:
        """Checkpoint-restart recovery for a crash during superstep *step*.

        Two cost components, both functions of the partitioning under
        test:

        * **re-execution** — every superstep since the last checkpoint is
          lost and re-run (their already-modelled wall times recur);
        * **rebalancing** — the dead machine's master vertices are
          re-homed onto the survivors with the LDG objective
          (:func:`~repro.partitioning.dynamic.reassign_lost_vertices`);
          its state is re-fetched from replicas, and every re-homed edge
          that still crosses partitions needs a mirror re-registration
          message.  Balance decides how much state is lost; locality
          decides how cheaply it re-homes.
        """
        cost = self.cost_model
        k = placement.num_partitions
        lost_mask = placement.master == crash.worker
        lost_vertices = int(np.count_nonzero(lost_mask))
        lost_edges = int(np.count_nonzero(placement.edge_parts == crash.worker))
        cross_edges = 0
        if k > 1 and lost_vertices:
            master_partition = VertexPartition(
                k, placement.master, algorithm=placement.algorithm)
            recovered = reassign_lost_vertices(
                graph, master_partition, crash.worker, seed=schedule.seed)
            touches = lost_mask[graph.src] | lost_mask[graph.dst]
            cross = (recovered.assignment[graph.src[touches]]
                     != recovered.assignment[graph.dst[touches]])
            cross_edges = int(np.count_nonzero(cross))
        migration_bytes = (cost.recovery_bytes(lost_vertices, lost_edges)
                           + cross_edges * cost.bytes_per_message)
        rebalance_seconds = cost.network_seconds(migration_bytes)
        reexecuted = step - last_checkpoint_step + 1
        reexec_seconds = float(sum(
            it.wall_seconds
            for it in run.iterations[last_checkpoint_step:step + 1]))
        event = RecoveryEvent(
            step=step,
            worker=crash.worker,
            time=crash.start,
            reexecuted_supersteps=reexecuted,
            lost_vertices=lost_vertices,
            lost_edges=lost_edges,
            migration_bytes=migration_bytes,
            rebalance_seconds=rebalance_seconds,
            recovery_seconds=reexec_seconds + rebalance_seconds,
        )
        run.recovery_events.append(event)
        return event


def run_workload(graph: Graph, partition, workload: Workload, *,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 fault_schedule: FaultSchedule | None = None,
                 checkpoint_interval: int = 4,
                 sampler=None) -> AnalyticsRun:
    """One-shot convenience: build the placement and run the workload."""
    placement = Placement(graph, partition)
    return GasEngine(cost_model).run(graph, placement, workload,
                                     fault_schedule=fault_schedule,
                                     checkpoint_interval=checkpoint_interval,
                                     sampler=sampler)
