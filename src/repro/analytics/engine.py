"""Synchronous GAS engine with exact communication accounting.

This is the repo's stand-in for PowerLyra's analytics engine.  Each
super-step of a workload is executed on the full graph (the numerical
result of a BSP vertex program is independent of placement), while the
*distributed* quantities — who stores which edge, which replicas exchange
which messages — are derived exactly from the
:class:`~repro.analytics.placement.Placement`:

**Gather** — partial aggregates are computed where edges live.  For every
receiving vertex ``v``, each partition holding at least one active
in-coming edge of ``v`` produces one partial-aggregate message to ``v``'s
master (none if that partition *is* the master).  This is PowerGraph's
mirror→master sync, and — per Appendix B — also the cost of edge-cut
systems with sender-side aggregation, because the Appendix-B placement
stores out-edges at their source's master.

**Apply** — masters combine partials and update the vertex value.

**Scatter/mirror update** — every vertex whose value changed must refresh
the replicas that will read it next step: the partitions holding its
out-edges for uni-directional workloads (PageRank, SSSP), all its
partitions for bi-directional ones (WCC).  For the Appendix-B edge-cut
placement and a uni-directional workload this count is exactly zero —
out-edges are master-local — which is why "edge-cut partitioning has less
network communication for the same replication factor ... for PageRank"
(Section 6.2.1): the behaviour *emerges from the geometry* here rather
than being special-cased.

Superstep execution
-------------------
The accounting passes are organised around two structures that the old
per-step loop recomputed from scratch (see ``repro.analytics._reference``
for that loop, against which this engine is held byte-identical by
``tests/test_substrate_equivalence.py``):

* **Presorted edge keys** (:class:`_DirectionPasses`) — each direction's
  ``receiver * k + part`` keys are argsorted once per run, so a step's
  pair set is the *order-preserving subset* of an already-sorted array
  and ``np.unique``'s O(E log E) sort collapses to an O(E) run-length
  dedupe with identical output.
* **Activity-keyed caches** — gather, apply and scatter results are
  memoised against a copy of the activity mask (compared by content, so
  a hit is exactly the case where the old loop recomputed identical
  values).  All-active workloads like 20-iteration PageRank hit on every
  step after the first; shrinking-activity workloads (WCC, k-core) miss
  and pay only the sort-free pass.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.cost import DEFAULT_COST_MODEL, CostModel
from repro.analytics.placement import Placement
from repro.analytics.result import AnalyticsRun, IterationStats, RecoveryEvent
from repro.analytics.workloads.base import Workload
from repro.errors import FaultInjectionError, SimulationError
from repro.faults import NO_FAULTS, FaultSchedule
from repro.graph.digraph import Graph
from repro.partitioning.base import VertexPartition
from repro.partitioning.dynamic import reassign_lost_vertices
from repro.telemetry import get_tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import SimClock, Tracer


def _dedupe_sorted(values: np.ndarray) -> np.ndarray:
    """Unique values of an already-sorted array (== ``np.unique`` output)."""
    if not values.size:
        return values
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


class _DirectionPasses:
    """One gather direction: presorted keys + last-activity memo.

    ``keys = receiver * k + part`` over all edges, argsorted once; a
    step's active subset selected in that order is itself sorted, so the
    distinct (receiver, partition) pair set falls out of a linear dedupe.
    The memo caches the full gather pass keyed on the sender mask's
    *content* — a hit is precisely a step the reference loop would spend
    recomputing identical arrays.
    """

    __slots__ = ("sender_sorted", "keys_sorted", "parts_sorted", "master",
                 "k", "mask", "version", "edge_counts", "gather_msgs",
                 "master_counts", "targets")

    def __init__(self, sender_index: np.ndarray, keys: np.ndarray,
                 edge_parts: np.ndarray, master: np.ndarray, k: int):
        order = np.argsort(keys, kind="stable")
        self.sender_sorted = sender_index[order]
        self.keys_sorted = keys[order]
        self.parts_sorted = edge_parts[order]
        self.master = master
        self.k = k
        self.mask: np.ndarray | None = None
        self.version = -1
        self.edge_counts: np.ndarray | None = None
        self.gather_msgs = 0
        self.master_counts: np.ndarray | None = None
        self.targets: np.ndarray | None = None

    def gather(self, senders: np.ndarray) -> None:
        """Run (or recall) the gather pass for this step's sender mask."""
        if self.mask is not None and np.array_equal(self.mask, senders):
            return
        active_sorted = senders[self.sender_sorted]
        selected = self.keys_sorted[active_sorted]
        self.edge_counts = np.bincount(self.parts_sorted[active_sorted],
                                       minlength=self.k)
        pairs = _dedupe_sorted(selected)
        pair_vertices, pair_parts = np.divmod(pairs, self.k)
        remote = pair_parts != self.master[pair_vertices]
        self.gather_msgs = int(remote.sum())
        self.master_counts = np.bincount(
            self.master[pair_vertices[remote]], minlength=self.k)
        self.targets = _dedupe_sorted(pair_vertices)
        self.mask = senders.copy()
        self.version += 1


class _ScatterPasses:
    """Mirror-update geometry: static remote mask + last-changed memo."""

    __slots__ = ("vertices", "parts", "masters", "remote_static", "k",
                 "mask", "update_msgs", "part_counts", "master_counts")

    def __init__(self, pairs: np.ndarray, master: np.ndarray, k: int):
        self.vertices, self.parts = np.divmod(pairs, k)
        self.masters = master[self.vertices]
        self.remote_static = self.parts != self.masters
        self.k = k
        self.mask: np.ndarray | None = None
        self.update_msgs = 0
        self.part_counts: np.ndarray | None = None
        self.master_counts: np.ndarray | None = None

    def scatter(self, changed: np.ndarray) -> None:
        if self.mask is not None and np.array_equal(self.mask, changed):
            return
        remote = changed[self.vertices] & self.remote_static
        self.update_msgs = int(remote.sum())
        self.part_counts = np.bincount(self.parts[remote], minlength=self.k)
        self.master_counts = np.bincount(self.masters[remote],
                                         minlength=self.k)
        self.mask = changed.copy()


class GasEngine:
    """Synchronous (BSP) Gather-Apply-Scatter execution simulator.

    Parameters
    ----------
    cost_model:
        Converts counts into seconds/bytes; defaults shared by the whole
        experiment harness so runs are comparable.
    tracer:
        Span tracer for the run (``gas.*`` spans on the simulated clock);
        ``None`` resolves the global :func:`repro.telemetry.get_tracer`
        at run time, which is disabled by default.
    """

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL,
                 tracer: Tracer | None = None):
        self.cost_model = cost_model
        self.tracer = tracer

    def run(self, graph: Graph, placement: Placement,
            workload: Workload, *,
            fault_schedule: FaultSchedule | None = None,
            checkpoint_interval: int = 4,
            sampler=None) -> AnalyticsRun:
        """Execute *workload* over *placement* and return the full trace.

        Parameters
        ----------
        fault_schedule:
            Optional :class:`~repro.faults.FaultSchedule`.  A worker crash
            whose onset falls inside a superstep's wall-clock window
            forces checkpoint-restart: every superstep since the last
            checkpoint is re-executed and the dead machine's vertices are
            re-homed onto the survivors via
            :func:`repro.partitioning.dynamic.reassign_lost_vertices`.
            ``None`` or the empty schedule leaves the run bit-identical to
            the fault-free engine (the ChaosHarness invariant).
        checkpoint_interval:
            Write a coordinated checkpoint every this many supersteps
            (only when a fault schedule is active).
        sampler:
            Optional :class:`~repro.telemetry.timeseries.TimeSeriesSampler`;
            rebound to the run's registry and sampled once per superstep
            at the simulated clock (after any recovery/checkpoint time),
            turning gather/mirror traffic and recovery cost into
            per-superstep series.  Disabled/absent samplers add zero
            registry calls.
        """
        if placement.graph is not graph:
            raise SimulationError("placement was built for a different graph")
        schedule = fault_schedule or NO_FAULTS
        faulty = not schedule.is_empty
        if checkpoint_interval < 1:
            raise FaultInjectionError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}")
        k = placement.num_partitions
        src, dst = graph.src, graph.dst
        edge_parts = placement.edge_parts
        master = placement.master
        cost = self.cost_model
        bytes_per_message = cost.bytes_per_message
        seconds_per_edge = cost.seconds_per_edge
        seconds_per_vertex_op = cost.seconds_per_vertex_op

        run = AnalyticsRun(
            workload=workload.name,
            algorithm=placement.algorithm,
            num_partitions=k,
            replication_factor=placement.replication_factor(),
            checkpoint_interval=checkpoint_interval if faulty else None,
        )
        metrics = run.metrics
        m_steps = metrics.counter("gas.supersteps")
        m_gather = metrics.counter("gas.gather_messages")
        m_mirror = metrics.counter("gas.mirror_update_messages")
        m_bytes = metrics.counter("gas.network_bytes")
        m_recoveries = metrics.counter("gas.recoveries")
        m_reexec = metrics.counter("gas.reexecuted_supersteps")
        m_ckpts = metrics.counter("gas.checkpoints")
        m_ckpt_secs = metrics.counter("gas.checkpoint_seconds_total")
        tracer = self.tracer if self.tracer is not None else get_tracer()
        tracing = tracer.enabled
        sampling = sampler is not None and sampler.enabled
        if sampling:
            sampler.registry = metrics
        #: Simulated wall clock: superstep windows decide which crash
        #: onsets strike which superstep, and give spans their timestamps.
        clock = SimClock()
        covered_until = 0.0
        last_checkpoint_step = 0
        root = tracer.begin("gas.run", 0.0, parent=None,
                            workload=workload.name,
                            algorithm=placement.algorithm,
                            num_partitions=k) if tracing else 0

        # Per-run pass state: presorted direction keys (built lazily —
        # uni-directional workloads never touch "rev"), scatter geometry,
        # the apply memo, and the preallocated accumulator buffers.
        passes: dict[str, _DirectionPasses] = {}
        scatter_passes: _ScatterPasses | None = None
        apply_key: tuple | None = None
        apply_counts: np.ndarray | None = None
        edge_ops = np.zeros(k, dtype=np.float64)
        vertex_ops = np.zeros(k, dtype=np.float64)
        bytes_in = np.zeros(k, dtype=np.float64)

        def direction_passes(direction: str) -> _DirectionPasses:
            built = passes.get(direction)
            if built is None:
                if direction == "fwd":
                    sender_index, receivers = src, dst
                else:
                    sender_index, receivers = dst, src
                built = _DirectionPasses(sender_index,
                                         receivers * k + edge_parts,
                                         edge_parts, master, k)
                passes[direction] = built
            return built

        for step, activity in enumerate(workload.iterations(graph)):
            gather_msgs = 0
            edge_ops.fill(0.0)
            vertex_ops.fill(0.0)
            bytes_in.fill(0.0)
            apply_parts: list[tuple] = []

            for direction, senders in (("fwd", activity.sends_forward),
                                       ("rev", activity.sends_reverse)):
                if senders is None or not senders.any():
                    continue
                d = direction_passes(direction)
                d.gather(senders)
                # Edge work happens where the edges are stored; one
                # partial-aggregate message per distinct (receiver,
                # partition) pair whose partition != master.
                edge_ops += d.edge_counts
                gather_msgs += d.gather_msgs
                bytes_in += d.master_counts * bytes_per_message
                apply_parts.append((direction, d.version, d.targets))

            # Apply: masters combine partials and run the vertex update.
            # The per-partition target counts are memoised on the
            # contributing directions' cache versions — unchanged gather
            # masks imply an unchanged target union.
            if apply_parts:
                key = tuple(part[:2] for part in apply_parts)
                if key != apply_key:
                    if len(apply_parts) == 1:
                        targets = apply_parts[0][2]
                    else:
                        targets = np.unique(np.concatenate(
                            [part[2] for part in apply_parts]))
                    apply_counts = np.bincount(master[targets], minlength=k)
                    apply_key = key
                vertex_ops += apply_counts

            # Scatter / mirror update for changed vertices.  A
            # locality-aware engine (PowerLyra's edge-cut emulation and
            # hybrid engine) refreshes only the mirrors whose partitions
            # will read the value — the out-edge hosts for uni-directional
            # workloads; a PowerGraph-style engine updates every mirror.
            changed = activity.changed
            update_msgs = 0
            if changed is not None and changed.any():
                if scatter_passes is None:
                    uni = workload.direction == "uni"
                    scatter_passes = _ScatterPasses(
                        placement.out_pairs
                        if uni and placement.locality_aware
                        else placement.all_pairs, master, k)
                scatter_passes.scatter(changed)
                update_msgs = scatter_passes.update_msgs
                bytes_in += scatter_passes.part_counts * bytes_per_message
                # Masters do the sending work.
                vertex_ops += scatter_passes.master_counts

            compute = (edge_ops * seconds_per_edge
                       + vertex_ops * seconds_per_vertex_op)
            network_bytes = float(bytes_in.sum())
            compute_max = float(compute.max(initial=0.0))
            wall = (compute_max
                    + cost.network_seconds(float(bytes_in.max(initial=0.0)))
                    + cost.barrier_seconds)
            run.iterations.append(IterationStats(
                iteration=step,
                gather_messages=gather_msgs,
                mirror_update_messages=update_msgs,
                network_bytes=network_bytes,
                compute_seconds=compute,
                wall_seconds=wall,
            ))
            m_steps.inc()
            m_gather.inc(gather_msgs)
            m_mirror.inc(update_msgs)
            m_bytes.inc(network_bytes)

            step_start = clock.now
            if tracing:
                sid = tracer.begin("gas.superstep", step_start, parent=root,
                                   iteration=step,
                                   gather_messages=gather_msgs,
                                   mirror_update_messages=update_msgs,
                                   network_bytes=network_bytes)
                tracer.emit_closed("gas.compute", step_start,
                                   step_start + compute, parent=sid,
                                   attr_name="machine")
                syncid = tracer.begin("gas.sync", step_start + compute_max,
                                      parent=sid,
                                      network_bytes=network_bytes)
                tracer.end(syncid, step_start + wall)
                tracer.end(sid, step_start + wall)
            clock.advance(wall)

            if faulty:
                # Each window starts where the previous one ended (before
                # any recovery/checkpoint time was appended), so those
                # periods are covered by the next window and no crash
                # onset can fall between windows unnoticed.
                window_end = clock.now
                for crash in schedule.crash_starts_in(covered_until,
                                                      window_end):
                    if crash.worker >= k:
                        continue
                    event = self._recover(graph, placement, run, schedule,
                                          crash, step, last_checkpoint_step)
                    m_recoveries.inc()
                    m_reexec.inc(event.reexecuted_supersteps)
                    if tracing:
                        rid = tracer.begin(
                            "gas.recovery", clock.now, parent=root,
                            step=step, worker=crash.worker,
                            lost_vertices=event.lost_vertices,
                            lost_edges=event.lost_edges,
                            reexecuted_supersteps=event.reexecuted_supersteps,
                            migration_bytes=event.migration_bytes)
                        tracer.end(rid, clock.now + event.recovery_seconds)
                    clock.advance(event.recovery_seconds)
                covered_until = window_end
                if (step + 1) % checkpoint_interval == 0:
                    if tracing:
                        kid = tracer.begin("gas.checkpoint", clock.now,
                                           parent=root, step=step)
                        tracer.end(kid, clock.now
                                   + cost.checkpoint_seconds)
                    clock.advance(cost.checkpoint_seconds)
                    m_ckpts.inc()
                    m_ckpt_secs.inc(cost.checkpoint_seconds)
                    last_checkpoint_step = step + 1
            if sampling:
                # One sample per superstep, stamped after recovery and
                # checkpoint time so the series aligns with the spans.
                sampler.sample(clock.now, index=step)
        metrics.histogram("gas.machine.compute_seconds").observe_many(
            run.compute_seconds_per_machine())
        if tracing:
            tracer.end(root, clock.now, supersteps=run.num_iterations,
                       recoveries=len(run.recovery_events))
        return run

    # ------------------------------------------------------------------
    def _recover(self, graph: Graph, placement: Placement, run: AnalyticsRun,
                 schedule: FaultSchedule, crash, step: int,
                 last_checkpoint_step: int) -> RecoveryEvent:
        """Checkpoint-restart recovery for a crash during superstep *step*.

        Two cost components, both functions of the partitioning under
        test:

        * **re-execution** — every superstep since the last checkpoint is
          lost and re-run (their already-modelled wall times recur);
        * **rebalancing** — the dead machine's master vertices are
          re-homed onto the survivors with the LDG objective
          (:func:`~repro.partitioning.dynamic.reassign_lost_vertices`);
          its state is re-fetched from replicas, and every re-homed edge
          that still crosses partitions needs a mirror re-registration
          message.  Balance decides how much state is lost; locality
          decides how cheaply it re-homes.
        """
        cost = self.cost_model
        k = placement.num_partitions
        lost_mask = placement.master == crash.worker
        lost_vertices = int(np.count_nonzero(lost_mask))
        lost_edges = int(np.count_nonzero(placement.edge_parts == crash.worker))
        cross_edges = 0
        if k > 1 and lost_vertices:
            master_partition = VertexPartition(
                k, placement.master, algorithm=placement.algorithm)
            recovered = reassign_lost_vertices(
                graph, master_partition, crash.worker, seed=schedule.seed)
            touches = lost_mask[graph.src] | lost_mask[graph.dst]
            cross = (recovered.assignment[graph.src[touches]]
                     != recovered.assignment[graph.dst[touches]])
            cross_edges = int(np.count_nonzero(cross))
        migration_bytes = (cost.recovery_bytes(lost_vertices, lost_edges)
                           + cross_edges * cost.bytes_per_message)
        rebalance_seconds = cost.network_seconds(migration_bytes)
        reexecuted = step - last_checkpoint_step + 1
        reexec_seconds = float(sum(
            it.wall_seconds
            for it in run.iterations[last_checkpoint_step:step + 1]))
        event = RecoveryEvent(
            step=step,
            worker=crash.worker,
            time=crash.start,
            reexecuted_supersteps=reexecuted,
            lost_vertices=lost_vertices,
            lost_edges=lost_edges,
            migration_bytes=migration_bytes,
            rebalance_seconds=rebalance_seconds,
            recovery_seconds=reexec_seconds + rebalance_seconds,
        )
        run.recovery_events.append(event)
        return event


def run_workload(graph: Graph, partition, workload: Workload, *,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 fault_schedule: FaultSchedule | None = None,
                 checkpoint_interval: int = 4,
                 sampler=None) -> AnalyticsRun:
    """One-shot convenience: build the placement and run the workload."""
    placement = Placement(graph, partition)
    return GasEngine(cost_model).run(graph, placement, workload,
                                     fault_schedule=fault_schedule,
                                     checkpoint_interval=checkpoint_interval,
                                     sampler=sampler)
