"""Result records produced by the analytics engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.runtime import DistributionSummary, summarize


@dataclass(frozen=True)
class IterationStats:
    """Counts and modelled time of one super-step."""

    iteration: int
    gather_messages: int
    mirror_update_messages: int
    network_bytes: float
    #: Modelled CPU seconds per machine this step.
    compute_seconds: np.ndarray
    wall_seconds: float

    @property
    def total_messages(self) -> int:
        return self.gather_messages + self.mirror_update_messages


@dataclass
class AnalyticsRun:
    """Full trace of one workload execution on one placement.

    This is the record the offline figures read: total network I/O
    (Fig. 1), per-machine computation-time distribution (Fig. 4) and
    execution time (Figs. 3/13).
    """

    workload: str
    algorithm: str
    num_partitions: int
    replication_factor: float
    iterations: list[IterationStats] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_network_bytes(self) -> float:
        return float(sum(it.network_bytes for it in self.iterations))

    @property
    def total_messages(self) -> int:
        return int(sum(it.total_messages for it in self.iterations))

    @property
    def execution_seconds(self) -> float:
        """End-to-end modelled execution time (excludes partitioning, as
        the paper's latency metric does)."""
        return float(sum(it.wall_seconds for it in self.iterations))

    def compute_seconds_per_machine(self) -> np.ndarray:
        """Total modelled CPU seconds per machine (Fig. 4's distribution)."""
        if not self.iterations:
            return np.zeros(self.num_partitions)
        return np.sum([it.compute_seconds for it in self.iterations], axis=0)

    def compute_distribution(self) -> DistributionSummary:
        """Five-number summary of per-machine compute time (one Fig. 4 box)."""
        return summarize(self.compute_seconds_per_machine())
