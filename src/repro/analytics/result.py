"""Result records produced by the analytics engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.runtime import DistributionSummary, summarize
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class IterationStats:
    """Counts and modelled time of one super-step."""

    iteration: int
    gather_messages: int
    mirror_update_messages: int
    network_bytes: float
    #: Modelled CPU seconds per machine this step.
    compute_seconds: np.ndarray
    wall_seconds: float

    @property
    def total_messages(self) -> int:
        return self.gather_messages + self.mirror_update_messages


@dataclass(frozen=True)
class RecoveryEvent:
    """One checkpoint-restart recovery after a mid-superstep crash.

    Produced by the engine's fault-tolerance path (see
    :mod:`repro.faults`): the failed superstep and everything since the
    last checkpoint is re-executed, and the dead machine's graph state is
    re-homed onto the survivors — so both components depend on the
    partitioning under test (balance decides how much state is lost,
    locality decides how cheaply it re-homes).
    """

    #: Superstep during which the crash struck.
    step: int
    #: The machine that failed.
    worker: int
    #: Simulated wall-clock time of the crash.
    time: float
    #: Supersteps re-executed from the last checkpoint (incl. the failed one).
    reexecuted_supersteps: int
    #: Master vertices lost with the machine.
    lost_vertices: int
    #: Edges stored on the machine.
    lost_edges: int
    #: State bytes migrated to re-home the lost vertices/edges.
    migration_bytes: float
    #: Wire time of the state migration.
    rebalance_seconds: float
    #: Total recovery wall time: re-execution + state migration.
    recovery_seconds: float


@dataclass
class AnalyticsRun:
    """Full trace of one workload execution on one placement.

    This is the record the offline figures read: total network I/O
    (Fig. 1), per-machine computation-time distribution (Fig. 4) and
    execution time (Figs. 3/13).
    """

    workload: str
    algorithm: str
    num_partitions: int
    replication_factor: float
    iterations: list[IterationStats] = field(default_factory=list)
    #: Fault-tolerance trace (empty when no fault schedule was active).
    recovery_events: list[RecoveryEvent] = field(default_factory=list)
    #: Checkpoint interval used by the fault-tolerant path (None = the
    #: fault-free engine, which writes no checkpoints).
    checkpoint_interval: int | None = None
    #: Named counters/histograms recorded by the engine during this run
    #: (``gas.*`` namespace — see docs/telemetry.md).  The engine always
    #: attaches one; the default exists so hand-built runs stay valid.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def checkpoint_seconds_total(self) -> float:
        """Total time spent writing checkpoints (zero when fault-free).

        Backed by the ``gas.checkpoint_seconds_total`` counter — the
        ad-hoc field this class used to carry lives in the metrics
        registry now, under the same public spelling.
        """
        return float(self.metrics.value("gas.checkpoint_seconds_total"))

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def recovery_seconds(self) -> float:
        """Total wall time spent in checkpoint-restart recovery."""
        return float(sum(e.recovery_seconds for e in self.recovery_events))

    @property
    def reexecuted_supersteps(self) -> int:
        """Supersteps executed more than once due to crashes."""
        return int(sum(e.reexecuted_supersteps for e in self.recovery_events))

    @property
    def migration_bytes(self) -> float:
        """State bytes moved to re-home failed machines' vertices."""
        return float(sum(e.migration_bytes for e in self.recovery_events))

    @property
    def total_network_bytes(self) -> float:
        return float(sum(it.network_bytes for it in self.iterations))

    @property
    def total_messages(self) -> int:
        return int(sum(it.total_messages for it in self.iterations))

    @property
    def execution_seconds(self) -> float:
        """End-to-end modelled execution time (excludes partitioning, as
        the paper's latency metric does).  Under fault injection this
        includes checkpointing and crash-recovery time."""
        total = float(sum(it.wall_seconds for it in self.iterations))
        if self.recovery_events:
            total += self.recovery_seconds
        if self.checkpoint_seconds_total:
            total += self.checkpoint_seconds_total
        return total

    def compute_seconds_per_machine(self) -> np.ndarray:
        """Total modelled CPU seconds per machine (Fig. 4's distribution)."""
        if not self.iterations:
            return np.zeros(self.num_partitions)
        return np.sum([it.compute_seconds for it in self.iterations], axis=0)

    def compute_distribution(self) -> DistributionSummary:
        """Five-number summary of per-machine compute time (one Fig. 4 box)."""
        return summarize(self.compute_seconds_per_machine())
