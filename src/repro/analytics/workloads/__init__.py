"""Offline analytic workloads."""

from repro.analytics.workloads.base import IterationActivity, Workload
from repro.analytics.workloads.bfs import BreadthFirstSearch
from repro.analytics.workloads.kcore import KCore
from repro.analytics.workloads.label_propagation import LabelPropagation
from repro.analytics.workloads.pagerank import PageRank
from repro.analytics.workloads.sssp import SingleSourceShortestPath
from repro.analytics.workloads.wcc import WeaklyConnectedComponents

__all__ = [
    "Workload",
    "IterationActivity",
    "PageRank",
    "WeaklyConnectedComponents",
    "SingleSourceShortestPath",
    "BreadthFirstSearch",
    "KCore",
    "LabelPropagation",
]
