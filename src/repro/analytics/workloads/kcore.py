"""k-core decomposition by iterative peeling.

A vertex belongs to the k-core if it survives repeated removal of all
vertices with (undirected) degree < k.  The distributed implementation is
a shrinking-activity workload like WCC, but with *elimination* semantics:
a removed vertex notifies its neighbours, whose effective degrees drop,
possibly cascading — an aggressive test of partitionings under rapidly
shifting load.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analytics.workloads.base import IterationActivity, Workload
from repro.errors import ConfigurationError
from repro.graph.digraph import Graph


class KCore(Workload):
    """Membership in the k-core (bi-directional propagation).

    ``result()`` is a boolean array: True for vertices in the k-core.
    """

    name = "kcore"
    direction = "bi"

    def __init__(self, k: int = 3, max_iterations: int = 100_000):
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        self.k = k
        self.max_iterations = max_iterations
        self._values: np.ndarray | None = None

    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        n = graph.num_vertices
        if n == 0:
            return
        src, dst = graph.src, graph.dst
        effective = graph.degree.astype(np.int64).copy()
        alive = np.ones(n, dtype=bool)

        for _step in range(self.max_iterations):
            removing = alive & (effective < self.k)
            if not removing.any():
                break
            alive &= ~removing
            # Removed vertices notify both endpoints of their edges.
            # bincount == the np.add.at scatter it replaced (kept in
            # ReferenceKCore), integer-exact and single-pass.
            drop = np.zeros(n, dtype=np.int64)
            fwd = removing[src]
            if fwd.any():
                drop += np.bincount(dst[fwd], minlength=n)
            rev = removing[dst]
            if rev.any():
                drop += np.bincount(src[rev], minlength=n)
            effective -= drop
            self._values = alive.copy()
            yield IterationActivity(
                sends_forward=removing,
                sends_reverse=removing,
                changed=removing,
            )
        self._values = alive.copy()
