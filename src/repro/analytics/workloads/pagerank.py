"""PageRank — the paper's flagship offline workload.

"In PowerLyra implementation of PageRank, vertex weights are iteratively
updated based on each vertex's incoming links for a fixed number of
iterations (20 in our experiments). As every vertex is active at each
iteration and must propagate information to all its neighbors, PageRank
demonstrates uniform and stable computation and communication costs"
(Section 5.1.3).  Communication is uni-directional: ranks flow along
out-edges only.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analytics.workloads.base import IterationActivity, Workload
from repro.errors import ConfigurationError
from repro.graph.digraph import Graph


class PageRank(Workload):
    """Fixed-iteration PageRank (all-active, uni-directional).

    Parameters
    ----------
    num_iterations:
        Super-steps to run; the paper uses 20.
    damping:
        Standard damping factor.
    """

    name = "pagerank"
    direction = "uni"

    def __init__(self, num_iterations: int = 20, damping: float = 0.85):
        if num_iterations < 1:
            raise ConfigurationError("num_iterations must be >= 1")
        if not 0.0 < damping < 1.0:
            raise ConfigurationError("damping must lie in (0, 1)")
        self.num_iterations = num_iterations
        self.damping = damping
        self._values: np.ndarray | None = None

    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        n = graph.num_vertices
        if n == 0:
            return
        src, dst = graph.src, graph.dst
        out_degree = graph.out_degree
        dangling = out_degree == 0
        safe_degree = np.maximum(out_degree, 1)
        ranks = np.full(n, 1.0 / n)
        all_vertices = np.ones(n, dtype=bool)

        for _step in range(self.num_iterations):
            contribution = ranks / safe_degree
            # bincount(weights=...) sums in input order, exactly like the
            # np.add.at it replaced (kept in ReferencePageRank) — same
            # bits, one fused C pass instead of a buffered scatter.
            incoming = np.bincount(dst, weights=contribution[src],
                                   minlength=n)
            # Dangling vertices redistribute their rank uniformly, the
            # standard correction that keeps Σ ranks = 1.
            incoming += ranks[dangling].sum() / n
            ranks = (1.0 - self.damping) / n + self.damping * incoming
            self._values = ranks
            yield IterationActivity(
                sends_forward=all_vertices,
                sends_reverse=None,
                changed=all_vertices,
            )
