"""Single-Source Shortest Path — the paper's frontier workload.

"Initially, only the source vertex is active and other vertices are
activated upon receiving a message in BFS traversal order. Network
communication initially grows and then shrinks with each iteration"
(Section 5.1.3).  Distances propagate along out-edges (uni-directional);
edges have unit weight by default (PowerGraph's default when the dataset
carries none), with optional per-edge weights.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analytics.workloads.base import IterationActivity, Workload
from repro.errors import ConfigurationError
from repro.graph.digraph import Graph


class SingleSourceShortestPath(Workload):
    """Frontier-based SSSP from a fixed source (uni-directional).

    Parameters
    ----------
    source:
        Start vertex.  The paper randomly selects one per dataset and
        keeps it fixed across experiments — the harness does the same.
    edge_weights:
        Optional non-negative per-edge weights (unit when omitted).
    """

    name = "sssp"
    direction = "uni"

    def __init__(self, source: int = 0, edge_weights=None,
                 max_iterations: int = 100_000):
        if source < 0:
            raise ConfigurationError("source must be a valid vertex id")
        self.source = source
        self.edge_weights = (np.asarray(edge_weights, dtype=np.float64)
                             if edge_weights is not None else None)
        if self.edge_weights is not None and (self.edge_weights < 0).any():
            raise ConfigurationError("edge weights must be non-negative")
        self.max_iterations = max_iterations
        self._values: np.ndarray | None = None

    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        n = graph.num_vertices
        if n == 0:
            return
        if self.source >= n:
            raise ConfigurationError(
                f"source {self.source} out of range for {n} vertices"
            )
        src, dst = graph.src, graph.dst
        weights = (self.edge_weights if self.edge_weights is not None
                   else np.ones(graph.num_edges))
        if weights.shape != (graph.num_edges,):
            raise ConfigurationError("edge_weights must have one entry per edge")

        dist = np.full(n, np.inf)
        dist[self.source] = 0.0
        frontier = np.zeros(n, dtype=bool)
        frontier[self.source] = True

        for _step in range(self.max_iterations):
            if not frontier.any():
                break
            sends = frontier.copy()
            candidate = dist.copy()
            active_edges = frontier[src]
            if active_edges.any():
                np.minimum.at(candidate, dst[active_edges],
                              dist[src[active_edges]] + weights[active_edges])
            changed = candidate < dist
            dist = candidate
            self._values = dist
            yield IterationActivity(
                sends_forward=sends,
                sends_reverse=None,
                changed=changed,
            )
            frontier = changed
