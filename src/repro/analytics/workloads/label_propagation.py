"""Community detection by synchronous label propagation.

Every vertex starts in its own community and repeatedly adopts the most
frequent label among its (undirected) neighbours, ties broken toward the
smaller label.  Activity shrinks as labels stabilise.  Communication is
all-active early and sparse late, sitting between PageRank's uniform and
SSSP's frontier profiles — a useful additional probe of how partitioning
interacts with phase-changing workloads.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analytics.workloads.base import IterationActivity, Workload
from repro.errors import ConfigurationError
from repro.graph.digraph import Graph


class LabelPropagation(Workload):
    """Synchronous label propagation (bi-directional).

    ``result()`` is the final community label per vertex.
    """

    name = "label-propagation"
    direction = "bi"

    def __init__(self, max_iterations: int = 20):
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self._values: np.ndarray | None = None

    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        n = graph.num_vertices
        if n == 0:
            return
        # Undirected incidence as (owner, neighbor) pairs, pre-sorted per
        # owner so per-iteration majority counting is vectorised.
        owners = np.concatenate([graph.src, graph.dst])
        others = np.concatenate([graph.dst, graph.src])
        order = np.argsort(owners, kind="stable")
        owners = owners[order]
        others = others[order]

        labels = np.arange(n, dtype=np.int64)
        previous = None
        active = np.ones(n, dtype=bool)

        for _step in range(self.max_iterations):
            if not active.any():
                break
            sends = active.copy()
            new_labels = self._majority_labels(n, owners, others, labels)
            if previous is not None and np.array_equal(new_labels, previous):
                # Synchronous LP oscillates with period 2 on near-bipartite
                # structures; a repeat of the state from two steps ago is
                # the standard stopping criterion.
                break
            changed = new_labels != labels
            previous = labels
            labels = new_labels
            self._values = labels
            yield IterationActivity(
                sends_forward=sends,
                sends_reverse=sends,
                changed=changed,
            )
            # A vertex re-evaluates while any neighbour changed; computing
            # the exact activation set costs one more scatter, so we use
            # the standard push-based activation.
            active = np.zeros(n, dtype=bool)
            if changed.any():
                active[others[changed[owners]]] = True
                active |= changed

    @staticmethod
    def _majority_labels(n, owners, others, labels) -> np.ndarray:
        """Most frequent neighbour label per vertex (ties: smaller label).

        Vectorised: sort (owner, neighbour-label) pairs, count runs, then
        pick each owner's best run — smaller label wins ties because the
        pairs are sorted ascending.
        """
        neighbor_labels = labels[others]
        order = np.lexsort((neighbor_labels, owners))
        o_sorted = owners[order]
        l_sorted = neighbor_labels[order]
        if o_sorted.size == 0:
            return labels.copy()
        # Run-length encode (owner, label) runs.
        boundary = np.empty(o_sorted.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = (o_sorted[1:] != o_sorted[:-1]) | \
            (l_sorted[1:] != l_sorted[:-1])
        run_starts = np.flatnonzero(boundary)
        run_owners = o_sorted[run_starts]
        run_labels = l_sorted[run_starts]
        run_lengths = np.diff(np.append(run_starts, o_sorted.size))
        # Per owner, keep the first maximal-count run (ascending label
        # order within an owner makes "first maximal" = smallest label).
        best = {}
        for owner, label, count in zip(run_owners.tolist(),
                                       run_labels.tolist(),
                                       run_lengths.tolist()):
            current = best.get(owner)
            if current is None or count > current[1]:
                best[owner] = (label, count)
        result = labels.copy()
        for owner, (label, _count) in best.items():
            result[owner] = label
        return result
