"""Weakly Connected Components — the paper's shrinking-activity workload.

Min-label propagation: every vertex starts as its own component, then
repeatedly adopts the minimum label among its neighbours *regardless of
edge direction* until a fixed point.  "Unlike PageRank, vertices are only
activated with incoming messages and therefore network communication
shrinks and workload per machine varies at each iteration"
(Section 5.1.3).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analytics.workloads.base import IterationActivity, Workload
from repro.graph.digraph import Graph


class WeaklyConnectedComponents(Workload):
    """WCC by undirected min-label propagation (bi-directional)."""

    name = "wcc"
    direction = "bi"

    def __init__(self, max_iterations: int = 1000):
        self.max_iterations = max_iterations
        self._values: np.ndarray | None = None

    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        n = graph.num_vertices
        if n == 0:
            return
        src, dst = graph.src, graph.dst
        labels = np.arange(n, dtype=np.int64)
        active = np.ones(n, dtype=bool)

        for _step in range(self.max_iterations):
            if not active.any():
                break
            sends = active.copy()
            candidate = labels.copy()
            # Forward: active sources push their label to targets.
            fwd = active[src]
            if fwd.any():
                np.minimum.at(candidate, dst[fwd], labels[src[fwd]])
            # Reverse: active targets push their label to sources.
            rev = active[dst]
            if rev.any():
                np.minimum.at(candidate, src[rev], labels[dst[rev]])
            changed = candidate < labels
            labels = candidate
            self._values = labels
            yield IterationActivity(
                sends_forward=sends,
                sends_reverse=sends,
                changed=changed,
            )
            active = changed
