"""Breadth-First Search — level-synchronous frontier expansion.

Not one of the paper's three headline workloads, but the canonical
traversal kernel of graph-analytics benchmarks (Graph500) and the
building block SSSP reduces to on unit weights.  Its communication
profile is the paper's "ordered activation" pattern in its purest form:
the frontier grows geometrically and then collapses, stressing
partitionings whose balance only holds under all-active workloads.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analytics.workloads.base import IterationActivity, Workload
from repro.errors import ConfigurationError
from repro.graph.digraph import Graph


class BreadthFirstSearch(Workload):
    """Level-synchronous BFS from a fixed source (uni-directional).

    Produces hop distances along out-edges; ``result()`` is the level per
    vertex (-1 = unreachable).
    """

    name = "bfs"
    direction = "uni"

    def __init__(self, source: int = 0, max_iterations: int = 100_000):
        if source < 0:
            raise ConfigurationError("source must be a valid vertex id")
        self.source = source
        self.max_iterations = max_iterations
        self._values: np.ndarray | None = None

    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        n = graph.num_vertices
        if n == 0:
            return
        if self.source >= n:
            raise ConfigurationError(
                f"source {self.source} out of range for {n} vertices")
        src, dst = graph.src, graph.dst
        level = np.full(n, -1, dtype=np.int64)
        level[self.source] = 0
        frontier = np.zeros(n, dtype=bool)
        frontier[self.source] = True

        for depth in range(1, self.max_iterations + 1):
            if not frontier.any():
                break
            sends = frontier.copy()
            active_edges = frontier[src]
            discovered = np.zeros(n, dtype=bool)
            if active_edges.any():
                targets = dst[active_edges]
                fresh = level[targets] < 0
                discovered[targets[fresh]] = True
            level[discovered] = depth
            self._values = level
            yield IterationActivity(
                sends_forward=sends,
                sends_reverse=None,
                changed=discovered,
            )
            frontier = discovered
