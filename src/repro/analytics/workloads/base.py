"""Workload interface for the synchronous GAS engine.

A workload is the *algorithm* being executed (PageRank, WCC, SSSP); it
runs on the **full** graph — distribution never changes the numerical
result, only where work and messages land — and yields one
:class:`IterationActivity` per super-step describing:

* which vertices send along their **out-edges** this step
  (``sends_forward``);
* which send along their **in-edges** (``sends_reverse``, used by
  undirected propagation such as WCC);
* which vertices' values **changed** in apply (they must update their
  mirrors before the next step).

The engine combines these masks with a :class:`~repro.analytics.placement.
Placement` to account messages, bytes and per-machine work — so a
workload is written once and runs identically under every cut model,
exactly like a vertex program in PowerLyra.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.graph.digraph import Graph


@dataclass
class IterationActivity:
    """Activity of one super-step.

    ``sends_forward`` / ``sends_reverse`` are boolean vertex masks
    (``None`` ⇒ nobody sends in that direction).  ``changed`` marks
    vertices whose value changed in this step's apply phase.
    """

    sends_forward: np.ndarray | None
    sends_reverse: np.ndarray | None
    changed: np.ndarray


class Workload(ABC):
    """An iterative vertex-centric graph algorithm."""

    #: Registry name.
    name = "?"
    #: 'uni' — communication flows one way along edges (PR, SSSP), so a
    #: changed vertex only updates mirrors holding its out-edges;
    #: 'bi' — propagation is undirected (WCC), all mirrors need the value.
    direction = "uni"

    @abstractmethod
    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        """Run the algorithm, yielding activity per super-step."""

    def result(self):
        """Final vertex values of the last :meth:`iterations` run."""
        return getattr(self, "_values", None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
