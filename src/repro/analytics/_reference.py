"""Frozen scalar reference for the GAS engine (pre-vectorization).

Verbatim snapshot of ``repro.analytics.engine`` (and the two workloads
whose scatter used ``np.add.at``) as they stood before the cached,
sort-free superstep rewrite — the PR 5 ``_reference.py`` pattern applied
to the analytics substrate.  Purposes:

1. **Equivalence gate** — ``tests/test_substrate_equivalence.py`` and
   ``benchmarks/bench_substrates.py`` assert the production engine's
   iteration stats, metrics, recovery events, and spans are
   byte-identical to this snapshot.
2. **Benchmark baseline** — the "before" supersteps/sec in
   ``BENCH_substrates.json``.

Do not optimise this file.  The only deviations from the snapshotted
production code are the ``Reference*`` names.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analytics.cost import DEFAULT_COST_MODEL, CostModel
from repro.analytics.placement import Placement
from repro.analytics.result import AnalyticsRun, IterationStats, RecoveryEvent
from repro.analytics.workloads.base import IterationActivity, Workload
from repro.errors import ConfigurationError, FaultInjectionError, SimulationError
from repro.faults import NO_FAULTS, FaultSchedule
from repro.graph.digraph import Graph
from repro.partitioning.base import VertexPartition
from repro.partitioning.dynamic import reassign_lost_vertices
from repro.telemetry import get_tracer
from repro.telemetry.tracer import SimClock, Tracer



class ReferenceGasEngine:
    """The pre-vectorization per-superstep loop, frozen.

    Same contract as :class:`~repro.analytics.engine.GasEngine`; see
    that class for parameter documentation.
    """

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL,
                 tracer: Tracer | None = None):
        self.cost_model = cost_model
        self.tracer = tracer

    def run(self, graph: Graph, placement: Placement,
            workload: Workload, *,
            fault_schedule: FaultSchedule | None = None,
            checkpoint_interval: int = 4,
            sampler=None) -> AnalyticsRun:
        """Execute *workload* over *placement* (frozen superstep loop)."""
        if placement.graph is not graph:
            raise SimulationError("placement was built for a different graph")
        schedule = fault_schedule or NO_FAULTS
        faulty = not schedule.is_empty
        if checkpoint_interval < 1:
            raise FaultInjectionError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}")
        k = placement.num_partitions
        src, dst = graph.src, graph.dst
        edge_parts = placement.edge_parts
        master = placement.master

        run = AnalyticsRun(
            workload=workload.name,
            algorithm=placement.algorithm,
            num_partitions=k,
            replication_factor=placement.replication_factor(),
            checkpoint_interval=checkpoint_interval if faulty else None,
        )
        metrics = run.metrics
        m_steps = metrics.counter("gas.supersteps")
        m_gather = metrics.counter("gas.gather_messages")
        m_mirror = metrics.counter("gas.mirror_update_messages")
        m_bytes = metrics.counter("gas.network_bytes")
        m_recoveries = metrics.counter("gas.recoveries")
        m_reexec = metrics.counter("gas.reexecuted_supersteps")
        m_ckpts = metrics.counter("gas.checkpoints")
        m_ckpt_secs = metrics.counter("gas.checkpoint_seconds_total")
        tracer = self.tracer if self.tracer is not None else get_tracer()
        tracing = tracer.enabled
        sampling = sampler is not None and sampler.enabled
        if sampling:
            sampler.registry = metrics
        clock = SimClock()
        covered_until = 0.0
        last_checkpoint_step = 0
        root = tracer.begin("gas.run", 0.0, parent=None,
                            workload=workload.name,
                            algorithm=placement.algorithm,
                            num_partitions=k) if tracing else 0

        for step, activity in enumerate(workload.iterations(graph)):
            gather_msgs = 0
            edge_ops = np.zeros(k, dtype=np.float64)
            apply_targets: list[np.ndarray] = []
            bytes_in = np.zeros(k, dtype=np.float64)

            for direction, senders in (("fwd", activity.sends_forward),
                                       ("rev", activity.sends_reverse)):
                if senders is None or not senders.any():
                    continue
                if direction == "fwd":
                    active = senders[src]
                    receivers = dst[active]
                else:
                    active = senders[dst]
                    receivers = src[active]
                parts = edge_parts[active]
                edge_ops += np.bincount(parts, minlength=k)
                pairs = np.unique(receivers * k + parts)
                pair_vertices = pairs // k
                pair_parts = pairs % k
                remote = pair_parts != master[pair_vertices]
                gather_msgs += int(remote.sum())
                bytes_in += np.bincount(
                    master[pair_vertices[remote]], minlength=k,
                ) * self.cost_model.bytes_per_message
                apply_targets.append(np.unique(pair_vertices))

            vertex_ops = np.zeros(k, dtype=np.float64)
            if apply_targets:
                targets = np.unique(np.concatenate(apply_targets))
                vertex_ops += np.bincount(master[targets], minlength=k)

            changed = activity.changed
            update_msgs = 0
            if changed is not None and changed.any():
                uni = workload.direction == "uni"
                pairs = (placement.out_pairs
                         if uni and placement.locality_aware
                         else placement.all_pairs)
                pair_vertices = pairs // k
                pair_parts = pairs % k
                relevant = changed[pair_vertices]
                remote = relevant & (pair_parts != master[pair_vertices])
                update_msgs = int(remote.sum())
                bytes_in += np.bincount(pair_parts[remote], minlength=k) \
                    * self.cost_model.bytes_per_message
                vertex_ops += np.bincount(master[pair_vertices[remote]],
                                          minlength=k)

            compute = (edge_ops * self.cost_model.seconds_per_edge
                       + vertex_ops * self.cost_model.seconds_per_vertex_op)
            network_bytes = float(bytes_in.sum())
            wall = (float(compute.max(initial=0.0))
                    + self.cost_model.network_seconds(
                        float(bytes_in.max(initial=0.0)))
                    + self.cost_model.barrier_seconds)
            run.iterations.append(IterationStats(
                iteration=step,
                gather_messages=gather_msgs,
                mirror_update_messages=update_msgs,
                network_bytes=network_bytes,
                compute_seconds=compute,
                wall_seconds=wall,
            ))
            m_steps.inc()
            m_gather.inc(gather_msgs)
            m_mirror.inc(update_msgs)
            m_bytes.inc(network_bytes)

            step_start = clock.now
            if tracing:
                sid = tracer.begin("gas.superstep", step_start, parent=root,
                                   iteration=step,
                                   gather_messages=gather_msgs,
                                   mirror_update_messages=update_msgs,
                                   network_bytes=network_bytes)
                compute_end = step_start
                for machine in range(k):
                    cid = tracer.begin("gas.compute", step_start, parent=sid,
                                       machine=machine)
                    tracer.end(cid, step_start + float(compute[machine]))
                    compute_end = max(compute_end,
                                      step_start + float(compute[machine]))
                syncid = tracer.begin("gas.sync", compute_end, parent=sid,
                                      network_bytes=network_bytes)
                tracer.end(syncid, step_start + wall)
                tracer.end(sid, step_start + wall)
            clock.advance(wall)

            if faulty:
                window_end = clock.now
                for crash in schedule.crash_starts_in(covered_until,
                                                      window_end):
                    if crash.worker >= k:
                        continue
                    event = self._recover(graph, placement, run, schedule,
                                          crash, step, last_checkpoint_step)
                    m_recoveries.inc()
                    m_reexec.inc(event.reexecuted_supersteps)
                    if tracing:
                        rid = tracer.begin(
                            "gas.recovery", clock.now, parent=root,
                            step=step, worker=crash.worker,
                            lost_vertices=event.lost_vertices,
                            lost_edges=event.lost_edges,
                            reexecuted_supersteps=event.reexecuted_supersteps,
                            migration_bytes=event.migration_bytes)
                        tracer.end(rid, clock.now + event.recovery_seconds)
                    clock.advance(event.recovery_seconds)
                covered_until = window_end
                if (step + 1) % checkpoint_interval == 0:
                    if tracing:
                        kid = tracer.begin("gas.checkpoint", clock.now,
                                           parent=root, step=step)
                        tracer.end(kid, clock.now
                                   + self.cost_model.checkpoint_seconds)
                    clock.advance(self.cost_model.checkpoint_seconds)
                    m_ckpts.inc()
                    m_ckpt_secs.inc(self.cost_model.checkpoint_seconds)
                    last_checkpoint_step = step + 1
            if sampling:
                sampler.sample(clock.now, index=step)
        metrics.histogram("gas.machine.compute_seconds").observe_many(
            run.compute_seconds_per_machine())
        if tracing:
            tracer.end(root, clock.now, supersteps=run.num_iterations,
                       recoveries=len(run.recovery_events))
        return run

    # ------------------------------------------------------------------
    def _recover(self, graph: Graph, placement: Placement, run: AnalyticsRun,
                 schedule: FaultSchedule, crash, step: int,
                 last_checkpoint_step: int) -> RecoveryEvent:
        cost = self.cost_model
        k = placement.num_partitions
        lost_mask = placement.master == crash.worker
        lost_vertices = int(np.count_nonzero(lost_mask))
        lost_edges = int(np.count_nonzero(placement.edge_parts == crash.worker))
        cross_edges = 0
        if k > 1 and lost_vertices:
            master_partition = VertexPartition(
                k, placement.master, algorithm=placement.algorithm)
            recovered = reassign_lost_vertices(
                graph, master_partition, crash.worker, seed=schedule.seed)
            touches = lost_mask[graph.src] | lost_mask[graph.dst]
            cross = (recovered.assignment[graph.src[touches]]
                     != recovered.assignment[graph.dst[touches]])
            cross_edges = int(np.count_nonzero(cross))
        migration_bytes = (cost.recovery_bytes(lost_vertices, lost_edges)
                           + cross_edges * cost.bytes_per_message)
        rebalance_seconds = cost.network_seconds(migration_bytes)
        reexecuted = step - last_checkpoint_step + 1
        reexec_seconds = float(sum(
            it.wall_seconds
            for it in run.iterations[last_checkpoint_step:step + 1]))
        event = RecoveryEvent(
            step=step,
            worker=crash.worker,
            time=crash.start,
            reexecuted_supersteps=reexecuted,
            lost_vertices=lost_vertices,
            lost_edges=lost_edges,
            migration_bytes=migration_bytes,
            rebalance_seconds=rebalance_seconds,
            recovery_seconds=reexec_seconds + rebalance_seconds,
        )
        run.recovery_events.append(event)
        return event


class ReferencePageRank(Workload):
    """Frozen PageRank with the pre-vectorization ``np.add.at`` scatter."""

    name = "pagerank"
    direction = "uni"

    def __init__(self, num_iterations: int = 20, damping: float = 0.85):
        if num_iterations < 1:
            raise ConfigurationError("num_iterations must be >= 1")
        if not 0.0 < damping < 1.0:
            raise ConfigurationError("damping must lie in (0, 1)")
        self.num_iterations = num_iterations
        self.damping = damping
        self._values: np.ndarray | None = None

    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        n = graph.num_vertices
        if n == 0:
            return
        src, dst = graph.src, graph.dst
        out_degree = graph.out_degree
        dangling = out_degree == 0
        safe_degree = np.maximum(out_degree, 1)
        ranks = np.full(n, 1.0 / n)
        all_vertices = np.ones(n, dtype=bool)

        for _step in range(self.num_iterations):
            contribution = ranks / safe_degree
            incoming = np.zeros(n)
            np.add.at(incoming, dst, contribution[src])
            incoming += ranks[dangling].sum() / n
            ranks = (1.0 - self.damping) / n + self.damping * incoming
            self._values = ranks
            yield IterationActivity(
                sends_forward=all_vertices,
                sends_reverse=None,
                changed=all_vertices,
            )


class ReferenceKCore(Workload):
    """Frozen k-core with the pre-vectorization ``np.add.at`` scatters."""

    name = "kcore"
    direction = "bi"

    def __init__(self, k: int = 3, max_iterations: int = 100_000):
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        self.k = k
        self.max_iterations = max_iterations
        self._values: np.ndarray | None = None

    def iterations(self, graph: Graph) -> Iterator[IterationActivity]:
        n = graph.num_vertices
        if n == 0:
            return
        src, dst = graph.src, graph.dst
        effective = graph.degree.astype(np.int64).copy()
        alive = np.ones(n, dtype=bool)

        for _step in range(self.max_iterations):
            removing = alive & (effective < self.k)
            if not removing.any():
                break
            alive &= ~removing
            drop = np.zeros(n, dtype=np.int64)
            fwd = removing[src]
            if fwd.any():
                np.add.at(drop, dst[fwd], 1)
            rev = removing[dst]
            if rev.any():
                np.add.at(drop, src[rev], 1)
            effective -= drop
            self._values = alive.copy()
            yield IterationActivity(
                sends_forward=removing,
                sends_reverse=removing,
                changed=removing,
            )
        self._values = alive.copy()


def reference_run_workload(graph: Graph, partition, workload: Workload, *,
                           cost_model: CostModel = DEFAULT_COST_MODEL,
                           fault_schedule: FaultSchedule | None = None,
                           checkpoint_interval: int = 4,
                           sampler=None) -> AnalyticsRun:
    """One-shot convenience mirroring :func:`repro.analytics.run_workload`."""
    placement = Placement(graph, partition)
    return ReferenceGasEngine(cost_model).run(
        graph, placement, workload,
        fault_schedule=fault_schedule,
        checkpoint_interval=checkpoint_interval,
        sampler=sampler)
