"""Cost model turning message/work counts into simulated time and bytes.

The paper measures three runtime quantities on its PowerLyra cluster:
total network I/O (GB), the per-machine computation-time distribution, and
end-to-end execution time.  The engine produces exact *counts* (edges
processed per machine, messages exchanged); this model converts them to
seconds and bytes with constants calibrated to commodity hardware — the
absolute values are arbitrary, but every comparison in the reproduced
figures depends only on ratios, which the counts determine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Calibration constants for the synchronous GAS engine.

    Attributes
    ----------
    seconds_per_edge:
        CPU time to process one edge in gather/scatter (~50M edges/s/core
        on one in-memory machine).
    seconds_per_vertex_op:
        CPU time for one apply / partial-aggregate combine.
    bytes_per_message:
        Wire size of one vertex-value message (value + ids + framing).
        PowerLyra messages carry an 8-byte value plus headers.
    bandwidth_bytes_per_sec:
        Per-machine effective NIC bandwidth.  Set below 10 GbE line rate
        to absorb serialisation/RPC overhead per byte.
    barrier_seconds:
        Synchronisation overhead per super-step (BSP barrier + RPC
        latency); this is what makes over-partitioning lose (Fig. 3's
        flattening beyond 64 partitions).

    The defaults are calibrated for this repo's *scaled-down* datasets
    (10^5–10^6 edges standing in for the paper's 10^9): the barrier is
    shrunk in proportion so the compute : network : overhead ratios of a
    billion-edge cluster run are preserved.  Absolute seconds are not
    meaningful — every reproduced comparison depends on ratios only.
    """

    seconds_per_edge: float = 2.0e-8
    seconds_per_vertex_op: float = 5.0e-8
    bytes_per_message: float = 32.0
    bandwidth_bytes_per_sec: float = 2.5e8
    barrier_seconds: float = 5.0e-5
    #: Fault-tolerance constants (exercised only when a fault schedule is
    #: supplied to the engine — they never affect fault-free runs).
    #: Cost of writing one coordinated checkpoint (all machines flush
    #: their vertex state; scaled down with the barrier).
    checkpoint_seconds: float = 2.0e-4
    #: State re-fetched during recovery, per lost master vertex …
    bytes_per_vertex_state: float = 64.0
    #: … and per edge stored on the failed machine (edges are re-read
    #: from the replicas' adjacency data).
    bytes_per_edge_state: float = 16.0

    def recovery_bytes(self, lost_vertices: int, lost_edges: int) -> float:
        """Bytes migrated to re-home a failed machine's graph state."""
        return (lost_vertices * self.bytes_per_vertex_state
                + lost_edges * self.bytes_per_edge_state)

    def compute_seconds(self, edge_ops: float, vertex_ops: float) -> float:
        """CPU seconds for one machine in one super-step."""
        return (edge_ops * self.seconds_per_edge
                + vertex_ops * self.seconds_per_vertex_op)

    def network_seconds(self, bytes_in_max_machine: float) -> float:
        """Wire time of a super-step, gated by the busiest NIC."""
        return bytes_in_max_machine / self.bandwidth_bytes_per_sec

    def message_bytes(self, num_messages: float) -> float:
        """Total bytes for *num_messages* vertex-value messages."""
        return num_messages * self.bytes_per_message


#: Shared default used by the experiment harness.
DEFAULT_COST_MODEL = CostModel()
