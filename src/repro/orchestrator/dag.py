"""The experiment suite as an explicit job DAG.

The paper's methodology is a dataflow: a *dataset* is generated, streamed
in a fixed *order*, *partitioned* by each algorithm at each cluster size,
the partitions are *placed*, *substrate runs* (GAS analytics / database
simulations) execute over the placements, *metrics* are reduced from the
runs, and each *table/figure* renders a slice of those metrics.  This
module makes that dataflow explicit as :class:`Job` nodes so the
scheduler can execute independent branches in parallel and resume from
whatever artifacts already exist.

Job kinds and their stage in the DAG::

    dataset ──► partition ──► analytics ─────┐
        │           │                        ├──► experiment
        └──► bindings ──► simulation ────────┘

(The *stream* stage is the ``order`` field of the partition jobs; the
*placement* and *metric* stages run inside their consumers — a placement
is derived in-process from the cached partition, and metric reduction is
part of each experiment's rendering.)

The per-experiment requirement tables below mirror the loops inside
:mod:`repro.experiments.figures` / ``tables`` / ``ablations``.  They are
deliberately *approximate*: anything an experiment needs that the planner
did not enumerate (e.g. the derived straggler run whose worker speeds
depend on a prior result) is simply computed inside the experiment job —
through the same cache — so a planner/experiment mismatch costs a little
parallelism, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OrchestratorError
from repro.experiments.datasets import (
    DATASETS,
    OFFLINE_DATASETS,
    scale_profile,
)
from repro.partitioning import OFFLINE_ALGORITHMS, ONLINE_ALGORITHMS

#: The dataset the online (database) experiments run on.
ONLINE_DATASET = "ldbc-snb"
#: Client counts of the paper's two load scenarios.
MEDIUM_LOAD_CLIENTS = 12
HIGH_LOAD_CLIENTS = 24

#: Execution stage per job kind (drives the deterministic serial order).
STAGE = {"dataset": 0, "partition": 1, "bindings": 1,
         "analytics": 2, "simulation": 2, "experiment": 3}


@dataclass
class Job:
    """One schedulable unit: an artifact to materialise or an experiment."""

    job_id: str
    kind: str
    params: dict = field(default_factory=dict)
    deps: tuple = ()


@dataclass
class JobGraph:
    """A validated DAG of jobs plus the experiment order to render in."""

    jobs: dict = field(default_factory=dict)
    experiments: tuple = ()

    def add(self, kind: str, params: dict, deps=()) -> str:
        job_id = _job_id(kind, params)
        existing = self.jobs.get(job_id)
        if existing is not None:
            existing.deps = tuple(sorted(set(existing.deps) | set(deps)))
            return job_id
        self.jobs[job_id] = Job(job_id, kind, dict(params),
                                tuple(sorted(set(deps))))
        return job_id

    def topological_order(self) -> list:
        """Deterministic schedule: by stage, then job id (serial order)."""
        order = sorted(self.jobs.values(),
                       key=lambda j: (STAGE[j.kind], j.job_id))
        seen = set()
        for job in order:
            missing = [d for d in job.deps if d not in self.jobs]
            if missing:
                raise OrchestratorError(
                    f"job {job.job_id} depends on unknown job(s) {missing}")
            if any(d not in seen and STAGE[self.jobs[d].kind] >= STAGE[job.kind]
                   for d in job.deps):
                raise OrchestratorError(
                    f"job {job.job_id} has a dependency at the same or a "
                    f"later stage — the DAG is not stage-stratified")
            seen.add(job.job_id)
        return order

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for job in self.jobs.values():
            out[job.kind] = out.get(job.kind, 0) + 1
        return out


def _job_id(kind: str, params: dict) -> str:
    parts = [str(params[key]) for key in sorted(params)]
    return f"{kind}:" + "/".join(parts) if parts else kind


# ----------------------------------------------------------------------
# Requirement enumeration (mirrors the experiment bodies)
# ----------------------------------------------------------------------
def build_plan(names, scale: str | None = None) -> JobGraph:
    """The job DAG covering *names* at *scale*.

    Shared artifacts are deduplicated: the Fig. 2 partitionings feed
    Figs. 1/3/4/13 as single partition jobs, and the online simulations
    Table 5 and Figs. 5–7 share appear once.
    """
    from repro.experiments import EXPERIMENTS

    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise OrchestratorError(f"unknown experiment(s): {unknown}")

    profile = scale_profile(scale)
    plan = JobGraph(experiments=tuple(names))
    for name in names:
        requirements = _REQUIREMENTS.get(name, _no_requirements)
        dep_ids = [_add_artifact(plan, spec) for spec in requirements(profile)]
        plan.add("experiment", {"name": name}, deps=dep_ids)
    return plan


def _add_artifact(plan: JobGraph, spec) -> str:
    kind, params = spec
    if kind == "dataset":
        return plan.add("dataset", params)
    if kind == "bindings":
        dataset = plan.add("dataset", {"dataset": params["dataset"]})
        return plan.add("bindings", params, deps=[dataset])
    if kind == "partition":
        dataset = plan.add("dataset", {"dataset": params["dataset"]})
        return plan.add("partition", params, deps=[dataset])
    if kind == "analytics":
        partition = plan.add("partition", {
            "dataset": params["dataset"], "algorithm": params["algorithm"],
            "k": params["k"]})
        return plan.add("analytics", params, deps=[partition])
    if kind == "simulation":
        partition = plan.add("partition", {
            "dataset": params["dataset"], "algorithm": params["algorithm"],
            "k": params["k"]})
        bindings = plan.add("bindings", {
            "dataset": params["dataset"], "kind": params["kind"]})
        return plan.add("simulation", params, deps=[partition, bindings])
    raise OrchestratorError(f"unknown artifact kind {kind!r}")


def _no_requirements(profile):
    return ()


def _datasets(*names):
    return [("dataset", {"dataset": d}) for d in names]


def _offline_analytics(datasets, algorithms, ks, workloads):
    return [("analytics", {"dataset": d, "algorithm": a, "k": k, "workload": w})
            for d in datasets for a in algorithms for k in ks for w in workloads]


def _partitions(datasets, algorithms, ks):
    return [("partition", {"dataset": d, "algorithm": a, "k": k})
            for d in datasets for a in algorithms for k in ks]


def _simulations(datasets, algorithms, ks, kinds, client_counts):
    return [("simulation", {"dataset": d, "algorithm": a, "k": k,
                            "kind": q, "clients": c})
            for d in datasets for a in algorithms for k in ks
            for q in kinds for c in client_counts]


OFFLINE_WORKLOADS = ("pagerank", "wcc", "sssp")


def _req_table3(profile):
    return _datasets(*DATASETS)


def _req_table4(profile):
    return _partitions([ONLINE_DATASET], ONLINE_ALGORITHMS,
                       profile.online_partitions)


def _req_table5(profile):
    return _simulations([ONLINE_DATASET], ONLINE_ALGORITHMS, [16],
                        ["one_hop"], [MEDIUM_LOAD_CLIENTS, HIGH_LOAD_CLIENTS])


def _req_figure1(profile):
    return _offline_analytics(["twitter"], OFFLINE_ALGORITHMS,
                              profile.offline_partitions, OFFLINE_WORKLOADS)


def _req_figure2(profile):
    return _partitions(OFFLINE_DATASETS, OFFLINE_ALGORITHMS,
                       profile.offline_partitions)


def _req_figure3(profile):
    return _offline_analytics(["twitter"], OFFLINE_ALGORITHMS,
                              profile.offline_partitions, OFFLINE_WORKLOADS)


def _req_figure4(profile):
    k = max(profile.offline_partitions)
    return _offline_analytics(OFFLINE_DATASETS, OFFLINE_ALGORITHMS, [k],
                              ["pagerank"])


def _req_figure5(profile):
    return _simulations([ONLINE_DATASET], ONLINE_ALGORITHMS,
                        profile.online_partitions, ["one_hop"],
                        [MEDIUM_LOAD_CLIENTS])


def _req_figure6(profile):
    return _simulations([ONLINE_DATASET], ONLINE_ALGORITHMS,
                        profile.online_partitions, ["one_hop", "two_hop"],
                        [MEDIUM_LOAD_CLIENTS, HIGH_LOAD_CLIENTS])


def _req_figure7(profile):
    return _simulations([ONLINE_DATASET], ONLINE_ALGORITHMS, [16],
                        ["one_hop"], [MEDIUM_LOAD_CLIENTS])


def _req_figure8(profile):
    # The MTS-W candidate (workload-aware weighted partition) is derived
    # inside the experiment; only the standard candidates are planned.
    return _req_figure7(profile)


def _req_figure9(profile):
    k = max(profile.offline_partitions[:-1])
    streaming = [a for a in OFFLINE_ALGORITHMS if a != "mts"]
    return _offline_analytics(OFFLINE_DATASETS, streaming, [k], ["pagerank"])


def _req_figure12(profile):
    return [("simulation", {"dataset": ONLINE_DATASET, "algorithm": a,
                            "k": k, "kind": "one_hop",
                            "clients": max(1, 192 // k)})
            for a in ONLINE_ALGORITHMS for k in profile.online_partitions]


def _req_figure13(profile):
    return _offline_analytics(OFFLINE_DATASETS, OFFLINE_ALGORITHMS,
                              profile.offline_partitions, OFFLINE_WORKLOADS)


def _req_figure14(profile):
    return _simulations(OFFLINE_DATASETS, ONLINE_ALGORITHMS, [16],
                        ["one_hop"], [MEDIUM_LOAD_CLIENTS, HIGH_LOAD_CLIENTS])


def _req_figure15(profile):
    return _simulations(OFFLINE_DATASETS, ONLINE_ALGORITHMS, [16],
                        ["one_hop"], [MEDIUM_LOAD_CLIENTS])


def _req_ablation_twitter(profile):
    return _datasets("twitter")


def _req_ablation_restreaming(profile):
    return (_datasets("usa-road")
            + _partitions(["usa-road"], ["mts"], [16]))


def _req_ablation_dynamic(profile):
    return (_datasets(ONLINE_DATASET)
            + _partitions([ONLINE_DATASET], ["mts"], [16]))


def _req_ablation_straggler(profile):
    # Healthy runs are planned; the degraded runs depend on which worker
    # turns out hottest and are computed (through the cache) in-experiment.
    return _simulations([ONLINE_DATASET], ["ecr", "ldg", "fennel", "mts"],
                        [16], ["one_hop"], [MEDIUM_LOAD_CLIENTS])


def _req_ablation_fault_tolerance(profile):
    # Faulted runs use a schedule built inside the experiment; the healthy
    # baselines and the partitions both halves share are planned.
    return (_simulations([ONLINE_DATASET], ["ecr", "ldg", "fennel"], [16],
                         ["one_hop"], [MEDIUM_LOAD_CLIENTS])
            + _partitions([ONLINE_DATASET], ["ecr", "ldg", "fennel", "hdrf"],
                          [16])
            + _offline_analytics([ONLINE_DATASET],
                                 ["ecr", "ldg", "fennel", "hdrf"], [16],
                                 ["pagerank"]))


def _req_ablation_sender_side(profile):
    return _partitions(["twitter"], ["ecr", "ldg", "vcr", "hdrf", "hcr"], [16])


def _req_online_service(profile):
    # The service loop derives everything else (partitions, traffic,
    # simulations) from its own seeds; only the base graph is planned.
    return _datasets(ONLINE_DATASET)


_REQUIREMENTS = {
    "table3": _req_table3,
    "table4": _req_table4,
    "table5": _req_table5,
    "figure1": _req_figure1,
    "figure2": _req_figure2,
    "figure3": _req_figure3,
    "figure4": _req_figure4,
    "figure5": _req_figure5,
    "figure6": _req_figure6,
    "figure7": _req_figure7,
    "figure8": _req_figure8,
    "figure9": _req_figure9,
    "figure12": _req_figure12,
    "figure13": _req_figure13,
    "figure14": _req_figure14,
    "figure15": _req_figure15,
    "ablation-stream-order": _req_ablation_twitter,
    "ablation-fennel-gamma": _req_ablation_twitter,
    "ablation-hdrf-lambda": _req_ablation_twitter,
    "ablation-ginger-threshold": _req_ablation_twitter,
    "ablation-restreaming": _req_ablation_restreaming,
    "ablation-dynamic-updates": _req_ablation_dynamic,
    "ablation-fault-tolerance": _req_ablation_fault_tolerance,
    "ablation-straggler": _req_ablation_straggler,
    "ablation-partitioning-cost": _req_ablation_twitter,
    "ablation-sender-side-aggregation": _req_ablation_sender_side,
    "online-service": _req_online_service,
    # The SLO ablation is the same service loop under different policies;
    # like online-service, only the base graph is a plannable artifact.
    "slo-ablation": _req_online_service,
    # The scale sweep spills its own synthetic streams to disk and caches
    # ingest summaries directly; nothing is plannable up front.
    "scale-sweep": _no_requirements,
}
