"""Job scheduling over a process pool, with determinism assertions.

Two execution modes over the same :mod:`~repro.orchestrator.dag` plan:

* **serial** (``jobs=1``, the default) — every job runs in this process,
  in the deterministic stage order, sharing one
  :class:`~repro.experiments.runner.ExperimentContext`.  This is the
  determinism-parity baseline: byte-for-byte the behaviour of the
  historical ``run_all`` loop.
* **parallel** (``jobs=N``) — ready jobs are fanned out across a
  ``ProcessPoolExecutor``.  Workers share intermediates through the
  content-addressed :class:`~repro.orchestrator.cache.ArtifactCache`, so
  the Fig. 2 partitionings computed by one worker feed the Fig. 1/3/4
  analytics computed by others.

Every finished report is hashed with :func:`report_digest` (a canonical
value hash that ignores the wall-clock provenance trailer).  The digest
is stored with the report artifact, and every later read — a warm run, a
resumed run, a parallel re-run — recomputes and compares it, so *any*
divergence between serial and parallel execution raises
:class:`~repro.errors.OrchestratorError` instead of silently producing a
different paper.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from repro.errors import OrchestratorError
from repro.experiments.datasets import active_scale
from repro.orchestrator.cache import MISS, ArtifactCache
from repro.orchestrator.dag import build_plan
from repro.telemetry import get_metrics
from repro.telemetry.timeseries import TimeSeriesSampler


# ----------------------------------------------------------------------
# Report digests
# ----------------------------------------------------------------------
def _canonical(obj):
    """A JSON-able canonical form of an arbitrary report payload.

    Value-based (no pickle memoisation, no object identity), so two runs
    that computed equal values — in different processes, from cache or
    from scratch — produce identical digests.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (np.integer, np.bool_)):
        return _canonical(obj.item())
    if isinstance(obj, np.floating):
        return repr(float(obj))
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return ["ndarray", str(data.dtype), list(data.shape),
                hashlib.sha256(data.tobytes()).hexdigest()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [type(obj).__name__,
                [[f.name, _canonical(getattr(obj, f.name))]
                 for f in dataclasses.fields(obj)]]
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return ["dict", [[_canonical(k), _canonical(v)]
                         for k, v in obj.items()]]
    return ["repr", repr(obj)]


def report_digest(report) -> str:
    """Canonical content hash of a report, ignoring provenance.

    Provenance carries real wall-clock time and is therefore excluded:
    two runs are "byte-identical" when every table cell, note and data
    payload matches.
    """
    payload = _canonical([
        report.experiment_id,
        report.title,
        [[t.title, t.headers, t.rows] for t in report.tables],
        report.notes,
        report.data,
    ])
    encoded = json.dumps(payload, sort_keys=False, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


def _report_fields(name: str, scale: str) -> dict:
    return {"experiment": name, "scale": scale}


# ----------------------------------------------------------------------
# Job execution (runs in pool workers and in-process)
# ----------------------------------------------------------------------
#: Per-process context reuse: pool processes execute many jobs; sharing
#: one ExperimentContext per (scale, cache) keeps the in-memory memo and
#: the dataset lru warm across jobs in the same worker.
_PROCESS_CONTEXTS: dict = {}


def _process_context(scale: str, cache_dir: str | None, fingerprint: str | None):
    from repro.experiments.runner import ExperimentContext

    key = (scale, cache_dir, fingerprint)
    ctx = _PROCESS_CONTEXTS.get(key)
    if ctx is None:
        cache = None
        if cache_dir is not None:
            cache = ArtifactCache(cache_dir, fingerprint=fingerprint)
        ctx = ExperimentContext(scale=scale, cache=cache)
        _PROCESS_CONTEXTS[key] = ctx
    return ctx


def reset_process_state() -> None:
    """Drop the per-process context memo (tests use this to simulate a
    fresh process between cold and warm runs)."""
    _PROCESS_CONTEXTS.clear()


def _execute_job(task: dict):
    """Execute one job; returns ``(job_id, digest, report)``.

    ``digest``/``report`` are ``None`` for artifact jobs — their value
    lives in the shared cache, not on the result pipe.
    """
    ctx = _process_context(task["scale"], task["cache_dir"],
                           task["fingerprint"])
    kind, params = task["kind"], task["params"]
    if kind == "dataset":
        ctx.graph(params["dataset"])
    elif kind == "partition":
        ctx.partition(params["dataset"], params["algorithm"], params["k"])
    elif kind == "bindings":
        ctx.bindings(params["dataset"], params["kind"])
    elif kind == "analytics":
        ctx.analytics_run(params["dataset"], params["algorithm"],
                          params["k"], params["workload"])
    elif kind == "simulation":
        ctx.simulation(params["dataset"], params["algorithm"], params["k"],
                       params["kind"], clients_per_worker=params["clients"])
    elif kind == "experiment":
        return (task["job_id"], *_execute_experiment(ctx, params["name"],
                                                     task["scale"]))
    else:
        raise OrchestratorError(f"unknown job kind {kind!r}")
    return (task["job_id"], None, None)


def _execute_experiment(ctx, name: str, scale: str):
    from repro.experiments import EXPERIMENTS

    fields = _report_fields(name, scale)
    if ctx.cache is not None:
        cached = ctx.cache.fetch("report", fields)
        if cached is not MISS:
            return _verify_digest(ctx.cache, name, scale, cached), cached
    report = EXPERIMENTS[name](ctx)
    digest = report_digest(report)
    if ctx.cache is not None:
        # store() raises if a racing run produced a different digest for
        # the same key — the serial/parallel byte-identity assertion.
        ctx.cache.store("report", fields, report, digest=digest)
    return digest, report


def _verify_digest(cache: ArtifactCache, name: str, scale: str, report) -> str:
    """Recompute a cached report's digest and compare to its sidecar."""
    digest = report_digest(report)
    meta = cache.meta("report", _report_fields(name, scale)) or {}
    stored = meta.get("digest")
    if stored is not None and stored != digest:
        raise OrchestratorError(
            f"report {name!r} read back from cache hashes to "
            f"{digest[:12]}…, but was stored as {stored[:12]}… — the cache "
            f"is corrupt or the experiment is non-deterministic")
    return digest


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------
@dataclass
class OrchestratorResult:
    """Outcome of one orchestrated run."""

    scale: str
    jobs: int
    #: Reports in request order, keyed by experiment name.
    reports: dict = field(default_factory=dict)
    #: Canonical content digest per report (provenance excluded).
    digests: dict = field(default_factory=dict)
    #: Jobs actually executed (after warm-cache pruning), by kind.
    executed: dict = field(default_factory=dict)
    #: Experiments served entirely from the report cache.
    cached_reports: int = 0
    wall_seconds: float = 0.0
    #: Snapshot of the cache's stats after the run (None when uncached).
    cache_stats: dict | None = None
    #: One MetricSample per finished job (process-global registry: the
    #: ``cache.*`` hit/miss counters plus the per-job wall histogram),
    #: in completion order.  Empty when ``sample_metrics=False``.
    metric_samples: list = field(default_factory=list)


def run_experiments(names=None, *, scale: str | None = None, jobs: int = 1,
                    cache: ArtifactCache | str | bool | None = True,
                    fingerprint: str | None = None,
                    progress=None,
                    sample_metrics: bool = True) -> OrchestratorResult:
    """Run *names* (default: every experiment) through the job DAG.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs everything serially
        in-process — determinism parity with the historical ``run_all``.
    cache:
        ``True`` for the default cache dir, a path or
        :class:`ArtifactCache` for a specific one, ``False``/``None`` to
        disable caching entirely (each experiment job is then
        self-contained).
    progress:
        Optional ``callback(done, total, job_id)`` invoked as jobs finish.
    sample_metrics:
        Record one :class:`~repro.telemetry.timeseries.MetricSample` of
        the process-global registry per finished job (cache hit/miss
        series + the ``orchestrator.job.wall_seconds`` histogram) into
        ``result.metric_samples``.  Times are wall-clock seconds since
        run start — the orchestrator lives outside simulated time, and
        its samples never enter any digest.
    """
    from repro.experiments import EXPERIMENTS

    names = list(EXPERIMENTS) if names is None else list(names)
    resolved_scale = active_scale(scale)
    started = time.time()

    store = None
    if isinstance(cache, ArtifactCache):
        store = cache
    elif cache is True:
        store = ArtifactCache(fingerprint=fingerprint)
    elif cache:
        store = ArtifactCache(cache, fingerprint=fingerprint)

    result = OrchestratorResult(scale=resolved_scale, jobs=jobs)

    plan = build_plan(names, resolved_scale)
    if store is None:
        # Without a shared store, artifact jobs cannot communicate their
        # results; each experiment job recomputes what it needs.
        plan.jobs = {job_id: job for job_id, job in plan.jobs.items()
                     if job.kind == "experiment"}
        for job in plan.jobs.values():
            job.deps = ()
        pending_names = list(names)
    else:
        pending_names = [n for n in names
                         if not store.contains("report",
                                               _report_fields(n, resolved_scale))]
        result.cached_reports = len(names) - len(pending_names)
        plan = _prune_plan(plan, pending_names)

    order = plan.topological_order()
    tasks = {
        job.job_id: {
            "job_id": job.job_id, "kind": job.kind, "params": job.params,
            "scale": resolved_scale,
            "cache_dir": None if store is None else str(store.root),
            "fingerprint": None if store is None else store.fingerprint,
        }
        for job in order
    }

    sampler = TimeSeriesSampler(get_metrics(), enabled=sample_metrics)
    if sample_metrics:
        job_hist = get_metrics().histogram("orchestrator.job.wall_seconds")
        last_tick = [0.0]

        def observe_job(job_wall: float) -> None:
            job_hist.observe(job_wall)
            # Wall clocks may repeat at coarse resolution; clamp to keep
            # the series monotone for the sampler's ordering contract.
            tick = max(time.time() - started, last_tick[0])
            last_tick[0] = tick
            sampler.sample(tick)
    else:
        observe_job = None

    outputs: dict[str, tuple] = {}
    if jobs <= 1 or len(order) <= 1:
        for index, job in enumerate(order):
            job_started = time.time()
            job_id, digest, report = _execute_job(tasks[job.job_id])
            outputs[job_id] = (digest, report)
            if observe_job is not None:
                observe_job(time.time() - job_started)
            if progress is not None:
                progress(index + 1, len(order), job_id)
    else:
        outputs = _run_parallel(plan, order, tasks, jobs, progress,
                                observe_job)

    for job in order:
        result.executed[job.kind] = result.executed.get(job.kind, 0) + 1

    for name in names:
        job_id = f"experiment:{name}"
        if job_id in outputs:
            digest, report = outputs[job_id]
        else:
            # Served from the report cache (warm run): load and verify.
            report = store.fetch("report", _report_fields(name, resolved_scale))
            if report is MISS:
                # The blob looked present at planning time but failed to
                # load (corrupt/truncated — fetch evicted it).  Recompute
                # in-process through the cache rather than failing the run.
                ctx = _process_context(resolved_scale, str(store.root),
                                       store.fingerprint)
                digest, report = _execute_experiment(ctx, name, resolved_scale)
            else:
                digest = _verify_digest(store, name, resolved_scale, report)
        result.reports[name] = report
        result.digests[name] = digest

    result.wall_seconds = round(time.time() - started, 3)
    result.metric_samples = sampler.samples
    if store is not None:
        result.cache_stats = store.stats()
    return result


def _prune_plan(plan, pending_names):
    """Keep only the jobs the still-uncached experiments need.

    This is what makes a warm run *touch no substrate code*: experiments
    whose reports are already cached are dropped along with every
    artifact job only they needed.
    """
    keep: set[str] = set()
    stack = [f"experiment:{name}" for name in pending_names]
    while stack:
        job_id = stack.pop()
        if job_id in keep:
            continue
        keep.add(job_id)
        stack.extend(plan.jobs[job_id].deps)
    plan.jobs = {job_id: job for job_id, job in plan.jobs.items()
                 if job_id in keep}
    return plan


def _run_parallel(plan, order, tasks, jobs, progress, observe_job=None):
    """Ready-set scheduling over a process pool.

    ``observe_job`` (when sampling) receives each job's submit-to-finish
    wall seconds — queue wait included, since that is what the pool's
    critical path actually pays.
    """
    outputs: dict[str, tuple] = {}
    submit_times: dict[str, float] = {}
    remaining = {job.job_id: set(job.deps) for job in order}
    dependents: dict[str, list] = {}
    for job in order:
        for dep in job.deps:
            dependents.setdefault(dep, []).append(job.job_id)

    total = len(order)
    completed = 0
    # Spawn, not the platform default: fork would hand workers a warm
    # copy of the parent (imported modules, registry state), so serial
    # and parallel runs could diverge on what a worker has preloaded.
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        futures = {}

        def submit_ready():
            ready = sorted(job_id for job_id, deps in remaining.items()
                           if not deps)
            for job_id in ready:
                del remaining[job_id]
                submit_times[job_id] = time.time()
                futures[pool.submit(_execute_job, tasks[job_id])] = job_id

        submit_ready()
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                job_id = futures.pop(future)
                try:
                    finished_id, digest, report = future.result()
                except Exception as exc:
                    raise OrchestratorError(
                        f"job {job_id} failed: {exc}") from exc
                outputs[finished_id] = (digest, report)
                completed += 1
                if observe_job is not None:
                    observe_job(time.time() - submit_times[finished_id])
                if progress is not None:
                    progress(completed, total, finished_id)
                for dependent in dependents.get(finished_id, ()):
                    remaining[dependent].discard(finished_id)
            submit_ready()
    if remaining:
        raise OrchestratorError(
            f"deadlocked jobs with unsatisfied dependencies: "
            f"{sorted(remaining)[:5]}")
    return outputs
