"""Content-addressed on-disk artifact cache for the experiment suite.

Every expensive intermediate of the experimental apparatus — partitions,
analytics runs, online simulations, binding sets, finished reports — is
addressable by a key that hashes *everything the value depends on*:

* the artifact kind (``partition``, ``analytics``, ``simulation``, …);
* the input fields (dataset name, scale profile, algorithm, k, seed,
  stream order, workload parameters, fault schedule, …);
* a **code fingerprint** — a digest over every ``repro/**/*.py`` source
  file, so any code change invalidates every artifact computed by the
  previous code (the safe default for a reproduction: stale artifacts
  can never masquerade as fresh results).

Values are versioned pickle blobs under ``<root>/objects/<aa>/<key>.pkl``
with a JSON meta sidecar per blob; the set of sidecars *is* the index
(:meth:`ArtifactCache.index`), so concurrent writers never contend on a
shared index file.  Writes are atomic (temp file + ``os.replace``), which
makes the cache safe for the orchestrator's process pool: two workers
racing to fill the same key both write identical content and the second
rename simply wins.

A corrupt or truncated blob is treated as a **miss** (and evicted), never
a crash — an interrupted ``kill -9`` mid-write costs a recomputation, not
a broken cache.

Hit/miss/put/error counters are wired into the process-global
:class:`repro.telemetry.MetricsRegistry` under the ``cache.*`` namespace
(``cache.hits``, ``cache.misses.partition``, …).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.errors import OrchestratorError

#: Bump when the blob layout changes; part of every key, so old blobs
#: become unreachable (and collectable via ``gc``) rather than misread.
CACHE_SCHEMA_VERSION = 1

#: Default cache location, overridable via ``$REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Sentinel returned by :meth:`ArtifactCache.fetch` on a miss, so cached
#: values of ``None`` stay representable.
MISS: Any = object()


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (computed once per process).

    Hashes relative path + bytes of each ``*.py`` under the installed
    ``repro`` package in sorted order.  Any edit to any module therefore
    produces a different fingerprint — and, because the fingerprint is
    folded into every artifact key, a cold cache.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:20]


def artifact_key(kind: str, fields: dict, *, fingerprint: str | None = None) -> str:
    """Content address of one artifact.

    ``fields`` must be JSON-serialisable (strings, numbers, booleans,
    ``None``, and lists/tuples/dicts thereof); anything richer (a fault
    schedule, a cost model) is keyed by its deterministic ``repr``
    upstream.  The key is the SHA-256 of the canonical JSON encoding of
    ``(schema, kind, fingerprint, fields)``.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": kind,
        "code": code_fingerprint() if fingerprint is None else fingerprint,
        "fields": fields,
    }
    try:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise OrchestratorError(
            f"artifact fields for kind {kind!r} are not JSON-serialisable: "
            f"{fields!r}") from exc
    return hashlib.sha256(canonical.encode()).hexdigest()


class ArtifactCache:
    """Content-addressed pickle store with telemetry counters.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    fingerprint:
        Code fingerprint folded into every key.  Defaults to
        :func:`code_fingerprint`; tests pin it to probe key sensitivity
        without editing source files.
    metrics:
        The :class:`~repro.telemetry.MetricsRegistry` receiving the
        ``cache.*`` counters.  Defaults to the process-global registry.
    """

    def __init__(self, root: str | Path | None = None, *,
                 fingerprint: str | None = None,
                 metrics: Any = None) -> None:
        from repro import telemetry

        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        self.metrics = metrics if metrics is not None else telemetry.get_metrics()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def key(self, kind: str, fields: dict) -> str:
        return artifact_key(kind, fields, fingerprint=self.fingerprint)

    def _blob_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def fetch(self, kind: str, fields: dict) -> Any:
        """The cached value for ``(kind, fields)``, or :data:`MISS`.

        A blob that cannot be unpickled (corrupt, truncated, foreign
        schema) counts as a miss, is evicted, and bumps ``cache.errors``.
        """
        key = self.key(kind, fields)
        path = self._blob_path(key)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
            if (not isinstance(record, dict)
                    or record.get("schema") != CACHE_SCHEMA_VERSION
                    or record.get("kind") != kind
                    or "payload" not in record):
                raise OrchestratorError(f"malformed cache record for {key}")
            value = record["payload"]
        except FileNotFoundError:
            self._count("misses", kind)
            return MISS
        except Exception:
            # Corrupt/truncated/alien blob: evict and treat as a miss.
            self._count("errors", kind)
            self._count("misses", kind)
            self._evict(key)
            return MISS
        self._count("hits", kind)
        return value

    def store(self, kind: str, fields: dict, value: Any, *,
              digest: str | None = None) -> str:
        """Atomically persist ``value``; returns its key.

        When ``digest`` is given and an existing meta sidecar carries a
        *different* digest for the same key, an
        :class:`~repro.errors.OrchestratorError` is raised — this is the
        byte-identity assertion the orchestrator runs on every report
        (serial, parallel and resumed runs must all agree).
        """
        key = self.key(kind, fields)
        if digest is not None:
            existing = self.meta(kind, fields)
            if existing is not None and existing.get("digest") not in (None, digest):
                raise OrchestratorError(
                    f"cache digest mismatch for {kind} artifact {key[:12]}…: "
                    f"stored {existing['digest'][:12]}…, recomputed {digest[:12]}… "
                    f"(non-deterministic experiment or stale cache)")
        blob = pickle.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "kind": kind, "payload": value},
            protocol=pickle.HIGHEST_PROTOCOL)
        meta = {
            "key": key,
            "kind": kind,
            "fields": fields,
            "code": self.fingerprint,
            "schema": CACHE_SCHEMA_VERSION,
            "size": len(blob),
            "created": round(time.time(), 3),
        }
        if digest is not None:
            meta["digest"] = digest
        self._atomic_write(self._blob_path(key), blob)
        self._atomic_write(self._meta_path(key),
                           (json.dumps(meta, sort_keys=True) + "\n").encode())
        self._count("puts", kind)
        return key

    def contains(self, kind: str, fields: dict) -> bool:
        """Whether a blob exists for the key (no counter side effects)."""
        return self._blob_path(self.key(kind, fields)).exists()

    def meta(self, kind: str, fields: dict) -> dict | None:
        """The meta sidecar for ``(kind, fields)``, or ``None``."""
        try:
            return json.loads(self._meta_path(self.key(kind, fields)).read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    # ------------------------------------------------------------------
    # Index & maintenance
    # ------------------------------------------------------------------
    def index(self) -> list[dict]:
        """All meta records, sorted by key (sidecar scan — no lock files)."""
        objects = self.root / "objects"
        entries = []
        for meta_path in sorted(objects.glob("*/*.json")):
            try:
                entries.append(json.loads(meta_path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return entries

    def stats(self) -> dict:
        """Entry/byte totals per kind plus this process's counters."""
        by_kind: dict[str, dict] = {}
        total_entries = total_bytes = stale = 0
        for entry in self.index():
            kind = entry.get("kind", "?")
            bucket = by_kind.setdefault(kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += int(entry.get("size", 0))
            total_entries += 1
            total_bytes += int(entry.get("size", 0))
            if entry.get("code") != self.fingerprint:
                stale += 1
        return {
            "root": str(self.root),
            "code_fingerprint": self.fingerprint,
            "entries": total_entries,
            "bytes": total_bytes,
            "stale_entries": stale,
            "kinds": {k: by_kind[k] for k in sorted(by_kind)},
            "counters": {
                name: self.metrics.value(name)
                for name in self.metrics.names() if name.startswith("cache.")
            },
        }

    def gc(self, *, max_age_days: float | None = None) -> dict:
        """Remove invalidated entries; returns ``{"removed", "bytes"}``.

        An entry is collectable when its code fingerprint differs from
        the current one (the code that produced it no longer exists) or,
        with ``max_age_days``, when it is older than that.  Orphan temp
        files from interrupted writes are always removed.
        """
        removed = freed = 0
        now = time.time()
        for entry in self.index():
            stale = entry.get("code") != self.fingerprint
            expired = (max_age_days is not None
                       and now - float(entry.get("created", now))
                       > max_age_days * 86400.0)
            if stale or expired:
                self._evict(entry["key"])
                removed += 1
                freed += int(entry.get("size", 0))
        for tmp in (self.root / "objects").glob("*/.tmp-*"):
            tmp.unlink(missing_ok=True)
        return {"removed": removed, "bytes": freed}

    def clear(self) -> int:
        """Remove every entry; returns the number of blobs removed."""
        removed = 0
        for blob in (self.root / "objects").glob("*/*.pkl"):
            blob.unlink(missing_ok=True)
            removed += 1
        for meta in (self.root / "objects").glob("*/*.json"):
            meta.unlink(missing_ok=True)
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _evict(self, key: str) -> None:
        self._blob_path(key).unlink(missing_ok=True)
        self._meta_path(key).unlink(missing_ok=True)

    def _count(self, outcome: str, kind: str) -> None:
        self.metrics.counter(f"cache.{outcome}").inc()
        self.metrics.counter(f"cache.{outcome}.{kind}").inc()

    # Convenience accessors for tests and the CLI ----------------------
    @property
    def hits(self) -> int:
        return int(self.metrics.value("cache.hits"))

    @property
    def misses(self) -> int:
        return int(self.metrics.value("cache.misses"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache({str(self.root)!r}, code={self.fingerprint[:8]})"
