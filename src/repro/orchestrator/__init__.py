"""Experiment orchestration: job DAG, artifact cache, parallel scheduler.

The experiment suite is a dependency graph — datasets feed partitionings,
partitionings feed placements and analytics runs, binding sets feed
database simulations, and everything feeds the tables and figures.  This
package makes that graph explicit:

* :mod:`~repro.orchestrator.cache` — a content-addressed on-disk store
  for expensive intermediates, keyed by everything that determines their
  bytes (dataset, scale, algorithm, k, seed, stream order, and a
  fingerprint of the source tree).
* :mod:`~repro.orchestrator.dag` — the planner: experiment names in,
  stage-stratified :class:`JobGraph` out.
* :mod:`~repro.orchestrator.scheduler` — serial or process-pool
  execution with per-report digest assertions, so parallel runs are
  provably byte-identical to serial ones.

See ``docs/orchestrator.md`` for the model, cache layout, invalidation
rules and resume semantics.
"""

from repro.orchestrator.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    MISS,
    ArtifactCache,
    artifact_key,
    code_fingerprint,
    default_cache_dir,
)
from repro.orchestrator.dag import Job, JobGraph, build_plan
from repro.orchestrator.scheduler import (
    OrchestratorResult,
    report_digest,
    reset_process_state,
    run_experiments,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "MISS",
    "ArtifactCache",
    "artifact_key",
    "code_fingerprint",
    "default_cache_dir",
    "Job",
    "JobGraph",
    "build_plan",
    "OrchestratorResult",
    "report_digest",
    "reset_process_state",
    "run_experiments",
]
