"""Closed-loop discrete-event simulation of the graph-database cluster.

Reproduces the paper's online-query methodology (Section 5.2): a cluster
of ``k`` workers serves 1-hop / 2-hop / shortest-path queries issued by
``C`` concurrent closed-loop clients per worker — 12 for the paper's
*medium load* ("high utilization"), 24 for *high load* ("overloaded").
Each client issues its next query the moment the previous one completes.

The simulation is an exact FIFO single-server queueing model per worker:
requests arrive (after a half-RTT if remote), queue, occupy the server
for a deterministic service time, and respond (plus the other half-RTT).
A query advances phase by phase; a phase completes when its slowest
request responds.  Everything is deterministic given the binding set, so
two partitioning algorithms are compared on *exactly* the same workload —
the paper's setup.

What emerges, rather than being programmed in:

* lower edge-cut ratio → fewer/larger/more-local requests → less
  per-request overhead and network time → higher throughput under medium
  load (Fig. 6, Table 4→Fig. 5 correlation);
* workload skew + clustering partitioners → hot workers → queueing →
  collapsed tail latency under high load (Table 5, Figs. 7/15);
* more workers at fixed client count → more remote fan-out per query →
  throughput degradation beyond ~16 workers (Fig. 12).

Event-loop representation
-------------------------
The heap holds plain ``(time, seq, kind, payload)`` tuples — kind is a
small int — so ordering compares run in C instead of a dataclass
``__lt__`` (which dominated the old profile at >500k calls per run).
Fault-free runs additionally take a *batched* fast path: each binding's
routed plan is precompiled once into per-phase request columns
(:class:`_PhaseColumns` — service times, network deltas, byte totals,
merge cost), a phase's requests are issued in one pass over those
columns, and the phase's ``m`` response events collapse into a single
``_PHASE_SETTLED`` event at the lexicographically-last ``(time, seq)``
of the would-be responses.  Intermediate response events have no side
effects (they only decrement an outstanding counter), and the collapsed
event consumes all ``m`` sequence numbers, so the heap's tie-breaking,
the sampler's tick boundaries, and every float accumulation order are
*identical* to the scalar loop — ``repro.database._reference`` plus
``tests/test_substrate_equivalence.py`` hold the fast path to
byte-identical results.  Faulty runs keep the scalar per-request path
verbatim (the ChaosHarness same-arithmetic-in-the-same-order contract).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.database.cluster import Cluster, ServiceModel
from repro.database.queries import plan_query
from repro.database.router import FailoverRouter, RoutedQuery, route_plan
from repro.database.workload import QueryBinding
from repro.errors import ConfigurationError, QueryTimeoutError, WorkerFailedError
from repro.faults import (
    DEFAULT_RETRY_POLICY,
    NO_FAULTS,
    FaultSchedule,
    ReplicaMap,
    RetryPolicy,
)
from repro.graph.digraph import Graph
from repro.metrics.runtime import LatencySummary, latency_summary
from repro.telemetry import get_tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.tools import sanitize

#: Wire size of one vertex record (id + properties + framing).
BYTES_PER_VERTEX_RECORD = 128.0
#: Fixed wire overhead of one remote request/response pair.
BYTES_PER_REMOTE_REQUEST = 256.0

# Heap-event kinds.  Events are ``(time, seq, kind, payload)`` tuples;
# ``seq`` is unique so the kind int never participates in ordering.
_START = 0
_PHASE_DONE = 1
_PHASE_SETTLED = 2  # fast path: a whole phase's responses, collapsed
_RESPONSE = 3
_TIMEOUT = 4
_RETRY = 5
_BACKGROUND = 6
_ABORT = 7


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated run.

    The run's scalar counters live in the ``db.*`` namespace of
    :attr:`metrics` (a :class:`~repro.telemetry.metrics.MetricsRegistry`
    snapshot of the event loop); the historical attribute spellings —
    ``completed_queries``, ``timeouts``, ``network_bytes``, … — are
    properties over that registry, so existing callers and the
    ChaosHarness field comparisons are unaffected.
    """

    num_workers: int
    clients_per_worker: int
    duration: float
    warmup: float
    latencies: np.ndarray
    vertices_read_per_worker: np.ndarray
    requests_per_worker: np.ndarray
    busy_seconds_per_worker: np.ndarray
    metrics: MetricsRegistry
    requests_lost_per_worker: np.ndarray | None = None

    @property
    def completed_queries(self) -> int:
        """Queries finished after warmup (counter ``db.queries.completed``)."""
        return int(self.metrics.value("db.queries.completed"))

    @property
    def network_bytes(self) -> float:
        """Bytes moved by remote requests (counter ``db.network_bytes``)."""
        return float(self.metrics.value("db.network_bytes"))

    @property
    def remote_reads(self) -> int:
        """Vertex reads served off-coordinator (``db.reads.remote``)."""
        return int(self.metrics.value("db.reads.remote"))

    @property
    def total_reads(self) -> int:
        """All vertex reads (counter ``db.reads.total``)."""
        return int(self.metrics.value("db.reads.total"))

    @property
    def timeouts(self) -> int:
        """Requests whose deadline fired (counter ``db.timeouts``)."""
        return int(self.metrics.value("db.timeouts"))

    @property
    def retries(self) -> int:
        """Requests re-issued to a replica (counter ``db.retries``)."""
        return int(self.metrics.value("db.retries"))

    @property
    def failed_queries(self) -> int:
        """Queries lost after warmup (counter ``db.queries.failed``)."""
        return int(self.metrics.value("db.queries.failed"))

    @property
    def dropped_requests(self) -> int:
        """Requests dropped on the wire (counter ``db.requests.dropped``)."""
        return int(self.metrics.value("db.requests.dropped"))

    @property
    def availability(self) -> float:
        """Fraction of post-warmup queries that completed (1.0 = no loss).

        The SLA-style metric of the fault-tolerance experiments: a query
        counts as unavailable when it exhausted its retry budget or its
        start vertex's entire replica chain was down.
        """
        attempted = self.completed_queries + self.failed_queries
        if attempted == 0:
            return 1.0
        return self.completed_queries / attempted

    @property
    def throughput(self) -> float:
        """Completed queries per simulated second (post-warmup)."""
        window = self.duration - self.warmup
        if window <= 0:
            return 0.0
        return self.completed_queries / window

    def latency(self) -> LatencySummary:
        """Mean / p50 / p99 of post-warmup query latencies (Table 5)."""
        return latency_summary(self.latencies)

    def read_distribution(self) -> np.ndarray:
        """Per-worker vertex reads (the Fig. 7/15 distribution)."""
        return self.vertices_read_per_worker


class _QueryState:
    """Progress of one in-flight query (scalar/faulty path)."""

    __slots__ = ("routed", "client", "phase", "outstanding", "received",
                 "started", "phase_ready", "coordinator", "failed", "span",
                 "hop_span")

    def __init__(self, routed: RoutedQuery, client: int, started: float):
        self.routed = routed
        self.client = client
        self.phase = 0
        self.outstanding = 0
        #: Responses that actually arrived this phase — the merge below
        #: may only charge for these, not the planned fan-out.
        self.received = 0
        self.started = started
        self.phase_ready = started
        #: Effective coordinator — the routed primary unless it was down
        #: at query start and a replica took over.
        self.coordinator = routed.coordinator
        #: Set when any request of this query exhausted its retry budget.
        self.failed = False
        #: Open telemetry span ids (0 = tracing disabled).
        self.span = 0
        self.hop_span = 0


class _Request:
    """One storage request in flight, tracked for timeout/retry."""

    __slots__ = ("state", "primary", "reads", "attempt")

    def __init__(self, state: _QueryState, primary: int, reads: int,
                 attempt: int):
        self.state = state
        self.primary = primary
        self.reads = reads
        self.attempt = attempt


class _PhaseColumns:
    """One routed phase, precompiled for the batched fast path.

    ``rows`` holds one ``(worker, reads, service_seconds, net_delta,
    remote)`` tuple per request — every float computed by the *same
    expression* the scalar path uses (``model.service_seconds(reads) /
    worker.speed``; half-RTT network delta), so issuing from the columns
    reproduces the scalar arithmetic bit for bit.  ``route_plan`` groups
    a phase's reads by distinct owner, so the workers in ``rows`` are
    pairwise distinct — which is what lets a whole phase issue in one
    pass without intra-phase queue interactions.
    """

    __slots__ = ("rows", "fanout", "total_reads", "remote_reads",
                 "wire_bytes", "merge_seconds")

    def __init__(self, rows: tuple, fanout: int, total_reads: int,
                 remote_reads: int, wire_bytes: float,
                 merge_seconds: float):
        self.rows = rows
        self.fanout = fanout
        self.total_reads = total_reads
        self.remote_reads = remote_reads
        self.wire_bytes = wire_bytes
        self.merge_seconds = merge_seconds


class _QueryColumns:
    """A routed query's phases in column form, cached per binding."""

    __slots__ = ("kind", "coordinator", "phases", "num_phases")

    def __init__(self, kind: str, coordinator: int, phases: tuple):
        self.kind = kind
        self.coordinator = coordinator
        self.phases = phases
        self.num_phases = len(phases)


class _FastQuery:
    """Progress of one in-flight query (fault-free fast path)."""

    __slots__ = ("cols", "client", "phase", "started", "span", "hop_span")

    def __init__(self, cols: _QueryColumns, client: int, started: float):
        self.cols = cols
        self.client = client
        self.phase = 0
        self.started = started
        self.span = 0
        self.hop_span = 0


class ClosedLoopSimulation:
    """Closed-loop query simulation over a partitioned graph store.

    Parameters
    ----------
    graph:
        The stored graph (query plans are computed against it).
    vertex_owner:
        Worker id per vertex — a :class:`~repro.partitioning.base.
        VertexPartition` assignment (JanusGraph's edge-cut placement).
    clients_per_worker:
        12 = the paper's medium load, 24 = high load.
    service_model:
        Cluster timing constants.
    fanout_limit:
        Optional 2-hop frontier cap (see :func:`repro.database.queries.
        two_hop`).
    fault_schedule:
        Optional :class:`~repro.faults.FaultSchedule`.  ``None`` or the
        empty schedule leaves every result bit-identical to a run without
        fault injection (the :class:`~repro.faults.ChaosHarness`
        invariant).
    retry_policy:
        Client timeout/retry behaviour under faults (defaults to
        :data:`~repro.faults.DEFAULT_RETRY_POLICY`).
    k_safety:
        Replica-chain length of the failover map (clamped to the cluster
        size); 1 disables failover.
    raise_on_failure:
        When True, the first unavailable query raises
        :class:`~repro.errors.QueryTimeoutError` /
        :class:`~repro.errors.WorkerFailedError` instead of being counted.
    """

    def __init__(self, graph: Graph, vertex_owner, num_workers: int, *,
                 clients_per_worker: int = 12,
                 service_model: ServiceModel | None = None,
                 fanout_limit: int | None = 64,
                 worker_speeds=None,
                 fault_schedule: FaultSchedule | None = None,
                 retry_policy: RetryPolicy | None = None,
                 k_safety: int = 2,
                 raise_on_failure: bool = False):
        owner = np.asarray(vertex_owner, dtype=np.int64)
        if owner.shape != (graph.num_vertices,):
            raise ConfigurationError("vertex_owner must map every vertex")
        if owner.size and (owner.min() < 0 or owner.max() >= num_workers):
            raise ConfigurationError("vertex_owner contains invalid worker ids")
        if clients_per_worker < 1:
            raise ConfigurationError("clients_per_worker must be >= 1")
        self.graph = graph
        self.owner = owner
        self.cluster = Cluster(num_workers, owner, service_model,
                               worker_speeds=worker_speeds)
        self.clients_per_worker = clients_per_worker
        self.fanout_limit = fanout_limit
        self.fault_schedule = fault_schedule or NO_FAULTS
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.replica_map = ReplicaMap(num_workers,
                                      max(1, min(k_safety, num_workers)))
        self.raise_on_failure = raise_on_failure
        self._plan_cache: dict[tuple, RoutedQuery] = {}
        # Worker speeds and the (scaled) service model are fixed at
        # construction, so compiled columns stay valid across runs.
        self._columns_cache: dict[tuple, _QueryColumns] = {}

    # ------------------------------------------------------------------
    def _routed(self, binding: QueryBinding) -> RoutedQuery:
        key = (binding.kind, binding.start_vertex, binding.target_vertex)
        cached = self._plan_cache.get(key)
        if cached is None:
            plan = plan_query(self.graph, binding.kind, binding.start_vertex,
                              target_vertex=binding.target_vertex,
                              fanout_limit=self.fanout_limit)
            cached = route_plan(plan, self.owner)
            self._plan_cache[key] = cached
        return cached

    def _columns(self, binding: QueryBinding) -> _QueryColumns:
        """Compile *binding*'s routed plan into fast-path columns."""
        key = (binding.kind, binding.start_vertex, binding.target_vertex)
        cached = self._columns_cache.get(key)
        if cached is None:
            routed = self._routed(binding)
            model = self.cluster.model
            workers = self.cluster.workers
            half_rtt = model.network_rtt_seconds / 2
            coordinator = routed.coordinator
            coord_speed = workers[coordinator].speed
            phases = []
            for phase in routed.phases:
                rows = []
                total_reads = 0
                remote_reads = 0
                wire_bytes = 0.0
                for worker_id, reads in phase.requests:
                    remote = worker_id != coordinator
                    service = (model.service_seconds(reads)
                               / workers[worker_id].speed)
                    rows.append((worker_id, reads, service,
                                 half_rtt if remote else 0.0, remote))
                    total_reads += reads
                    if remote:
                        remote_reads += reads
                        wire_bytes += (BYTES_PER_REMOTE_REQUEST
                                       + reads * BYTES_PER_VERTEX_RECORD)
                merge = (model.coordinator_overhead_seconds
                         + len(rows) * model.per_response_seconds) \
                    / coord_speed
                phases.append(_PhaseColumns(tuple(rows), len(rows),
                                            total_reads, remote_reads,
                                            wire_bytes, merge))
            cached = _QueryColumns(routed.kind, coordinator, tuple(phases))
            self._columns_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    def run(self, bindings: list[QueryBinding], *, duration: float = 2.0,
            warmup_fraction: float = 0.25,
            background_work=None,
            migrating_vertices=None,
            migration_wait_seconds: float = 0.0,
            sampler=None,
            sample_interval: float | None = None) -> SimulationResult:
        """Simulate *duration* seconds of closed-loop load.

        Clients cycle through *bindings* at staggered offsets, so every
        algorithm under comparison serves the same query sequence.
        Metrics cover completions after ``warmup_fraction * duration``.

        The three optional knobs model an in-flight partition migration
        (see :mod:`repro.service`) and are **exact no-ops** when left at
        their defaults — the same ChaosHarness-style invariant as
        ``fault_schedule``:

        * ``background_work`` — ``(time, worker, seconds)`` triples; each
          occupies *worker*'s FIFO server for *seconds* starting no
          earlier than *time* (a migration batch shipping vertex state —
          rate-limited by the caller, so it delays but never stalls
          queries).
        * ``migrating_vertices`` — vertex ids temporarily double-homed
          mid-move; a query *starting* at one of them first waits
          ``migration_wait_seconds`` (the ownership-handshake retry) —
          counted in ``db.migration.waits``.

        ``sampler`` — an optional
        :class:`~repro.telemetry.timeseries.TimeSeriesSampler`; the run
        rebinds it to its own registry and snapshots it every
        ``sample_interval`` simulated seconds (default ``duration / 10``)
        plus once at the horizon, turning the run into a latency/
        throughput trajectory instead of one end-of-run aggregate.  A
        disabled (or absent) sampler adds zero registry calls.
        """
        if not bindings:
            raise ConfigurationError("bindings must be non-empty")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if migration_wait_seconds < 0:
            raise ConfigurationError("migration_wait_seconds must be >= 0")
        migrating = None
        if migrating_vertices is not None:
            moving = np.asarray(migrating_vertices, dtype=np.int64)
            if moving.size:
                migrating = frozenset(moving.tolist())
        self.cluster.reset()
        model = self.cluster.model
        schedule = self.fault_schedule
        policy = self.retry_policy
        #: The fault hooks below are exact no-ops when the schedule is
        #: empty — guarded by ``faulty`` so a fault-free run performs the
        #: *same arithmetic in the same order* as before fault injection
        #: existed (the ChaosHarness invariant).
        faulty = not schedule.is_empty
        router = FailoverRouter(self.replica_map, schedule)
        num_workers = self.cluster.num_workers
        num_clients = self.clients_per_worker * num_workers
        warmup = duration * warmup_fraction
        think = model.think_seconds
        tracer = get_tracer()
        tracing = tracer.enabled

        events: list[tuple] = []
        heappush = heapq.heappush
        sequence = itertools.count()
        next_seq = sequence.__next__
        request_ids = itertools.count()
        retry_ids = itertools.count()
        binding_cursor = [int(i * len(bindings) / num_clients)
                          for i in range(num_clients)]

        latencies: list[float] = []
        #: The run's counters: the same increments, in the same order, as
        #: the plain ints this loop used to carry — just named.
        metrics = MetricsRegistry()
        c_completed = metrics.counter("db.queries.completed")
        c_bytes = metrics.counter("db.network_bytes")
        c_remote = metrics.counter("db.reads.remote")
        c_total = metrics.counter("db.reads.total")
        c_timeouts = metrics.counter("db.timeouts")
        c_retries = metrics.counter("db.retries")
        c_failed = metrics.counter("db.queries.failed")
        c_dropped = metrics.counter("db.requests.dropped")
        # Created only when a migration is in flight, so a plain run's
        # metrics registry is byte-identical to the pre-service layout.
        c_migration_waits = metrics.counter("db.migration.waits") \
            if migrating is not None else None
        c_migration_busy = metrics.counter("db.migration.busy_seconds") \
            if background_work else None
        # Time-series sampling: tick the sampler at fixed simulated-time
        # intervals inside the event loop.  Disabled/absent samplers cost
        # nothing — not a single registry call.
        sampling = sampler is not None and sampler.enabled
        tick = 0.0
        next_tick = 0.0
        if sampling:
            sampler.registry = metrics
            tick = duration / 10.0 if sample_interval is None \
                else float(sample_interval)
            if tick <= 0:
                raise ConfigurationError("sample_interval must be positive")
            next_tick = tick
        root_span = tracer.begin(
            "db.run", 0.0, parent=None,
            num_workers=num_workers,
            clients_per_worker=self.clients_per_worker,
            duration=duration) if tracing else 0

        # Fast-path worker state: the FIFO-server clock and the per-run
        # stat accumulators live in plain lists (folded back into
        # ``Worker.stats`` after the loop).  Each worker's values see the
        # same additions in the same event order as the scalar path, so
        # the folded totals are bit-identical.
        fast = not faulty
        workers = self.cluster.workers
        busy = [0.0] * num_workers
        st_requests = [0] * num_workers
        st_reads = [0] * num_workers
        st_busy = [0.0] * num_workers
        st_remote = [0] * num_workers

        def push(time: float, kind: int, payload) -> None:
            heappush(events, (time, next_seq(), kind, payload))

        def next_binding(client: int) -> QueryBinding:
            index = binding_cursor[client]
            binding_cursor[client] = (index + 1) % len(bindings)
            return bindings[index]

        # -- fault-free fast path ---------------------------------------
        def start_query_fast(client: int, now: float) -> None:
            binding = next_binding(client)
            cols = self._columns(binding)
            fq = _FastQuery(cols, client, now)
            if migrating is not None and binding.start_vertex in migrating:
                # The start vertex is mid-migration (double-homed): the
                # client's first request races the ownership handshake and
                # is answered only after one bounded retry wait.  Applied
                # once per query, at start — migration delays reads, it
                # never drops them.
                c_migration_waits.inc()
                ready = now + migration_wait_seconds
                if tracing:
                    tracer.point("db.migration.wait", now, parent=root_span,
                                 vertex=binding.start_vertex, client=client)
                now = ready
            if tracing:
                fq.span = tracer.begin(
                    "db.query", now, parent=root_span, kind=cols.kind,
                    client=client, coordinator=cols.coordinator)
                tracer.point("db.route", now, parent=fq.span,
                             coordinator=cols.coordinator,
                             phases=cols.num_phases)
            issue_phase_fast(fq, now)

        def issue_phase_fast(fq: _FastQuery, now: float) -> None:
            cols = fq.cols
            phase = fq.phase
            while phase < cols.num_phases \
                    and cols.phases[phase].fanout == 0:
                phase += 1
            fq.phase = phase
            if phase >= cols.num_phases:
                finish_query_fast(fq, now)
                return
            pcols = cols.phases[phase]
            if tracing:
                fq.hop_span = tracer.begin(
                    "db.hop", now, parent=fq.span, phase=phase,
                    fanout=pcols.fanout)
            # One pass over the phase's precompiled request columns.  The
            # workers are pairwise distinct (route_plan groups by owner),
            # so each request sees the server clock exactly as the scalar
            # loop would.  The phase's m response events collapse into one
            # _PHASE_SETTLED event at the last (time, seq); the m sequence
            # numbers are still consumed so heap tie-breaking downstream
            # is unchanged.
            best_time = -1.0
            best_seq = 0
            for worker_id, reads, service, delta, remote in pcols.rows:
                arrival = now + delta
                server = busy[worker_id]
                begin = arrival if arrival > server else server
                completion = begin + service
                busy[worker_id] = completion
                st_requests[worker_id] += 1
                st_reads[worker_id] += reads
                st_busy[worker_id] += service
                if remote:
                    st_remote[worker_id] += 1
                response = completion + delta
                seq = next_seq()
                if response >= best_time:
                    best_time = response
                    best_seq = seq
                if tracing:
                    # The request's whole life is known analytically here,
                    # so the span is recorded at once: queueing is
                    # begin-arrival, service is completion-begin.
                    rid = tracer.begin("db.request", now,
                                       parent=fq.hop_span,
                                       worker=worker_id, reads=reads,
                                       attempt=0, remote=remote,
                                       queue_seconds=begin - arrival,
                                       service_seconds=service)
                    tracer.end(rid, response)
            c_total.inc(pcols.total_reads)
            if pcols.remote_reads:
                c_remote.inc(pcols.remote_reads)
                c_bytes.inc(pcols.wire_bytes)
            heappush(events, (best_time, best_seq, _PHASE_SETTLED, fq))

        def on_phase_settled(fq: _FastQuery, now: float) -> None:
            # Merge the phase's responses on the coordinator: this
            # occupies the coordinating worker's server, so hot
            # coordinators queue up and wide fan-out costs CPU.
            pcols = fq.cols.phases[fq.phase]
            coordinator = fq.cols.coordinator
            merge = pcols.merge_seconds
            server = busy[coordinator]
            begin = now if now > server else server
            done = begin + merge
            busy[coordinator] = done
            st_busy[coordinator] += merge
            if tracing:
                tracer.end(fq.hop_span, done, status="ok",
                           merge_seconds=merge)
            fq.phase += 1
            heappush(events, (done, next_seq(), _PHASE_DONE, fq))

        def finish_query_fast(fq: _FastQuery, now: float) -> None:
            if now >= warmup:
                latencies.append(now - fq.started)
                c_completed.inc()
            if tracing:
                tracer.end(fq.span, now, status="ok",
                           latency_seconds=now - fq.started)
            if now < duration:
                heappush(events, (now + think, next_seq(), _START,
                                  fq.client))

        def on_background_fast(payload, now: float) -> None:
            worker_id, seconds = payload
            server = busy[worker_id]
            begin = now if now > server else server
            busy[worker_id] = begin + seconds
            st_busy[worker_id] += seconds
            stats = workers[worker_id].stats
            stats.migration_seconds += seconds
            stats.migration_batches += 1
            c_migration_busy.inc(seconds)
            if tracing:
                tracer.point("db.migration.batch", now, parent=root_span,
                             worker=worker_id, seconds=seconds)

        # -- scalar path (fault injection active) -----------------------
        def start_query(client: int, now: float) -> None:
            binding = next_binding(client)
            routed = self._routed(binding)
            state = _QueryState(routed, client, now)
            if migrating is not None and binding.start_vertex in migrating:
                c_migration_waits.inc()
                state.phase_ready = now + migration_wait_seconds
                if tracing:
                    tracer.point("db.migration.wait", now, parent=root_span,
                                 vertex=binding.start_vertex, client=client)
                now = state.phase_ready
            if tracing:
                state.span = tracer.begin(
                    "db.query", now, parent=root_span, kind=routed.kind,
                    client=client, coordinator=routed.coordinator)
                tracer.point("db.route", now, parent=state.span,
                             coordinator=routed.coordinator,
                             phases=len(routed.phases))
            coordinator = router.coordinator(routed, now)
            if coordinator is None:
                # The start vertex's whole replica chain is down: the
                # client cannot even open a session; it observes one
                # timeout deadline and gives the query up.
                if self.raise_on_failure:
                    raise WorkerFailedError(
                        f"entire replica chain of worker "
                        f"{routed.coordinator} is down at t={now:.4f}s")
                state.failed = True
                push(now + policy.timeout_seconds, _ABORT, state)
                return
            if tracing and coordinator != routed.coordinator:
                tracer.point("db.failover", now, parent=state.span,
                             kind="coordinator",
                             primary=routed.coordinator,
                             replica=coordinator)
            state.coordinator = coordinator
            issue_phase(state, now)

        def issue_phase(state: _QueryState, now: float) -> None:
            routed = state.routed
            if state.phase >= len(routed.phases):
                finish_query(state, now)
                return
            requests = routed.phases[state.phase].requests
            if not requests:
                state.phase += 1
                issue_phase(state, now)
                return
            state.outstanding = len(requests)
            state.received = 0
            if tracing:
                state.hop_span = tracer.begin(
                    "db.hop", now, parent=state.span, phase=state.phase,
                    fanout=len(requests))
            for worker_id, reads in requests:
                issue_request(state, worker_id, reads, now, 0)

        def issue_request(state: _QueryState, primary: int, reads: int,
                          now: float, attempt: int) -> None:
            target = router.target(primary, attempt)
            worker = workers[target]
            remote = target != state.coordinator
            extra = schedule.extra_latency_seconds if remote else 0.0
            arrival = now + (model.network_rtt_seconds / 2 + extra
                             if remote else 0.0)
            if tracing and attempt > 0 and target != primary:
                tracer.point("db.failover", now, parent=state.hop_span,
                             kind="request", primary=primary,
                             replica=target, attempt=attempt)
            request_id = next(request_ids)
            if schedule.is_crashed(target, arrival):
                # The request reaches a dead machine: no response will
                # ever come; the client discovers this only through
                # its timeout deadline.
                worker.stats.requests_lost += 1
                if tracing:
                    tracer.point("db.request.lost", now,
                                 parent=state.hop_span, worker=target,
                                 reads=reads, attempt=attempt,
                                 reason="crashed")
                push(now + policy.timeout_seconds, _TIMEOUT,
                     _Request(state, primary, reads, attempt))
                return
            if schedule.should_drop(request_id):
                c_dropped.inc()
                worker.stats.requests_lost += 1
                if tracing:
                    tracer.point("db.request.lost", now,
                                 parent=state.hop_span, worker=target,
                                 reads=reads, attempt=attempt,
                                 reason="dropped")
                push(now + policy.timeout_seconds, _TIMEOUT,
                     _Request(state, primary, reads, attempt))
                return
            service = worker.service_seconds(reads)
            factor = schedule.speed_factor(target, arrival)
            if factor != 1.0:
                service = service / factor
            begin = max(arrival, worker.busy_until)
            completion = begin + service
            worker.busy_until = completion
            worker.stats.requests_served += 1
            worker.stats.vertices_read += reads
            worker.stats.busy_seconds += service
            c_total.inc(reads)
            if remote:
                worker.stats.remote_requests += 1
                c_remote.inc(reads)
                c_bytes.inc(BYTES_PER_REMOTE_REQUEST
                            + reads * BYTES_PER_VERTEX_RECORD)
            response = completion + (model.network_rtt_seconds / 2 + extra
                                     if remote else 0.0)
            if tracing:
                rid = tracer.begin("db.request", now, parent=state.hop_span,
                                   worker=target, reads=reads,
                                   attempt=attempt, remote=remote,
                                   queue_seconds=begin - arrival,
                                   service_seconds=service)
                tracer.end(rid, response)
            push(response, _RESPONSE, state)

        def finish_query(state: _QueryState, now: float) -> None:
            if now >= warmup:
                latencies.append(now - state.started)
                c_completed.inc()
            if tracing:
                tracer.end(state.span, now, status="ok",
                           latency_seconds=now - state.started)
            if now < duration:
                push(now + think, _START, state.client)

        def fail_query(state: _QueryState, now: float) -> None:
            if self.raise_on_failure:
                raise QueryTimeoutError(
                    f"{state.routed.kind} query of client {state.client} "
                    f"exhausted its {policy.max_retries}-retry budget at "
                    f"t={now:.4f}s")
            if now >= warmup:
                c_failed.inc()
            if tracing:
                tracer.end(state.span, now, status="failed",
                           latency_seconds=now - state.started)
            if now < duration:
                push(now + think, _START, state.client)

        def request_settled(state: _QueryState, now: float,
                            responded: bool) -> None:
            if responded:
                state.received += 1
            state.outstanding -= 1
            if state.outstanding != 0:
                return
            if state.failed:
                if tracing:
                    tracer.end(state.hop_span, now, status="failed")
                fail_query(state, now)
                return
            # Merge the phase's responses on the coordinator: this
            # occupies the coordinating worker's server, so hot
            # coordinators queue up and wide fan-out costs CPU.  Charge
            # only the responses that arrived — a request settled by its
            # timeout deadline shipped nothing to merge.  (Today every
            # merge-reaching phase has received == fan-out: a timeout
            # settle either retries, which produces a response later, or
            # marks the query failed, which skips the merge — so this is
            # accounting hygiene, not a behaviour change.)
            coordinator = workers[state.coordinator]
            responses = state.received
            merge = (model.coordinator_overhead_seconds
                     + responses * model.per_response_seconds) \
                / coordinator.speed
            begin = max(now, coordinator.busy_until)
            done = begin + merge
            coordinator.busy_until = done
            coordinator.stats.busy_seconds += merge
            if tracing:
                tracer.end(state.hop_span, done, status="ok",
                           merge_seconds=merge)
            state.phase += 1
            push(done, _PHASE_DONE, state)

        def on_timeout(request: _Request, now: float) -> None:
            c_timeouts.inc()
            if tracing:
                tracer.point("db.timeout", now,
                             parent=request.state.hop_span,
                             worker=request.primary,
                             attempt=request.attempt)
            if request.state.failed:
                # The query already failed on another request: don't burn
                # retries on it, just settle this one.
                request_settled(request.state, now, False)
                return
            if request.attempt < policy.max_retries:
                c_retries.inc()
                delay = policy.backoff_seconds(
                    request.attempt, schedule.jitter(next(retry_ids)))
                if tracing:
                    tracer.point("db.retry", now,
                                 parent=request.state.hop_span,
                                 worker=request.primary,
                                 attempt=request.attempt,
                                 delay_seconds=delay)
                request.attempt += 1
                push(now + delay, _RETRY, request)
                return
            request.state.failed = True
            request_settled(request.state, now, False)

        def on_retry(request: _Request, now: float) -> None:
            # Failover: attempt n goes to replica n of the primary owner.
            issue_request(request.state, request.primary, request.reads,
                          now, request.attempt)

        def on_background(payload, now: float) -> None:
            # A migration batch occupies the worker's FIFO server like any
            # storage request: queries queued behind it wait, which is the
            # honest latency price of shipping vertex state.
            worker_id, seconds = payload
            worker = workers[worker_id]
            begin = max(now, worker.busy_until)
            worker.busy_until = begin + seconds
            worker.stats.busy_seconds += seconds
            worker.stats.migration_seconds += seconds
            worker.stats.migration_batches += 1
            c_migration_busy.inc(seconds)
            if tracing:
                tracer.point("db.migration.batch", now, parent=root_span,
                             worker=worker_id, seconds=seconds)

        on_start = start_query_fast if fast else start_query
        on_phase_advance = issue_phase_fast if fast else issue_phase
        background_handler = on_background_fast if fast else on_background

        # Stagger client start-up across the first millisecond so the
        # initial burst does not synchronise queues artificially.
        for client in range(num_clients):
            push(client * 1e-6, _START, client)
        if background_work:
            for when, worker_id, seconds in background_work:
                if seconds < 0 or when < 0:
                    raise ConfigurationError(
                        "background_work entries must have time >= 0 and "
                        "seconds >= 0")
                if not 0 <= int(worker_id) < num_workers:
                    raise ConfigurationError(
                        f"background_work worker {worker_id} outside the "
                        f"{num_workers}-worker cluster")
                push(float(when), _BACKGROUND,
                     (int(worker_id), float(seconds)))

        sanitizing = sanitize.ACTIVE
        last_event_time = 0.0
        heappop = heapq.heappop
        while events:
            time_, seq, kind, payload = heappop(events)
            if sanitizing:
                sanitize.check_event_time(time_, last_event_time,
                                          "database.simulation.event_loop")
                last_event_time = time_
            if sampling:
                while next_tick <= time_ and next_tick < duration:
                    sampler.sample(next_tick)
                    next_tick += tick
            if time_ > duration:
                break
            if kind == _PHASE_SETTLED:
                on_phase_settled(payload, time_)
            elif kind == _PHASE_DONE:
                on_phase_advance(payload, time_)
            elif kind == _START:
                on_start(payload, time_)
            elif kind == _RESPONSE:
                request_settled(payload, time_, True)
            elif kind == _TIMEOUT:
                on_timeout(payload, time_)
            elif kind == _RETRY:
                on_retry(payload, time_)
            elif kind == _BACKGROUND:
                background_handler(payload, time_)
            else:  # _ABORT: the whole replica chain was down at start.
                fail_query(payload, time_)

        if sampling:
            # Drain the remaining tick grid: if the heap emptied (or the
            # last event preceded the horizon by more than a tick), the
            # in-loop flush above never reached these times.  They must
            # fire here — before the end-of-run histograms are observed —
            # so every pre-horizon sample sees only event-time state and
            # the grid [tick, 2*tick, ...) is complete for every run, not
            # just runs where a straggler event lands past the horizon.
            while next_tick < duration:
                sampler.sample(next_tick)
                next_tick += tick

        if fast:
            # Fold the fast-path accumulators into the worker stats; each
            # target starts at zero, so the fold adds nothing numerically
            # (0.0 + x == x) and the totals carry the event-order chains.
            for worker_id in range(num_workers):
                stats = workers[worker_id].stats
                worker = workers[worker_id]
                worker.busy_until = busy[worker_id]
                stats.requests_served += st_requests[worker_id]
                stats.vertices_read += st_reads[worker_id]
                stats.busy_seconds += st_busy[worker_id]
                stats.remote_requests += st_remote[worker_id]
        metrics.histogram("db.query.latency_seconds").observe_many(latencies)
        metrics.histogram("db.worker.vertices_read").observe_many(
            w.stats.vertices_read for w in workers)
        metrics.histogram("db.worker.busy_seconds").observe_many(
            w.stats.busy_seconds for w in workers)
        if sampling:
            # Horizon sample: the only one that sees the end-of-run
            # histograms (latency quantiles, per-worker distributions).
            sampler.sample(duration)
        if tracing:
            # Queries still in flight at the horizon close here so their
            # request/hop spans keep their parents in the export.
            tracer.end_subtree(root_span, duration, status="inflight")
            tracer.end(root_span, duration,
                       completed_queries=int(c_completed.value),
                       failed_queries=int(c_failed.value))
        return SimulationResult(
            num_workers=num_workers,
            clients_per_worker=self.clients_per_worker,
            duration=duration,
            warmup=warmup,
            latencies=np.asarray(latencies),
            vertices_read_per_worker=np.array(
                [w.stats.vertices_read for w in workers], dtype=np.int64),
            requests_per_worker=np.array(
                [w.stats.requests_served for w in workers], dtype=np.int64),
            busy_seconds_per_worker=np.array(
                [w.stats.busy_seconds for w in workers]),
            metrics=metrics,
            requests_lost_per_worker=np.array(
                [w.stats.requests_lost for w in workers], dtype=np.int64),
        )


def simulate_workload(graph: Graph, partition, bindings, *,
                      clients_per_worker: int = 12, duration: float = 2.0,
                      service_model: ServiceModel | None = None,
                      fanout_limit: int | None = 64,
                      worker_speeds=None,
                      fault_schedule: FaultSchedule | None = None,
                      retry_policy: RetryPolicy | None = None,
                      k_safety: int = 2,
                      raise_on_failure: bool = False,
                      sampler=None,
                      sample_interval: float | None = None) -> SimulationResult:
    """One-shot convenience wrapper around :class:`ClosedLoopSimulation`."""
    assignment = getattr(partition, "assignment", partition)
    num_workers = getattr(partition, "num_partitions", None)
    if num_workers is None:
        assignment = np.asarray(assignment)
        if assignment.size == 0:
            raise ConfigurationError(
                "partition assignment is empty: simulate_workload needs "
                "one owner per vertex (or a partition object carrying "
                "num_partitions)")
        num_workers = int(np.max(assignment)) + 1
    sim = ClosedLoopSimulation(
        graph, assignment, num_workers,
        clients_per_worker=clients_per_worker,
        service_model=service_model,
        fanout_limit=fanout_limit,
        worker_speeds=worker_speeds,
        fault_schedule=fault_schedule,
        retry_policy=retry_policy,
        k_safety=k_safety,
        raise_on_failure=raise_on_failure,
    )
    return sim.run(bindings, duration=duration, sampler=sampler,
                   sample_interval=sample_interval)
