"""Online graph queries (Section 5.2.3).

The paper's three online workload classes, executed against the stored
graph:

* **1-hop** — retrieve all adjacent vertices of a start vertex (">50% of
  Facebook's LinkBench"; what GraphJet optimises for);
* **2-hop** — the same expanded one more hop;
* **single-pair shortest path** — bidirectional BFS between two vertices.

A query's execution plan is a sequence of *phases*; each phase is a batch
of storage requests that run **in parallel** on the workers owning the
requested vertices (JanusGraph's storage backend is partition-aware, and
our router sends each read to the owner — Appendix C).  The simulator
replays these plans against the cluster; this module only computes the
exact read sets, so plans are reusable across partitionings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph

QUERY_KINDS = ("one_hop", "two_hop", "shortest_path")


@dataclass
class QueryPlan:
    """The storage footprint of one query execution.

    ``phases`` is a list of per-phase vertex-id arrays: every vertex in a
    phase is read (its adjacency list + properties) and the reads of one
    phase are independent, so they are issued in parallel; phases are
    sequential (hop 2 needs hop 1's results).
    """

    kind: str
    start_vertex: int
    phases: list[np.ndarray] = field(default_factory=list)

    @property
    def total_reads(self) -> int:
        return int(sum(phase.size for phase in self.phases))


def one_hop(graph: Graph, vertex: int) -> QueryPlan:
    """Adjacent-vertex retrieval: read v's adjacency, then each neighbour's
    vertex record (properties live with their owner partition)."""
    _check_vertex(graph, vertex)
    neighbors = np.unique(graph.neighbors(vertex))
    phases = [np.array([vertex], dtype=np.int64)]
    if neighbors.size:
        phases.append(neighbors)
    return QueryPlan("one_hop", vertex, phases)


def two_hop(graph: Graph, vertex: int, *, fanout_limit: int | None = None,
            seed: int = 0) -> QueryPlan:
    """Two-hop neighbourhood retrieval.

    ``fanout_limit`` optionally truncates the first-hop frontier (real
    systems paginate hub expansions); `None` expands everything.
    """
    _check_vertex(graph, vertex)
    first = np.unique(graph.neighbors(vertex))
    if fanout_limit is not None and first.size > fanout_limit:
        # Deterministic truncation: take the lowest ids (stable across
        # partitionings, unlike sampling with stream randomness).
        first = first[:fanout_limit]
    phases = [np.array([vertex], dtype=np.int64)]
    if first.size:
        phases.append(first)
        second_parts = [np.unique(graph.neighbors(int(u))) for u in first.tolist()]
        second = np.unique(np.concatenate(second_parts)) if second_parts else \
            np.empty(0, dtype=np.int64)
        # Exclude vertices already read.
        second = np.setdiff1d(second, np.append(first, vertex),
                              assume_unique=False)
        if second.size:
            phases.append(second)
    return QueryPlan("two_hop", vertex, phases)


def shortest_path(graph: Graph, source: int, target: int, *,
                  max_depth: int = 16) -> QueryPlan:
    """Single-pair shortest path by bidirectional BFS (undirected).

    Each BFS level is one phase: the frontier's adjacency lists are read
    in parallel, alternating sides (the standard graph-database traversal
    strategy).  Stops when the frontiers meet or ``max_depth`` levels
    were explored.
    """
    _check_vertex(graph, source)
    _check_vertex(graph, target)
    phases: list[np.ndarray] = []
    if source == target:
        phases.append(np.array([source], dtype=np.int64))
        return QueryPlan("shortest_path", source, phases)

    seen_fwd = {source}
    seen_bwd = {target}
    frontier_fwd = np.array([source], dtype=np.int64)
    frontier_bwd = np.array([target], dtype=np.int64)
    last_side = "bwd"

    for _depth in range(max_depth):
        # Expand the smaller frontier; alternate sides on ties.
        if (frontier_fwd.size < frontier_bwd.size
                or (frontier_fwd.size == frontier_bwd.size
                    and last_side == "bwd")):
            frontier, seen, other_seen = frontier_fwd, seen_fwd, seen_bwd
            side = "fwd"
        else:
            frontier, seen, other_seen = frontier_bwd, seen_bwd, seen_fwd
            side = "bwd"
        if frontier.size == 0:
            break
        last_side = side
        phases.append(frontier)
        nxt_parts = [graph.neighbors(int(u)) for u in frontier.tolist()]
        nxt = np.unique(np.concatenate(nxt_parts)) if nxt_parts else \
            np.empty(0, dtype=np.int64)
        nxt = np.array([v for v in nxt.tolist() if v not in seen],
                       dtype=np.int64)
        seen.update(nxt.tolist())
        if any(v in other_seen for v in nxt.tolist()):
            # Frontiers met: the path is resolved after reading this level.
            break
        if side == "fwd":
            frontier_fwd = nxt
        else:
            frontier_bwd = nxt
    return QueryPlan("shortest_path", source, phases)


def plan_query(graph: Graph, kind: str, start_vertex: int, *,
               target_vertex: int | None = None, fanout_limit: int | None = None,
               ) -> QueryPlan:
    """Dispatch by query-kind name (the workload generator's entry point).

    Besides the three read kinds this also accepts the mutation kinds of
    :mod:`repro.database.mutations` so mixed read/write binding lists run
    through the same simulator.
    """
    if kind == "one_hop":
        return one_hop(graph, start_vertex)
    if kind == "two_hop":
        return two_hop(graph, start_vertex, fanout_limit=fanout_limit)
    if kind == "shortest_path":
        if target_vertex is None:
            raise ConfigurationError("shortest_path needs a target_vertex")
        return shortest_path(graph, start_vertex, target_vertex)
    if kind in ("insert_edge", "update_vertex", "delete_edge",
                "remove_vertex"):
        from repro.database.mutations import (
            delete_edge_plan,
            insert_edge_plan,
            remove_vertex_plan,
            update_vertex_plan,
        )
        if kind in ("insert_edge", "delete_edge"):
            if target_vertex is None:
                raise ConfigurationError(f"{kind} needs a target_vertex")
            maker = insert_edge_plan if kind == "insert_edge" \
                else delete_edge_plan
            return maker(graph, start_vertex, target_vertex)
        if kind == "remove_vertex":
            return remove_vertex_plan(graph, start_vertex)
        return update_vertex_plan(graph, start_vertex)
    raise ConfigurationError(f"unknown query kind {kind!r}; expected "
                             f"{QUERY_KINDS} or a mutation kind")


def _check_vertex(graph: Graph, vertex: int) -> None:
    if not 0 <= vertex < graph.num_vertices:
        raise ConfigurationError(
            f"vertex {vertex} out of range for graph with "
            f"{graph.num_vertices} vertices"
        )
