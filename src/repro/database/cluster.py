"""Cluster model for the graph-database simulator (Appendix C).

The paper's JanusGraph deployment co-locates a query-execution instance
and a Cassandra storage instance on every worker; the working set fits in
memory, and a partitioning-aware router forwards each client query to the
worker owning its start vertex.  We model each worker as a single FIFO
storage server: a storage request reading ``r`` vertex records occupies
the server for ``base + r · per_read`` seconds, and a response to a
*remote* coordinator additionally pays a network round trip (which delays
the query but does not occupy the server).

The service-time constants are scaled to this repo's datasets the same
way the analytics cost model is — only ratios matter for the reproduced
comparisons.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServiceModel:
    """Service-time and network constants of the simulated cluster.

    Attributes
    ----------
    request_base_seconds:
        Fixed CPU cost of one storage request (parse, index probe, RPC
        handling) — this is what makes *fewer, larger* requests cheaper
        than many small ones, and hence what a low edge-cut ratio buys.
    per_read_seconds:
        Incremental cost per vertex record read.
    network_rtt_seconds:
        Round-trip latency added to a response crossing machines.
    coordinator_overhead_seconds:
        Per-phase bookkeeping on the coordinating worker.
    per_response_seconds:
        Coordinator CPU per response merged at the end of a phase.  This
        is what makes wide fan-out expensive: with more workers a query
        phase scatters into more requests, and merging their responses
        costs the coordinator proportionally — the mechanism behind the
        paper's throughput collapse beyond 16 workers (Fig. 12).
    """

    request_base_seconds: float = 3.0e-4
    per_read_seconds: float = 1.0e-5
    network_rtt_seconds: float = 1.0e-3
    coordinator_overhead_seconds: float = 1.0e-4
    per_response_seconds: float = 6.0e-5
    #: Client-side delay between receiving a response and issuing the next
    #: query (connection handling, client stack).  Keeps the paper's
    #: "medium load = high utilization without overload" regime: with
    #: zero think time a closed loop saturates at any client count.
    think_seconds: float = 1.0e-2
    #: Fractional growth of the per-request base cost per additional
    #: worker: connection pools, cluster metadata and replica coordination
    #: scale with cluster size in Cassandra-backed stores.  Together with
    #: per-query fan-out growing with k, this reproduces the paper's
    #: finding that performance "significantly degrades even on 32
    #: partitions" (Fig. 12 / Section 5.2.1).
    cluster_overhead_per_worker: float = 0.03

    def service_seconds(self, num_reads: int) -> float:
        """Server occupancy of a request reading *num_reads* records."""
        return self.request_base_seconds + num_reads * self.per_read_seconds

    def scaled(self, num_workers: int) -> "ServiceModel":
        """The effective model on a *num_workers*-machine cluster."""
        factor = 1.0 + self.cluster_overhead_per_worker * num_workers
        return ServiceModel(
            request_base_seconds=self.request_base_seconds * factor,
            per_read_seconds=self.per_read_seconds,
            network_rtt_seconds=self.network_rtt_seconds,
            coordinator_overhead_seconds=self.coordinator_overhead_seconds,
            per_response_seconds=self.per_response_seconds * factor,
            think_seconds=self.think_seconds,
            cluster_overhead_per_worker=0.0,
        )


@dataclass
class WorkerStats:
    """Counters accumulated by one worker during a simulation."""

    requests_served: int = 0
    vertices_read: int = 0
    busy_seconds: float = 0.0
    remote_requests: int = 0
    #: Requests that never got a response (worker crashed or wire drop) —
    #: populated only under fault injection (see :mod:`repro.faults`).
    requests_lost: int = 0
    #: Server seconds spent shipping migration batches — populated only
    #: when the online service schedules background work
    #: (see :mod:`repro.service`).
    migration_seconds: float = 0.0
    #: Migration batches this worker participated in.
    migration_batches: int = 0


class Worker:
    """One machine: a FIFO storage server with deterministic service.

    ``speed`` scales the machine's service rate: 1.0 is nominal, 0.5 is a
    straggler serving at half speed (failure injection for the tail-latency
    experiments), and larger values model faster hardware.
    """

    def __init__(self, worker_id: int, model: ServiceModel,
                 speed: float = 1.0):
        if speed <= 0:
            raise ConfigurationError("worker speed must be positive")
        self.worker_id = worker_id
        self.model = model
        self.speed = speed
        self.queue: deque = deque()
        self.busy_until = 0.0
        self.stats = WorkerStats()

    def service_seconds(self, num_reads: int) -> float:
        """This machine's occupancy for a request (speed-adjusted)."""
        return self.model.service_seconds(num_reads) / self.speed

    def reset(self) -> None:
        self.queue.clear()
        self.busy_until = 0.0
        self.stats = WorkerStats()


class Cluster:
    """A set of workers plus the vertex→worker ownership map."""

    def __init__(self, num_workers: int, vertex_owner,
                 model: ServiceModel | None = None,
                 worker_speeds=None):
        if num_workers < 1:
            raise ConfigurationError("cluster needs at least one worker")
        self.model = (model or ServiceModel()).scaled(num_workers)
        if worker_speeds is None:
            speeds = [1.0] * num_workers
        else:
            speeds = list(worker_speeds)
            if len(speeds) != num_workers:
                raise ConfigurationError(
                    "worker_speeds must have one entry per worker")
        self.workers = [Worker(i, self.model, speed)
                        for i, speed in enumerate(speeds)]
        self.vertex_owner = self._validated_owner(vertex_owner, num_workers)

    @staticmethod
    def _validated_owner(vertex_owner, num_workers: int) -> np.ndarray:
        """Check the ownership map covers every vertex with a real worker.

        Previously any object was accepted here and an invalid map only
        surfaced later as a raw ``IndexError``/``KeyError`` inside
        :meth:`owner` — mid-simulation, far from the mistake.  Validate up
        front instead and say what is wrong.
        """
        owner = np.asarray(vertex_owner)
        if owner.ndim != 1:
            raise ConfigurationError(
                "vertex_owner must be a 1-D array mapping each vertex to a "
                f"worker id, got an array of shape {owner.shape}")
        if owner.size and not np.issubdtype(owner.dtype, np.integer):
            raise ConfigurationError(
                "vertex_owner must contain integer worker ids, got dtype "
                f"{owner.dtype}")
        owner = owner.astype(np.int64, copy=False)
        if owner.size:
            invalid = (owner < 0) | (owner >= num_workers)
            if invalid.any():
                first = int(np.argmax(invalid))
                raise ConfigurationError(
                    f"vertex_owner leaves {int(invalid.sum())} of "
                    f"{owner.size} vertices without a valid worker: ids "
                    f"must be in [0, {num_workers}); first offender is "
                    f"vertex {first} -> {int(owner[first])} (negative "
                    "values usually mean an incomplete partitioning)")
        return owner

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def owner(self, vertex: int) -> int:
        """The worker storing *vertex* (partition-aware routing)."""
        return int(self.vertex_owner[vertex])

    def reset(self) -> None:
        for worker in self.workers:
            worker.reset()
