"""JanusGraph-style distributed graph database simulator."""

from repro.database.access_log import AccessLog, record_workload
from repro.database.cluster import Cluster, ServiceModel, Worker
from repro.database.mutations import (
    MUTATION_KINDS,
    GraphMutationLog,
    insert_edge_plan,
    mixed_read_write_bindings,
    update_vertex_plan,
)
from repro.database.queries import (
    QUERY_KINDS,
    QueryPlan,
    one_hop,
    plan_query,
    shortest_path,
    two_hop,
)
from repro.database.router import PhaseRequests, RoutedQuery, route_plan
from repro.database.simulation import (
    ClosedLoopSimulation,
    SimulationResult,
    simulate_workload,
)
from repro.database.workload import QueryBinding, WorkloadGenerator

__all__ = [
    "QueryPlan",
    "one_hop",
    "two_hop",
    "shortest_path",
    "plan_query",
    "QUERY_KINDS",
    "QueryBinding",
    "WorkloadGenerator",
    "Cluster",
    "Worker",
    "ServiceModel",
    "RoutedQuery",
    "PhaseRequests",
    "route_plan",
    "ClosedLoopSimulation",
    "SimulationResult",
    "simulate_workload",
    "AccessLog",
    "record_workload",
    "GraphMutationLog",
    "insert_edge_plan",
    "update_vertex_plan",
    "mixed_read_write_bindings",
    "MUTATION_KINDS",
]
