"""JanusGraph-style distributed graph database simulator."""

from repro.database.access_log import AccessLog, record_workload
from repro.database.cluster import Cluster, ServiceModel, Worker, WorkerStats
from repro.database.mutations import (
    MUTATION_KINDS,
    GraphMutationLog,
    delete_edge_plan,
    insert_edge_plan,
    mixed_read_write_bindings,
    remove_vertex_plan,
    update_vertex_plan,
)
from repro.database.queries import (
    QUERY_KINDS,
    QueryPlan,
    one_hop,
    plan_query,
    shortest_path,
    two_hop,
)
from repro.database.router import (
    FailoverRouter,
    PhaseRequests,
    RoutedQuery,
    route_plan,
)
from repro.database.simulation import (
    ClosedLoopSimulation,
    SimulationResult,
    simulate_workload,
)
from repro.database.workload import QueryBinding, WorkloadGenerator

# Fault-injection API, re-exported here because the database simulator is
# its primary consumer (see docs/fault_tolerance.md).
from repro.faults import (
    ChaosHarness,
    ChaosReport,
    CrashInterval,
    FaultSchedule,
    ReplicaMap,
    RetryPolicy,
    SlowdownInterval,
)

__all__ = [
    "QueryPlan",
    "one_hop",
    "two_hop",
    "shortest_path",
    "plan_query",
    "QUERY_KINDS",
    "QueryBinding",
    "WorkloadGenerator",
    "Cluster",
    "Worker",
    "WorkerStats",
    "ServiceModel",
    "RoutedQuery",
    "PhaseRequests",
    "route_plan",
    "FailoverRouter",
    "FaultSchedule",
    "CrashInterval",
    "SlowdownInterval",
    "RetryPolicy",
    "ReplicaMap",
    "ChaosHarness",
    "ChaosReport",
    "ClosedLoopSimulation",
    "SimulationResult",
    "simulate_workload",
    "AccessLog",
    "record_workload",
    "GraphMutationLog",
    "insert_edge_plan",
    "update_vertex_plan",
    "delete_edge_plan",
    "remove_vertex_plan",
    "mixed_read_write_bindings",
    "MUTATION_KINDS",
]
