"""Partition-aware query routing and plan → storage-request expansion.

Appendix C: "we implement a partitioning-aware query router in JanusGraph
so that client queries are forwarded to the partition that holds the
starting vertex of the query."  Given a :class:`~repro.database.queries.
QueryPlan` and the vertex→worker map, the router turns every plan phase
into one storage request per distinct owning worker (batching the reads
that co-locate) — so a better partitioning directly produces fewer,
larger, more-local requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.database.queries import QueryPlan


@dataclass(frozen=True)
class PhaseRequests:
    """One plan phase expanded against a placement: parallel requests."""

    #: (worker id, number of vertex reads) per request.
    requests: tuple[tuple[int, int], ...]

    @property
    def total_reads(self) -> int:
        return sum(reads for _w, reads in self.requests)


@dataclass(frozen=True)
class RoutedQuery:
    """A fully routed query: coordinator + per-phase request batches."""

    kind: str
    coordinator: int
    phases: tuple[PhaseRequests, ...]

    @property
    def total_reads(self) -> int:
        return sum(phase.total_reads for phase in self.phases)

    def remote_reads(self) -> int:
        """Vertex reads served by workers other than the coordinator —
        the simulator's network-I/O proxy (Figure 5's y-axis)."""
        return sum(reads for phase in self.phases
                   for worker, reads in phase.requests
                   if worker != self.coordinator)


def route_plan(plan: QueryPlan, vertex_owner: np.ndarray) -> RoutedQuery:
    """Expand *plan* into per-worker storage requests."""
    coordinator = int(vertex_owner[plan.start_vertex])
    phases = []
    for phase_vertices in plan.phases:
        owners = vertex_owner[phase_vertices]
        workers, counts = np.unique(owners, return_counts=True)
        phases.append(PhaseRequests(tuple(
            (int(w), int(c)) for w, c in zip(workers.tolist(), counts.tolist())
        )))
    return RoutedQuery(plan.kind, coordinator, tuple(phases))


class FailoverRouter:
    """Replica-aware routing layer used under fault injection.

    Wraps the static :func:`route_plan` placement with a
    :class:`~repro.faults.ReplicaMap`: every partition's data is readable
    from a fixed fallback chain, so when the primary owner of a request is
    down the client's retry is sent to the next replica instead of
    hammering the crashed machine.  With the empty fault schedule every
    lookup degenerates to the primary owner — routing is unchanged.
    """

    def __init__(self, replica_map, fault_schedule):
        self.replica_map = replica_map
        self.fault_schedule = fault_schedule

    def target(self, primary: int, attempt: int) -> int:
        """Worker serving retry number *attempt* of a request whose data
        is primarily owned by *primary* (attempt 0 = the primary)."""
        return self.replica_map.replica(primary, attempt)

    def coordinator(self, routed: RoutedQuery, time: float) -> int | None:
        """Alive coordinator for *routed* at *time*.

        The session coordinator is the first worker in the start vertex's
        replica chain that is currently up; ``None`` means the entire
        chain is down and the query cannot even begin.
        """
        if not self.fault_schedule.is_crashed(routed.coordinator, time):
            return routed.coordinator
        return self.replica_map.alive_replica(
            routed.coordinator, self.fault_schedule, time)
