"""Partition-aware query routing and plan → storage-request expansion.

Appendix C: "we implement a partitioning-aware query router in JanusGraph
so that client queries are forwarded to the partition that holds the
starting vertex of the query."  Given a :class:`~repro.database.queries.
QueryPlan` and the vertex→worker map, the router turns every plan phase
into one storage request per distinct owning worker (batching the reads
that co-locate) — so a better partitioning directly produces fewer,
larger, more-local requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.database.queries import QueryPlan


@dataclass(frozen=True)
class PhaseRequests:
    """One plan phase expanded against a placement: parallel requests."""

    #: (worker id, number of vertex reads) per request.
    requests: tuple[tuple[int, int], ...]

    @property
    def total_reads(self) -> int:
        return sum(reads for _w, reads in self.requests)


@dataclass(frozen=True)
class RoutedQuery:
    """A fully routed query: coordinator + per-phase request batches."""

    kind: str
    coordinator: int
    phases: tuple[PhaseRequests, ...]

    @property
    def total_reads(self) -> int:
        return sum(phase.total_reads for phase in self.phases)

    def remote_reads(self) -> int:
        """Vertex reads served by workers other than the coordinator —
        the simulator's network-I/O proxy (Figure 5's y-axis)."""
        return sum(reads for phase in self.phases
                   for worker, reads in phase.requests
                   if worker != self.coordinator)


def route_plan(plan: QueryPlan, vertex_owner: np.ndarray) -> RoutedQuery:
    """Expand *plan* into per-worker storage requests."""
    coordinator = int(vertex_owner[plan.start_vertex])
    phases = []
    for phase_vertices in plan.phases:
        owners = vertex_owner[phase_vertices]
        workers, counts = np.unique(owners, return_counts=True)
        phases.append(PhaseRequests(tuple(
            (int(w), int(c)) for w, c in zip(workers.tolist(), counts.tolist())
        )))
    return RoutedQuery(plan.kind, coordinator, tuple(phases))
