"""Online query workload generation (Section 5.2.3).

"The LDBC SNB graph data generator produces parameter bindings ... For
real-world datasets, we randomly select the query vertices that we
consistently use across all experiments. We generate 1000 bindings for
each type of query."

This module produces those binding sets.  Crucially for Section 6.3.3, it
supports *skewed* start-vertex selection: real online workloads
concentrate on popular entities, so bindings can be drawn from a Zipf
distribution over vertices ordered by degree (popular ≈ high degree),
which creates the hotspots whose effect Figures 7/8/15 measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.rng import make_rng


@dataclass(frozen=True)
class QueryBinding:
    """One query instance: kind + parameters."""

    kind: str
    start_vertex: int
    target_vertex: int | None = None


def zipf_vertex_sampler(graph: Graph, skew: float, rng) -> np.ndarray:
    """Pre-compute a vertex-sampling distribution with Zipf popularity.

    Vertices are ranked by degree (ties broken by id); rank ``r`` gets
    probability ∝ ``r^-skew``.  ``skew=0`` is uniform.
    """
    n = graph.num_vertices
    ranks = np.empty(n, dtype=np.float64)
    order = np.argsort(-graph.degree, kind="stable")
    ranks[order] = np.arange(1, n + 1)
    weights = ranks ** (-skew)
    return weights / weights.sum()


class WorkloadGenerator:
    """Generate reproducible binding sets for the online experiments.

    Parameters
    ----------
    graph:
        The stored graph.
    skew:
        Zipf exponent of start-vertex popularity.  The paper's LDBC
        workload is skewed by construction; ``~0.6–1.0`` reproduces the
        hotspot behaviour of Section 6.3.3, ``0`` gives a uniform
        workload.
    min_degree:
        Only vertices with at least this total degree are eligible as
        start vertices (parameter bindings in LDBC target real persons,
        not isolated placeholder vertices).
    seed:
        Binding-set randomness; fixed per experiment so every
        partitioning algorithm serves the *same* queries.
    """

    def __init__(self, graph: Graph, *, skew: float = 0.0,
                 min_degree: int = 1, seed=None):
        if skew < 0:
            raise ConfigurationError("skew must be >= 0")
        self.graph = graph
        self.skew = skew
        self.rng = make_rng(seed)
        probabilities = zipf_vertex_sampler(graph, skew, self.rng)
        eligible = graph.degree >= min_degree
        if not eligible.any():
            raise ConfigurationError("no vertex satisfies min_degree")
        probabilities = np.where(eligible, probabilities, 0.0)
        self._probabilities = probabilities / probabilities.sum()

    def sample_vertices(self, count: int) -> np.ndarray:
        """Draw start vertices by popularity."""
        return self.rng.choice(self.graph.num_vertices, size=count,
                               p=self._probabilities)

    def bindings(self, kind: str, count: int = 1000) -> list[QueryBinding]:
        """A binding set for one query kind (the paper generates 1000)."""
        starts = self.sample_vertices(count)
        if kind == "shortest_path":
            targets = self.sample_vertices(count)
            return [QueryBinding(kind, int(s), int(t))
                    for s, t in zip(starts.tolist(), targets.tolist())]
        if kind not in ("one_hop", "two_hop"):
            raise ConfigurationError(f"unknown query kind {kind!r}")
        return [QueryBinding(kind, int(s)) for s in starts.tolist()]

    def mixed_bindings(self, mix: dict[str, float], count: int = 1000,
                       ) -> list[QueryBinding]:
        """A binding set drawn from a query-kind mix (fractions sum to 1)."""
        kinds = list(mix)
        weights = np.array([mix[kind] for kind in kinds], dtype=np.float64)
        if weights.sum() <= 0:
            raise ConfigurationError("mix weights must sum to a positive value")
        weights /= weights.sum()
        chosen = self.rng.choice(len(kinds), size=count, p=weights)
        result: list[QueryBinding] = []
        for index in chosen.tolist():
            result.extend(self.bindings(kinds[index], 1))
        return result
