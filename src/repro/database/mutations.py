"""Write operations for the online workload (LinkBench-style).

The paper's online motivation leans on Facebook's LinkBench, whose
workload is >50% 1-hop reads *plus a substantial write mix* (edge
inserts, vertex updates).  This module adds those mutations to the
simulated graph database:

* an **edge insert** touches both endpoint owners (forward adjacency at
  the source's partition, reverse adjacency at the target's) — under an
  edge-cut placement a co-located edge is a single-partition write;
* a **vertex update** touches the owner partition only;
* an **edge delete** mirrors the insert's dual write (tombstones at both
  endpoint owners);
* a **vertex removal** touches the vertex's own record plus the reverse
  adjacency entry at every neighbour's owner — the expensive cascading
  cleanup that makes entity deletion a wide write in real stores.

Mutations are expressed as :class:`~repro.database.queries.QueryPlan`
objects (each phase = records touched in parallel), so the closed-loop
simulator executes mixed read/write workloads unchanged, and
:class:`GraphMutationLog` collects the full ordered op stream — inserts,
deletes, vertex arrivals and removals — so the mutated graph can be
re-materialised for dynamic-partitioning experiments and the online
service (:mod:`repro.service`).
"""

from __future__ import annotations

import numpy as np

from repro.database.queries import QueryPlan
from repro.errors import ConfigurationError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import Graph
from repro.rng import make_rng

MUTATION_KINDS = ("insert_edge", "update_vertex", "delete_edge",
                  "remove_vertex")


def insert_edge_plan(graph: Graph, src: int, dst: int) -> QueryPlan:
    """The storage footprint of inserting edge ``src -> dst``.

    One phase touching both endpoint records: the forward adjacency entry
    at ``src``'s owner and the reverse entry at ``dst``'s — issued in
    parallel like JanusGraph's dual writes.
    """
    _check(graph, src)
    _check(graph, dst)
    vertices = np.unique(np.array([src, dst], dtype=np.int64))
    return QueryPlan("insert_edge", src, [vertices])


def update_vertex_plan(graph: Graph, vertex: int) -> QueryPlan:
    """The storage footprint of updating one vertex's properties."""
    _check(graph, vertex)
    return QueryPlan("update_vertex", vertex,
                     [np.array([vertex], dtype=np.int64)])


def delete_edge_plan(graph: Graph, src: int, dst: int) -> QueryPlan:
    """The storage footprint of deleting edge ``src -> dst``.

    Symmetric to :func:`insert_edge_plan`: a tombstone at the source's
    forward adjacency and one at the target's reverse adjacency, written
    in parallel.
    """
    _check(graph, src)
    _check(graph, dst)
    vertices = np.unique(np.array([src, dst], dtype=np.int64))
    return QueryPlan("delete_edge", src, [vertices])


def remove_vertex_plan(graph: Graph, vertex: int) -> QueryPlan:
    """The storage footprint of removing a vertex and its incident edges.

    Phase 1 reads/tombstones the vertex's own record (which yields its
    adjacency); phase 2 cleans the reverse adjacency entry at every
    neighbour's owner in parallel — removal cost scales with degree.
    """
    _check(graph, vertex)
    phases = [np.array([vertex], dtype=np.int64)]
    neighbors = np.unique(graph.neighbors(vertex))
    neighbors = neighbors[neighbors != vertex]
    if neighbors.size:
        phases.append(neighbors)
    return QueryPlan("remove_vertex", vertex, phases)


def _check(graph: Graph, vertex: int) -> None:
    if not 0 <= vertex < graph.num_vertices:
        raise ConfigurationError(
            f"vertex {vertex} out of range for {graph.num_vertices} vertices")


class GraphMutationLog:
    """Ordered log of graph mutations, replayable into a materialised graph.

    Supports the full LinkBench-style op set: edge inserts, edge deletes,
    new-vertex arrivals (:meth:`add_vertex` grows the id space) and vertex
    removals (incident edges die; the id remains as an isolated vertex, a
    tombstone — ids are never recycled, matching log-structured stores).
    Replay is order-sensitive: a delete only kills edges logged (or in the
    base graph) *before* it, so delete-then-reinsert round-trips.

    The dynamic-partitioning experiments use this to measure how a stale
    partitioning degrades as the graph mutates, and how refinement
    (:func:`repro.partitioning.dynamic.hermes_refine`) recovers it.
    """

    def __init__(self, base: Graph):
        self.base = base
        #: Ordered ops: ``(kind, u, v)``; ``v`` is -1 for vertex ops.
        self._ops: list[tuple[str, int, int]] = []
        self._added_vertices = 0

    @property
    def num_vertices(self) -> int:
        """Current vertex-id space (base plus vertices added via the log)."""
        return self.base.num_vertices + self._added_vertices

    def _check_id(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise ConfigurationError(
                f"vertex {vertex} out of range for {self.num_vertices} "
                f"vertices")

    def insert_edge(self, src: int, dst: int) -> None:
        self._check_id(src)
        self._check_id(dst)
        self._ops.append(("insert_edge", src, dst))

    def delete_edge(self, src: int, dst: int) -> None:
        """Kill every live ``src -> dst`` edge logged or present so far."""
        self._check_id(src)
        self._check_id(dst)
        self._ops.append(("delete_edge", src, dst))

    def add_vertex(self) -> int:
        """Grow the id space by one; returns the new vertex's id."""
        vertex = self.num_vertices
        self._added_vertices += 1
        self._ops.append(("add_vertex", vertex, -1))
        return vertex

    def remove_vertex(self, vertex: int) -> None:
        """Kill every live edge incident to *vertex* (the id remains)."""
        self._check_id(vertex)
        self._ops.append(("remove_vertex", vertex, -1))

    @property
    def num_inserts(self) -> int:
        return sum(1 for kind, _, _ in self._ops if kind == "insert_edge")

    @property
    def num_deletes(self) -> int:
        return sum(1 for kind, _, _ in self._ops
                   if kind in ("delete_edge", "remove_vertex"))

    @property
    def num_ops(self) -> int:
        return len(self._ops)

    def materialize(self, name: str | None = None) -> Graph:
        """Replay the log over the base graph and build the result.

        Deletes are applied in log order against everything created
        before them: base edges carry creation index -1, logged inserts
        their op index, and a delete at op index ``p`` only kills live
        matching edges with creation index ``< p``.
        """
        base_m = self.base.num_edges
        inserts = [(i, u, v) for i, (kind, u, v) in enumerate(self._ops)
                   if kind == "insert_edge"]
        src = np.concatenate([
            self.base.src, np.array([u for _, u, _ in inserts],
                                    dtype=np.int64)])
        dst = np.concatenate([
            self.base.dst, np.array([v for _, _, v in inserts],
                                    dtype=np.int64)])
        created = np.concatenate([
            np.full(base_m, -1, dtype=np.int64),
            np.array([i for i, _, _ in inserts], dtype=np.int64)])
        alive = np.ones(src.size, dtype=bool)
        for index, (kind, u, v) in enumerate(self._ops):
            if kind == "delete_edge":
                alive &= ~((src == u) & (dst == v) & (created < index))
            elif kind == "remove_vertex":
                alive &= ~(((src == u) | (dst == u)) & (created < index))
        builder = GraphBuilder(num_vertices=self.num_vertices,
                               allow_self_loops=True)
        if alive.any():
            builder.add_edges(np.column_stack([src[alive], dst[alive]]))
        return builder.build(name=name or f"{self.base.name}+{self.num_ops}")


def mixed_read_write_bindings(generator, *, count: int = 1000,
                              write_fraction: float = 0.25,
                              seed_offset: int = 0):
    """LinkBench-flavoured binding mix: 1-hop reads plus edge inserts.

    ``generator`` is a :class:`~repro.database.workload.WorkloadGenerator`;
    write sources follow the same popularity distribution the reads use
    (hot entities attract both reads and writes) and targets follow
    triadic closure — new edges overwhelmingly connect friends-of-friends
    in social workloads — falling back to popularity sampling for sources
    with no 2-hop neighbourhood.
    Returns ``(bindings, inserts)`` where *inserts* lists the (src, dst)
    pairs behind the write bindings, for feeding a
    :class:`GraphMutationLog`.
    """
    from repro.database.workload import QueryBinding

    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must lie in [0, 1]")
    num_writes = int(round(count * write_fraction))
    num_reads = count - num_writes
    bindings = list(generator.bindings("one_hop", num_reads)) if num_reads \
        else []
    inserts: list[tuple[int, int]] = []
    if num_writes:
        graph = generator.graph
        rng = make_rng(2000 + seed_offset)
        sources = generator.sample_vertices(num_writes)
        fallback = generator.sample_vertices(num_writes)
        for index, src in enumerate(sources.tolist()):
            dst = int(fallback[index])
            friends = graph.neighbors(src)
            if friends.size:
                friend = int(friends[rng.integers(0, friends.size)])
                candidates = graph.neighbors(friend)
                candidates = candidates[candidates != src]
                if candidates.size:
                    dst = int(candidates[rng.integers(0, candidates.size)])
            inserts.append((src, dst))
            bindings.append(QueryBinding("insert_edge", src, dst))
    # Interleave deterministically so writes spread over the run.
    rng = make_rng(1000 + seed_offset)
    order = rng.permutation(len(bindings))
    return [bindings[i] for i in order.tolist()], inserts
