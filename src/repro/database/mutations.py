"""Write operations for the online workload (LinkBench-style).

The paper's online motivation leans on Facebook's LinkBench, whose
workload is >50% 1-hop reads *plus a substantial write mix* (edge
inserts, vertex updates).  This module adds those mutations to the
simulated graph database:

* an **edge insert** touches both endpoint owners (forward adjacency at
  the source's partition, reverse adjacency at the target's) — under an
  edge-cut placement a co-located edge is a single-partition write;
* a **vertex update** touches the owner partition only.

Mutations are expressed as :class:`~repro.database.queries.QueryPlan`
objects (each phase = records touched in parallel), so the closed-loop
simulator executes mixed read/write workloads unchanged, and
:class:`GraphMutationLog` collects the inserts so a grown graph can be
re-materialised for dynamic-partitioning experiments.
"""

from __future__ import annotations

import numpy as np

from repro.database.queries import QueryPlan
from repro.errors import ConfigurationError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import Graph
from repro.rng import make_rng

MUTATION_KINDS = ("insert_edge", "update_vertex")


def insert_edge_plan(graph: Graph, src: int, dst: int) -> QueryPlan:
    """The storage footprint of inserting edge ``src -> dst``.

    One phase touching both endpoint records: the forward adjacency entry
    at ``src``'s owner and the reverse entry at ``dst``'s — issued in
    parallel like JanusGraph's dual writes.
    """
    _check(graph, src)
    _check(graph, dst)
    vertices = np.unique(np.array([src, dst], dtype=np.int64))
    return QueryPlan("insert_edge", src, [vertices])


def update_vertex_plan(graph: Graph, vertex: int) -> QueryPlan:
    """The storage footprint of updating one vertex's properties."""
    _check(graph, vertex)
    return QueryPlan("update_vertex", vertex,
                     [np.array([vertex], dtype=np.int64)])


def _check(graph: Graph, vertex: int) -> None:
    if not 0 <= vertex < graph.num_vertices:
        raise ConfigurationError(
            f"vertex {vertex} out of range for {graph.num_vertices} vertices")


class GraphMutationLog:
    """Accumulates edge inserts so the grown graph can be materialised.

    The dynamic-partitioning experiments use this to measure how a stale
    partitioning degrades as the graph grows, and how refinement
    (:func:`repro.partitioning.dynamic.hermes_refine`) recovers it.
    """

    def __init__(self, base: Graph):
        self.base = base
        self._inserts: list[tuple[int, int]] = []

    def insert_edge(self, src: int, dst: int) -> None:
        _check(self.base, src)
        _check(self.base, dst)
        self._inserts.append((src, dst))

    @property
    def num_inserts(self) -> int:
        return len(self._inserts)

    def materialize(self, name: str | None = None) -> Graph:
        """The base graph plus every logged insert."""
        builder = GraphBuilder(num_vertices=self.base.num_vertices,
                               allow_self_loops=True)
        builder.add_edges(self.base.edge_array())
        if self._inserts:
            builder.add_edges(self._inserts)
        return builder.build(name=name or f"{self.base.name}+{self.num_inserts}")


def mixed_read_write_bindings(generator, *, count: int = 1000,
                              write_fraction: float = 0.25,
                              seed_offset: int = 0):
    """LinkBench-flavoured binding mix: 1-hop reads plus edge inserts.

    ``generator`` is a :class:`~repro.database.workload.WorkloadGenerator`;
    write sources follow the same popularity distribution the reads use
    (hot entities attract both reads and writes) and targets follow
    triadic closure — new edges overwhelmingly connect friends-of-friends
    in social workloads — falling back to popularity sampling for sources
    with no 2-hop neighbourhood.
    Returns ``(bindings, inserts)`` where *inserts* lists the (src, dst)
    pairs behind the write bindings, for feeding a
    :class:`GraphMutationLog`.
    """
    from repro.database.workload import QueryBinding

    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must lie in [0, 1]")
    num_writes = int(round(count * write_fraction))
    num_reads = count - num_writes
    bindings = list(generator.bindings("one_hop", num_reads)) if num_reads \
        else []
    inserts: list[tuple[int, int]] = []
    if num_writes:
        graph = generator.graph
        rng = make_rng(2000 + seed_offset)
        sources = generator.sample_vertices(num_writes)
        fallback = generator.sample_vertices(num_writes)
        for index, src in enumerate(sources.tolist()):
            dst = int(fallback[index])
            friends = graph.neighbors(src)
            if friends.size:
                friend = int(friends[rng.integers(0, friends.size)])
                candidates = graph.neighbors(friend)
                candidates = candidates[candidates != src]
                if candidates.size:
                    dst = int(candidates[rng.integers(0, candidates.size)])
            inserts.append((src, dst))
            bindings.append(QueryBinding("insert_edge", src, dst))
    # Interleave deterministically so writes spread over the run.
    rng = make_rng(1000 + seed_offset)
    order = rng.permutation(len(bindings))
    return [bindings[i] for i in order.tolist()], inserts
