"""Access recording for workload-aware partitioning (Section 6.3.3).

"We record vertex and edge accesses during the execution of the 1-hop
query workload to compute a weighted graph where weights represent the
access ratio."  :class:`AccessLog` accumulates exactly that: per-vertex
read counts (and per-worker totals, for the load-distribution figures),
to be fed into :func:`repro.partitioning.workload_aware.
workload_aware_partition`.
"""

from __future__ import annotations

import numpy as np

from repro.database.queries import QueryPlan
from repro.graph.digraph import Graph


class AccessLog:
    """Per-vertex access counters recorded during a workload run."""

    def __init__(self, num_vertices: int):
        self.vertex_reads = np.zeros(num_vertices, dtype=np.int64)
        self.queries_recorded = 0

    def record_plan(self, plan: QueryPlan) -> None:
        """Count every vertex read by *plan*."""
        for phase in plan.phases:
            np.add.at(self.vertex_reads, phase, 1)
        self.queries_recorded += 1

    def record_many(self, plans) -> None:
        for plan in plans:
            self.record_plan(plan)

    def access_ratios(self) -> np.ndarray:
        """Reads per vertex normalised to sum to 1 (the paper's weights)."""
        total = self.vertex_reads.sum()
        if total == 0:
            return np.zeros_like(self.vertex_reads, dtype=np.float64)
        return self.vertex_reads / total

    def hot_vertices(self, top: int = 10) -> np.ndarray:
        """The *top* most-read vertices (hotspot inspection helper)."""
        return np.argsort(-self.vertex_reads, kind="stable")[:top]


def record_workload(graph: Graph, plans) -> AccessLog:
    """Build an :class:`AccessLog` from an iterable of query plans."""
    log = AccessLog(graph.num_vertices)
    log.record_many(plans)
    return log
