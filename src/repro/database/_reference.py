"""Frozen scalar reference for the closed-loop DES (pre-vectorization).

This module is a verbatim snapshot of ``repro.database.simulation``'s
event loop as it stood before the batched rewrite — the same pattern PR 5
established for the streaming partitioners in
``repro.partitioning._reference``.  It exists for exactly two purposes:

1. **Equivalence gate** — ``tests/test_substrate_equivalence.py`` and
   ``benchmarks/bench_substrates.py`` assert that the production
   simulator produces *byte-identical* results (latencies, per-worker
   arrays, metric values, spans) against this snapshot across fault-free
   and faulty scenarios.
2. **Benchmark baseline** — the "before" timings in
   ``BENCH_substrates.json`` come from running this loop.

Do not optimise this file.  The only deliberate deviations from the
snapshotted production code are the ``Reference*`` names, the
``events_processed`` loop counter (the benchmark's events/sec
denominator; it touches no simulation arithmetic), and the two
documented accounting bugfixes the production loop later received —
this snapshot keeps the *original* (pre-fix) behaviour so the fixes'
digest impact stays observable:

* sampler ticks between the final event and the horizon are dropped
  when the heap empties early (the production loop drains them);
* the coordinator merge charges ``len(phase.requests)`` responses even
  if some never arrived (the production loop counts received ones).

Shared result/model types (:class:`SimulationResult`, the byte
constants, :class:`Cluster`) are imported from the production modules —
they are containers, not loop code.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.database.cluster import Cluster, ServiceModel
from repro.database.queries import plan_query
from repro.database.router import FailoverRouter, RoutedQuery, route_plan
from repro.database.simulation import (
    BYTES_PER_REMOTE_REQUEST,
    BYTES_PER_VERTEX_RECORD,
    SimulationResult,
)
from repro.database.workload import QueryBinding
from repro.errors import ConfigurationError, QueryTimeoutError, WorkerFailedError
from repro.faults import (
    DEFAULT_RETRY_POLICY,
    NO_FAULTS,
    FaultSchedule,
    ReplicaMap,
    RetryPolicy,
)
from repro.graph.digraph import Graph
from repro.telemetry import get_tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.tools import sanitize



@dataclass(order=True)
class _Event:
    time: float
    seq: int
    kind: str = field(compare=False)
    payload: object = field(compare=False)


class _QueryState:
    """Progress of one in-flight query."""

    __slots__ = ("routed", "client", "phase", "outstanding", "started",
                 "phase_ready", "coordinator", "failed", "span", "hop_span")

    def __init__(self, routed: RoutedQuery, client: int, started: float):
        self.routed = routed
        self.client = client
        self.phase = 0
        self.outstanding = 0
        self.started = started
        self.phase_ready = started
        self.coordinator = routed.coordinator
        self.failed = False
        self.span = 0
        self.hop_span = 0


class _Request:
    """One storage request in flight, tracked for timeout/retry."""

    __slots__ = ("state", "primary", "reads", "attempt")

    def __init__(self, state: _QueryState, primary: int, reads: int,
                 attempt: int):
        self.state = state
        self.primary = primary
        self.reads = reads
        self.attempt = attempt


class ReferenceClosedLoopSimulation:
    """The pre-vectorization scalar event loop, frozen.

    Same constructor contract as the production
    :class:`~repro.database.simulation.ClosedLoopSimulation`; see that
    class for parameter documentation.  After :meth:`run`,
    :attr:`events_processed` holds the number of heap events the loop
    dispatched (the benchmark's logical-event denominator).
    """

    def __init__(self, graph: Graph, vertex_owner, num_workers: int, *,
                 clients_per_worker: int = 12,
                 service_model: ServiceModel | None = None,
                 fanout_limit: int | None = 64,
                 worker_speeds=None,
                 fault_schedule: FaultSchedule | None = None,
                 retry_policy: RetryPolicy | None = None,
                 k_safety: int = 2,
                 raise_on_failure: bool = False):
        owner = np.asarray(vertex_owner, dtype=np.int64)
        if owner.shape != (graph.num_vertices,):
            raise ConfigurationError("vertex_owner must map every vertex")
        if owner.size and (owner.min() < 0 or owner.max() >= num_workers):
            raise ConfigurationError("vertex_owner contains invalid worker ids")
        if clients_per_worker < 1:
            raise ConfigurationError("clients_per_worker must be >= 1")
        self.graph = graph
        self.owner = owner
        self.cluster = Cluster(num_workers, owner, service_model,
                               worker_speeds=worker_speeds)
        self.clients_per_worker = clients_per_worker
        self.fanout_limit = fanout_limit
        self.fault_schedule = fault_schedule or NO_FAULTS
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.replica_map = ReplicaMap(num_workers,
                                      max(1, min(k_safety, num_workers)))
        self.raise_on_failure = raise_on_failure
        self._plan_cache: dict[tuple, RoutedQuery] = {}
        self.events_processed = 0

    # ------------------------------------------------------------------
    def _routed(self, binding: QueryBinding) -> RoutedQuery:
        key = (binding.kind, binding.start_vertex, binding.target_vertex)
        cached = self._plan_cache.get(key)
        if cached is None:
            plan = plan_query(self.graph, binding.kind, binding.start_vertex,
                              target_vertex=binding.target_vertex,
                              fanout_limit=self.fanout_limit)
            cached = route_plan(plan, self.owner)
            self._plan_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    def run(self, bindings: list[QueryBinding], *, duration: float = 2.0,
            warmup_fraction: float = 0.25,
            background_work=None,
            migrating_vertices=None,
            migration_wait_seconds: float = 0.0,
            sampler=None,
            sample_interval: float | None = None) -> SimulationResult:
        """Simulate *duration* seconds of closed-loop load (frozen loop)."""
        if not bindings:
            raise ConfigurationError("bindings must be non-empty")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if migration_wait_seconds < 0:
            raise ConfigurationError("migration_wait_seconds must be >= 0")
        migrating = None
        if migrating_vertices is not None:
            moving = np.asarray(migrating_vertices, dtype=np.int64)
            if moving.size:
                migrating = frozenset(moving.tolist())
        self.cluster.reset()
        model = self.cluster.model
        schedule = self.fault_schedule
        policy = self.retry_policy
        faulty = not schedule.is_empty
        router = FailoverRouter(self.replica_map, schedule)
        num_clients = self.clients_per_worker * self.cluster.num_workers
        warmup = duration * warmup_fraction
        tracer = get_tracer()
        tracing = tracer.enabled

        events: list[_Event] = []
        sequence = itertools.count()
        request_ids = itertools.count()
        retry_ids = itertools.count()
        binding_cursor = [int(i * len(bindings) / num_clients)
                          for i in range(num_clients)]

        latencies: list[float] = []
        metrics = MetricsRegistry()
        c_completed = metrics.counter("db.queries.completed")
        c_bytes = metrics.counter("db.network_bytes")
        c_remote = metrics.counter("db.reads.remote")
        c_total = metrics.counter("db.reads.total")
        c_timeouts = metrics.counter("db.timeouts")
        c_retries = metrics.counter("db.retries")
        c_failed = metrics.counter("db.queries.failed")
        c_dropped = metrics.counter("db.requests.dropped")
        c_migration_waits = metrics.counter("db.migration.waits") \
            if migrating is not None else None
        c_migration_busy = metrics.counter("db.migration.busy_seconds") \
            if background_work else None
        sampling = sampler is not None and sampler.enabled
        if sampling:
            sampler.registry = metrics
            tick = duration / 10.0 if sample_interval is None \
                else float(sample_interval)
            if tick <= 0:
                raise ConfigurationError("sample_interval must be positive")
            next_tick = tick
        root_span = tracer.begin(
            "db.run", 0.0, parent=None,
            num_workers=self.cluster.num_workers,
            clients_per_worker=self.clients_per_worker,
            duration=duration) if tracing else 0

        def push(time: float, kind: str, payload) -> None:
            heapq.heappush(events, _Event(time, next(sequence), kind, payload))

        def next_binding(client: int) -> QueryBinding:
            index = binding_cursor[client]
            binding_cursor[client] = (index + 1) % len(bindings)
            return bindings[index]

        def start_query(client: int, now: float) -> None:
            binding = next_binding(client)
            routed = self._routed(binding)
            state = _QueryState(routed, client, now)
            if migrating is not None and binding.start_vertex in migrating:
                c_migration_waits.inc()
                state.phase_ready = now + migration_wait_seconds
                if tracing:
                    tracer.point("db.migration.wait", now, parent=root_span,
                                 vertex=binding.start_vertex, client=client)
                now = state.phase_ready
            if tracing:
                state.span = tracer.begin(
                    "db.query", now, parent=root_span, kind=routed.kind,
                    client=client, coordinator=routed.coordinator)
                tracer.point("db.route", now, parent=state.span,
                             coordinator=routed.coordinator,
                             phases=len(routed.phases))
            if faulty:
                coordinator = router.coordinator(routed, now)
                if coordinator is None:
                    if self.raise_on_failure:
                        raise WorkerFailedError(
                            f"entire replica chain of worker "
                            f"{routed.coordinator} is down at t={now:.4f}s")
                    state.failed = True
                    push(now + policy.timeout_seconds, "abort", state)
                    return
                if tracing and coordinator != routed.coordinator:
                    tracer.point("db.failover", now, parent=state.span,
                                 kind="coordinator",
                                 primary=routed.coordinator,
                                 replica=coordinator)
                state.coordinator = coordinator
            issue_phase(state, now)

        def issue_phase(state: _QueryState, now: float) -> None:
            routed = state.routed
            if state.phase >= len(routed.phases):
                finish_query(state, now)
                return
            requests = routed.phases[state.phase].requests
            if not requests:
                state.phase += 1
                issue_phase(state, now)
                return
            state.outstanding = len(requests)
            if tracing:
                state.hop_span = tracer.begin(
                    "db.hop", now, parent=state.span, phase=state.phase,
                    fanout=len(requests))
            for worker_id, reads in requests:
                issue_request(state, worker_id, reads, now, 0)

        def issue_request(state: _QueryState, primary: int, reads: int,
                          now: float, attempt: int) -> None:
            target = router.target(primary, attempt) if faulty else primary
            worker = self.cluster.workers[target]
            remote = target != state.coordinator
            extra = (schedule.extra_latency_seconds
                     if faulty and remote else 0.0)
            arrival = now + (model.network_rtt_seconds / 2 + extra
                             if remote else 0.0)
            if tracing and attempt > 0 and target != primary:
                tracer.point("db.failover", now, parent=state.hop_span,
                             kind="request", primary=primary,
                             replica=target, attempt=attempt)
            if faulty:
                request_id = next(request_ids)
                if schedule.is_crashed(target, arrival):
                    worker.stats.requests_lost += 1
                    if tracing:
                        tracer.point("db.request.lost", now,
                                     parent=state.hop_span, worker=target,
                                     reads=reads, attempt=attempt,
                                     reason="crashed")
                    push(now + policy.timeout_seconds, "timeout",
                         _Request(state, primary, reads, attempt))
                    return
                if schedule.should_drop(request_id):
                    c_dropped.inc()
                    worker.stats.requests_lost += 1
                    if tracing:
                        tracer.point("db.request.lost", now,
                                     parent=state.hop_span, worker=target,
                                     reads=reads, attempt=attempt,
                                     reason="dropped")
                    push(now + policy.timeout_seconds, "timeout",
                         _Request(state, primary, reads, attempt))
                    return
            service = worker.service_seconds(reads)
            if faulty:
                factor = schedule.speed_factor(target, arrival)
                if factor != 1.0:
                    service = service / factor
            begin = max(arrival, worker.busy_until)
            completion = begin + service
            worker.busy_until = completion
            worker.stats.requests_served += 1
            worker.stats.vertices_read += reads
            worker.stats.busy_seconds += service
            c_total.inc(reads)
            if remote:
                worker.stats.remote_requests += 1
                c_remote.inc(reads)
                c_bytes.inc(BYTES_PER_REMOTE_REQUEST
                            + reads * BYTES_PER_VERTEX_RECORD)
            response = completion + (model.network_rtt_seconds / 2 + extra
                                     if remote else 0.0)
            if tracing:
                rid = tracer.begin("db.request", now, parent=state.hop_span,
                                   worker=target, reads=reads,
                                   attempt=attempt, remote=remote,
                                   queue_seconds=begin - arrival,
                                   service_seconds=service)
                tracer.end(rid, response)
            push(response, "response", state)

        def finish_query(state: _QueryState, now: float) -> None:
            if now >= warmup:
                latencies.append(now - state.started)
                c_completed.inc()
            if tracing:
                tracer.end(state.span, now, status="ok",
                           latency_seconds=now - state.started)
            if now < duration:
                push(now + model.think_seconds, "start", state.client)

        def fail_query(state: _QueryState, now: float) -> None:
            if self.raise_on_failure:
                raise QueryTimeoutError(
                    f"{state.routed.kind} query of client {state.client} "
                    f"exhausted its {policy.max_retries}-retry budget at "
                    f"t={now:.4f}s")
            if now >= warmup:
                c_failed.inc()
            if tracing:
                tracer.end(state.span, now, status="failed",
                           latency_seconds=now - state.started)
            if now < duration:
                push(now + model.think_seconds, "start", state.client)

        def request_settled(state: _QueryState, now: float) -> None:
            state.outstanding -= 1
            if state.outstanding != 0:
                return
            if state.failed:
                if tracing:
                    tracer.end(state.hop_span, now, status="failed")
                fail_query(state, now)
                return
            coordinator = self.cluster.workers[state.coordinator]
            responses = len(state.routed.phases[state.phase].requests)
            merge = (model.coordinator_overhead_seconds
                     + responses * model.per_response_seconds) \
                / coordinator.speed
            begin = max(now, coordinator.busy_until)
            done = begin + merge
            coordinator.busy_until = done
            coordinator.stats.busy_seconds += merge
            if tracing:
                tracer.end(state.hop_span, done, status="ok",
                           merge_seconds=merge)
            state.phase += 1
            push(done, "phase_done", state)

        def on_timeout(request: _Request, now: float) -> None:
            c_timeouts.inc()
            if tracing:
                tracer.point("db.timeout", now,
                             parent=request.state.hop_span,
                             worker=request.primary,
                             attempt=request.attempt)
            if request.state.failed:
                request_settled(request.state, now)
                return
            if request.attempt < policy.max_retries:
                c_retries.inc()
                delay = policy.backoff_seconds(
                    request.attempt, schedule.jitter(next(retry_ids)))
                if tracing:
                    tracer.point("db.retry", now,
                                 parent=request.state.hop_span,
                                 worker=request.primary,
                                 attempt=request.attempt,
                                 delay_seconds=delay)
                request.attempt += 1
                push(now + delay, "retry", request)
                return
            request.state.failed = True
            request_settled(request.state, now)

        def on_retry(request: _Request, now: float) -> None:
            issue_request(request.state, request.primary, request.reads,
                          now, request.attempt)

        def on_phase_done(state: _QueryState, now: float) -> None:
            issue_phase(state, now)

        def on_background(payload, now: float) -> None:
            worker_id, seconds = payload
            worker = self.cluster.workers[worker_id]
            begin = max(now, worker.busy_until)
            worker.busy_until = begin + seconds
            worker.stats.busy_seconds += seconds
            worker.stats.migration_seconds += seconds
            worker.stats.migration_batches += 1
            c_migration_busy.inc(seconds)
            if tracing:
                tracer.point("db.migration.batch", now, parent=root_span,
                             worker=worker_id, seconds=seconds)

        for client in range(num_clients):
            push(client * 1e-6, "start", client)
        if background_work:
            for when, worker_id, seconds in background_work:
                if seconds < 0 or when < 0:
                    raise ConfigurationError(
                        "background_work entries must have time >= 0 and "
                        "seconds >= 0")
                if not 0 <= int(worker_id) < self.cluster.num_workers:
                    raise ConfigurationError(
                        f"background_work worker {worker_id} outside the "
                        f"{self.cluster.num_workers}-worker cluster")
                push(float(when), "background",
                     (int(worker_id), float(seconds)))

        sanitizing = sanitize.ACTIVE
        last_event_time = 0.0
        processed = 0
        while events:
            event = heapq.heappop(events)
            if sanitizing:
                sanitize.check_event_time(event.time, last_event_time,
                                          "database._reference.event_loop")
                last_event_time = event.time
            if sampling:
                while next_tick <= event.time and next_tick < duration:
                    sampler.sample(next_tick)
                    next_tick += tick
            if event.time > duration:
                break
            processed += 1
            if event.kind == "start":
                start_query(event.payload, event.time)
            elif event.kind == "phase_done":
                on_phase_done(event.payload, event.time)
            elif event.kind == "response":
                request_settled(event.payload, event.time)
            elif event.kind == "timeout":
                on_timeout(event.payload, event.time)
            elif event.kind == "retry":
                on_retry(event.payload, event.time)
            elif event.kind == "background":
                on_background(event.payload, event.time)
            else:  # "abort": the whole replica chain was down at start.
                fail_query(event.payload, event.time)
        self.events_processed = processed

        workers = self.cluster.workers
        metrics.histogram("db.query.latency_seconds").observe_many(latencies)
        metrics.histogram("db.worker.vertices_read").observe_many(
            w.stats.vertices_read for w in workers)
        metrics.histogram("db.worker.busy_seconds").observe_many(
            w.stats.busy_seconds for w in workers)
        if sampling:
            sampler.sample(duration)
        if tracing:
            tracer.end_subtree(root_span, duration, status="inflight")
            tracer.end(root_span, duration,
                       completed_queries=int(c_completed.value),
                       failed_queries=int(c_failed.value))
        return SimulationResult(
            num_workers=self.cluster.num_workers,
            clients_per_worker=self.clients_per_worker,
            duration=duration,
            warmup=warmup,
            latencies=np.asarray(latencies),
            vertices_read_per_worker=np.array(
                [w.stats.vertices_read for w in workers], dtype=np.int64),
            requests_per_worker=np.array(
                [w.stats.requests_served for w in workers], dtype=np.int64),
            busy_seconds_per_worker=np.array(
                [w.stats.busy_seconds for w in workers]),
            metrics=metrics,
            requests_lost_per_worker=np.array(
                [w.stats.requests_lost for w in workers], dtype=np.int64),
        )


def reference_simulate_workload(graph: Graph, partition, bindings, *,
                                clients_per_worker: int = 12,
                                duration: float = 2.0,
                                service_model: ServiceModel | None = None,
                                fanout_limit: int | None = 64,
                                worker_speeds=None,
                                fault_schedule: FaultSchedule | None = None,
                                retry_policy: RetryPolicy | None = None,
                                k_safety: int = 2,
                                raise_on_failure: bool = False,
                                sampler=None,
                                sample_interval: float | None = None,
                                ) -> SimulationResult:
    """One-shot wrapper around :class:`ReferenceClosedLoopSimulation`."""
    assignment = getattr(partition, "assignment", partition)
    num_workers = getattr(partition, "num_partitions",
                          int(np.max(assignment)) + 1)
    sim = ReferenceClosedLoopSimulation(
        graph, assignment, num_workers,
        clients_per_worker=clients_per_worker,
        service_model=service_model,
        fanout_limit=fanout_limit,
        worker_speeds=worker_speeds,
        fault_schedule=fault_schedule,
        retry_policy=retry_policy,
        k_safety=k_safety,
        raise_on_failure=raise_on_failure,
    )
    return sim.run(bindings, duration=duration, sampler=sampler,
                   sample_interval=sample_interval)
