"""Shared exception types for the ``repro`` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure mode of this package with a single ``except`` clause
while still being able to distinguish configuration mistakes from data
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied."""


class GraphFormatError(ReproError):
    """A graph file or in-memory description could not be parsed."""


class IngestError(ReproError):
    """An on-disk edge-stream file is malformed (bad magic, unsupported
    version, truncated payload) or the sharded ingest driver was
    misconfigured / reached an inconsistent state."""


class PartitioningError(ReproError):
    """A partitioning algorithm was used incorrectly or produced an
    inconsistent state (e.g. asking for the assignment of an unseen vertex).
    """


class SimulationError(ReproError):
    """The analytics engine or database simulator reached an invalid state."""


class FaultInjectionError(ReproError):
    """A fault schedule is invalid, or a chaos invariant was violated
    (e.g. the zero-fault schedule failed to reproduce the baseline)."""


class OrchestratorError(ReproError):
    """The experiment orchestrator reached an invalid state: a malformed
    job graph, an unserialisable artifact key, or a determinism violation
    (two runs producing different bytes for the same report)."""


class WorkerFailedError(SimulationError):
    """An operation targeted a crashed worker and no replica could take
    over (the entire k-safety replica chain is down)."""


class QueryTimeoutError(SimulationError):
    """A query exhausted its retry budget without completing (raised only
    when the simulation runs with ``raise_on_failure=True``; otherwise
    failed queries are counted, as a real client-side SLA monitor would).
    """
