"""Profiling reports over recorded traces: flamegraph and hot spans.

Pure functions from a span list to text, shared by the ``repro-trace``
CLI and the tests.  Durations are simulated seconds (see
:mod:`repro.telemetry.tracer`), so the "profile" attributes modelled cost
— which superstep, machine, query or decision the simulation spent its
virtual time on — not Python CPU time.
"""

from __future__ import annotations

from repro.telemetry.tracer import Span

#: Glyph used for flamegraph bars (ASCII-safe fallback: "#").
BAR = "▇"


def build_tree(spans: list[Span]) -> tuple[list[Span], dict[int, list[Span]]]:
    """Return (roots, children-by-parent-id), both in (start, id) order."""
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    known = {span.span_id for span in spans}
    for span in spans:
        if span.parent_id is None or span.parent_id not in known:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    order = lambda s: (s.start, s.span_id)  # noqa: E731
    roots.sort(key=order)
    for siblings in children.values():
        siblings.sort(key=order)
    return roots, children


def render_flamegraph(spans: list[Span], *, width: int = 100,
                      max_depth: int | None = None,
                      min_fraction: float = 0.0) -> str:
    """Render a trace as an indented text flamegraph.

    Each line is one span: indentation encodes nesting, the bar length is
    the span's share of its root's duration.  *min_fraction* prunes spans
    below that share (their pruned-descendant count is reported), and
    *max_depth* caps nesting.
    """
    if not spans:
        return "(empty trace)"
    roots, children = build_tree(spans)
    total = sum(root.duration for root in roots) or 1.0
    depths = _depths(roots, children)
    name_width = min(48, max((2 * depths[span.span_id] + len(_label(span))
                              for span in spans), default=10))
    bar_width = max(10, width - name_width - 24)
    lines: list[str] = []
    # Adjacent pruned siblings collapse into one "..." line; this tracks
    # the open prune marker as (line_index, depth, count).
    prune: tuple[int, int, int] | None = None

    # Iterative pre-order walk: recursion would overflow on pathological
    # hand-made traces, and real db traces nest thousands of queries.
    stack = [(root, 0) for root in reversed(roots)]
    while stack:
        span, depth = stack.pop()
        fraction = span.duration / total
        if fraction < min_fraction:
            pruned = 1 + _count_descendants(span, children)
            if prune is not None and prune[1] == depth:
                index, _, count = prune
                prune = (index, depth, count + pruned)
            else:
                prune = (len(lines), depth, pruned)
                lines.append("")
            lines[prune[0]] = (f"{'  ' * depth}... ({prune[2]} span(s) "
                               f"below {min_fraction:.0%} of total)")
            continue
        prune = None
        label = ("  " * depth + _label(span)).ljust(name_width)[:name_width]
        bar = BAR * max(1, round(fraction * bar_width))
        lines.append(f"{label} {bar.ljust(bar_width)} "
                     f"{span.duration:.6f}s {fraction:6.1%}")
        if max_depth is not None and depth + 1 >= max_depth:
            continue
        stack.extend((child, depth + 1)
                     for child in reversed(children.get(span.span_id, ())))
    return "\n".join(lines)


def hot_spans(spans: list[Span], top: int | None = 10) -> list[dict]:
    """Top-*top* span names by self time (total minus child time).

    Aggregates every instance of a name into one row — a 12-epoch
    service trace emits ``service.epoch`` twelve times, and the row sums
    them.  Returns dicts with ``name``, ``count``, ``total_seconds``,
    ``self_seconds``, ``mean_seconds``, ``max_seconds`` (the worst
    single instance) and ``share`` (this name's slice of all self time
    — shares sum to 1, even when simulated workers overlap), sorted by
    self time; ``top=None`` returns every name (the flamegraph answers
    *where*; this answers *what kind*).
    """
    _, children = build_tree(spans)
    totals: dict[str, list[float]] = {}
    for span in spans:
        child_time = sum(c.duration for c in children.get(span.span_id, ()))
        bucket = totals.setdefault(span.name, [0, 0.0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += span.duration
        bucket[2] += max(0.0, span.duration - child_time)
        bucket[3] = max(bucket[3], span.duration)
    all_self = sum(bucket[2] for bucket in totals.values())
    rows = [
        {"name": name, "count": count, "total_seconds": total,
         "self_seconds": self_time,
         "mean_seconds": total / count if count else 0.0,
         "max_seconds": worst,
         "share": self_time / all_self if all_self else 0.0}
        for name, (count, total, self_time, worst) in totals.items()
    ]
    rows.sort(key=lambda r: (-r["self_seconds"], -r["total_seconds"],
                             r["name"]))
    return rows if top is None else rows[:top]


def render_hot_spans(spans: list[Span], top: int | None = 10) -> str:
    """Text table of :func:`hot_spans` (the CLI's ``--top`` report)."""
    rows = hot_spans(spans, top=top)
    if not rows:
        return "(empty trace)"
    headers = ["name", "count", "self (s)", "self %", "total (s)",
               "mean (s)", "max (s)"]
    cells = [[r["name"], str(r["count"]), f"{r['self_seconds']:.6f}",
              f"{r['share']:.1%}", f"{r['total_seconds']:.6f}",
              f"{r['mean_seconds']:.6f}", f"{r['max_seconds']:.6f}"]
             for r in rows]
    widths = [max(len(headers[i]), *(len(row[i]) for row in cells))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(cell.ljust(widths[i])
                           for i, cell in enumerate(row)) for row in cells)
    return "\n".join(lines)


def trace_summary(spans: list[Span]) -> dict:
    """Headline numbers for a trace: span count, roots, total duration,
    plus ``by_name`` — the full per-span-name aggregate table (every
    name, not just the hot ones), keyed by name."""
    roots, _ = build_tree(spans)
    by_name = {row["name"]: {k: v for k, v in row.items() if k != "name"}
               for row in hot_spans(spans, top=None)}
    return {
        "spans": len(spans),
        "roots": len(roots),
        "names": len({span.name for span in spans}),
        "total_seconds": sum(root.duration for root in roots),
        "by_name": by_name,
    }


# ----------------------------------------------------------------------
def _label(span: Span) -> str:
    """Short display label: name plus the most identifying attribute."""
    for key in ("iteration", "machine", "worker", "client", "kind", "step"):
        if key in span.attrs:
            return f"{span.name}[{key}={span.attrs[key]}]"
    return span.name


def _depths(roots: list[Span],
            children: dict[int, list[Span]]) -> dict[int, int]:
    """Depth of every span reachable from *roots*, in one pass."""
    depths: dict[int, int] = {}
    stack = [(root, 0) for root in roots]
    while stack:
        span, depth = stack.pop()
        depths[span.span_id] = depth
        stack.extend((child, depth + 1)
                     for child in children.get(span.span_id, ()))
    return depths


def _count_descendants(span: Span, children: dict[int, list[Span]]) -> int:
    count = 0
    stack = list(children.get(span.span_id, ()))
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(children.get(node.span_id, ()))
    return count
