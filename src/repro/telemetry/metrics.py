"""Named counters, gauges and histograms behind one registry.

Before this module, every substrate grew its own ad-hoc counter fields
(``timeouts``/``retries``/``dropped_requests`` in the database simulator,
``checkpoint_seconds_total`` on the analytics run).  The registry gives
those numbers names in one flat namespace (``db.timeouts``,
``gas.checkpoint_seconds_total``), so reports, benchmarks and tests read
them uniformly; the old attribute spellings survive as properties on the
result objects.

Histograms summarise into the same
:class:`~repro.metrics.runtime.DistributionSummary` the paper's figures
use, so a registry snapshot speaks the repo's existing vocabulary.
"""

from __future__ import annotations

from repro.metrics.runtime import DistributionSummary, summarize

#: Every metric name the repo emits, in one place — the export schema.
#: reprolint rule RL107 enforces the contract both ways: every literal
#: name passed to ``counter()``/``gauge()``/``histogram()`` anywhere in
#: ``repro`` must appear here, and every non-wildcard entry here must
#: have at least one emitter.  Entries ending in ``.*`` cover dynamic
#: f-string families (the orchestrator's cache outcome counters).
#: Keep the tuple sorted; RL107 checks that too.
METRIC_NAMES = (
    "cache.*",
    "db.migration.busy_seconds",
    "db.migration.waits",
    "db.network_bytes",
    "db.queries.completed",
    "db.queries.failed",
    "db.query.latency_seconds",
    "db.reads.remote",
    "db.reads.total",
    "db.requests.dropped",
    "db.retries",
    "db.timeouts",
    "db.worker.busy_seconds",
    "db.worker.vertices_read",
    "gas.checkpoint_seconds_total",
    "gas.checkpoints",
    "gas.gather_messages",
    "gas.machine.compute_seconds",
    "gas.mirror_update_messages",
    "gas.network_bytes",
    "gas.recoveries",
    "gas.reexecuted_supersteps",
    "gas.supersteps",
    "ingest.edges",
    "ingest.peak_bytes",
    "ingest.spilled_edges",
    "ingest.sync_rounds",
    "orchestrator.computed.*",
    "orchestrator.job.wall_seconds",
    "service.epoch.applied_mutations",
    "service.epoch.completed_queries",
    "service.epoch.drift",
    "service.epoch.edge_cut",
    "service.epoch.failed_queries",
    "service.epoch.imbalance",
    "service.epoch.mean_latency_ms",
    "service.epoch.migration_waits",
    "service.epoch.num_edges",
    "service.epoch.num_vertices",
    "service.epoch.offered_mutations",
    "service.epoch.p99_latency_ms",
    "service.epoch.pending_mutations",
    "service.epoch.retries",
    "service.epoch.shed_reads",
    "service.epoch.shed_writes",
    "service.epoch.timeouts",
    "service.migration.bytes",
    "service.migration.vertices",
    "service.migrations",
    "service.mutations.applied",
    "service.queries.completed",
    "service.queries.failed",
    "service.shed.reads",
    "service.shed.writes",
)


def registered_metric_name(name: str) -> bool:
    """True when *name* is covered by :data:`METRIC_NAMES` (wildcards
    match whole dotted prefixes: ``cache.*`` covers ``cache.hit.x``)."""
    if name in METRIC_NAMES:
        return True
    return any(name.startswith(entry[:-1])
               for entry in METRIC_NAMES if entry.endswith(".*"))


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """A named value that can move both ways (e.g. partitioner state size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value!r})"


class Histogram:
    """A named sample collection summarised as a DistributionSummary."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    def observe_many(self, values) -> None:
        self._values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def summary(self) -> DistributionSummary:
        """Five-number + mean + p95/p99 summary (the Fig. 4/7/15 shape)."""
        return summarize(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Names are dotted paths (``db.timeouts``, ``gas.gather_messages``); a
    name belongs to exactly one metric kind — asking for a counter under
    an existing histogram name raises, catching wiring mistakes early.
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (*default* when absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use summary()")
        return metric.value

    def summary(self, name: str) -> DistributionSummary:
        """Summary of histogram *name* (empty summary when absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return summarize([])
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is not a histogram")
        return metric.summary()

    def snapshot(self) -> dict:
        """JSON-ready snapshot: scalars flat, histograms summarised."""
        counters, gauges, histograms = {}, {}, {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                summary = metric.summary()
                histograms[name] = {
                    "count": metric.count,
                    "min": summary.minimum, "p25": summary.p25,
                    "p50": summary.p50,
                    "median": summary.median, "p75": summary.p75,
                    "p95": summary.p95, "p99": summary.p99,
                    "max": summary.maximum, "mean": summary.mean,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} metrics)"
