"""Declarative SLOs with error budgets and burn-rate alerting.

A :class:`Slo` names a service-level indicator over the per-epoch
:class:`~repro.telemetry.timeseries.MetricSample` series and a target
*objective* (the good fraction, e.g. ``0.999``).  The complement —
``1 - objective`` — is the **error budget**; the evaluator tracks how
fast a run consumes it:

* per sample, the indicator's *bad fraction* in ``[0, 1]`` (a threshold
  indicator is all-good or all-bad for the epoch; a ratio indicator is
  the bad-event share of the epoch's events);
* the **burn rate** over a fast and a slow trailing window — the classic
  multi-window construction: paging requires *both* windows to burn
  hot (a blip cannot page), while the slow window alone raises tickets
  (a slow leak cannot hide);
* the cumulative share of the whole run's budget consumed.

Everything is evaluated in **simulated time** from deterministic
samples, so two same-seed service runs produce identical alert
timelines — alerts are regression-testable artifacts, not ops noise.
The online service (:mod:`repro.service.core`) appends the resulting
:class:`AlertEvent` stream to its result and can optionally feed page
alerts back into admission control (``ServiceConfig.slo_degradation``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.timeseries import MetricSample

#: Alert severities in escalation order.
SEVERITIES = ("page", "ticket")
#: Indicator kinds an :class:`Slo` may declare.
INDICATORS = ("threshold", "ratio")


@dataclass(frozen=True)
class Slo:
    """One service-level objective over a sampled metric series.

    Attributes
    ----------
    name / description:
        Stable identifier (appears in alerts, dashboards and exports)
        and a human sentence of what the objective promises.
    objective:
        Target good fraction in ``(0, 1)``; the error budget is
        ``1 - objective``.
    indicator:
        ``"threshold"`` — the epoch is *bad* when the level read from
        ``metric`` exceeds ``bound``.  ``"ratio"`` — the epoch's bad
        fraction is ``rate(metric) / rate(total_metric)`` (counter
        deltas, or gauge values for per-epoch gauges; ``total_metric``
        may sum several series with ``+``).
    metric / bound / total_metric:
        The series the indicator reads.  Histogram quantiles are
        addressed as ``"name:p99"``.
    fast_window / slow_window:
        Trailing window lengths in samples (epochs) for burn rates.
    page_burn / ticket_burn:
        Burn-rate thresholds: *page* when both windows burn at or above
        ``page_burn``; *ticket* when the slow window alone reaches
        ``ticket_burn``.
    """

    name: str
    description: str
    objective: float
    indicator: str
    metric: str
    bound: float = 0.0
    total_metric: str = ""
    fast_window: int = 2
    slow_window: int = 6
    page_burn: float = 8.0
    ticket_burn: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("Slo.name must be non-empty")
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"objective must lie in (0, 1), got {self.objective}")
        if self.indicator not in INDICATORS:
            raise ConfigurationError(
                f"indicator must be one of {INDICATORS}, "
                f"got {self.indicator!r}")
        if self.indicator == "ratio" and not self.total_metric:
            raise ConfigurationError(
                f"ratio SLO {self.name!r} needs a total_metric denominator")
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise ConfigurationError(
                "windows must satisfy 1 <= fast_window <= slow_window")
        if self.page_burn <= 0 or self.ticket_burn <= 0:
            raise ConfigurationError("burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """The error budget: the tolerable bad fraction, ``1 - objective``."""
        return 1.0 - self.objective

    def bad_fraction(self, sample: MetricSample) -> float:
        """The indicator's bad share of this sample, in ``[0, 1]``."""
        if self.indicator == "threshold":
            return 1.0 if _read_level(sample, self.metric) > self.bound \
                else 0.0
        bad = _read_rate(sample, self.metric)
        total = sum(_read_rate(sample, part)
                    for part in self.total_metric.split("+"))
        if total <= 0.0:
            return 0.0
        return min(1.0, max(0.0, bad / total))


def _read_level(sample: MetricSample, name: str) -> float:
    """Instantaneous level: gauge, cumulative counter, or ``hist:pXX``."""
    if ":" in name:
        hist, key = name.rsplit(":", 1)
        return sample.quantile(hist, key)
    return sample.value(name)


def _read_rate(sample: MetricSample, name: str) -> float:
    """Per-sample rate: counter delta, else gauge/level value."""
    name = name.strip()
    if name in sample.deltas:
        return sample.delta(name)
    return _read_level(sample, name)


@dataclass(frozen=True)
class AlertEvent:
    """One alert transition in the simulated-time alert log."""

    epoch: int
    time: float
    slo: str
    severity: str  # "page" | "ticket"
    kind: str      # "fire" | "resolve"
    burn_fast: float
    burn_slow: float
    budget_consumed: float

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SloStatus:
    """Everything the evaluator derived for one SLO over one run."""

    slo: Slo
    bad_fractions: list[float] = field(default_factory=list)
    burn_fast: list[float] = field(default_factory=list)
    burn_slow: list[float] = field(default_factory=list)
    budget_consumed: list[float] = field(default_factory=list)
    alerts: list[AlertEvent] = field(default_factory=list)

    @property
    def consumed(self) -> float:
        """Final share of the run's error budget consumed (>= 0)."""
        return self.budget_consumed[-1] if self.budget_consumed else 0.0

    @property
    def breached(self) -> bool:
        """True when the run spent its whole error budget."""
        return self.consumed >= 1.0

    @property
    def pages(self) -> int:
        return sum(1 for a in self.alerts
                   if a.severity == "page" and a.kind == "fire")

    @property
    def tickets(self) -> int:
        return sum(1 for a in self.alerts
                   if a.severity == "ticket" and a.kind == "fire")

    def to_dict(self) -> dict:
        return {
            "slo": asdict(self.slo),
            "bad_fractions": list(self.bad_fractions),
            "burn_fast": list(self.burn_fast),
            "burn_slow": list(self.burn_slow),
            "budget_consumed": list(self.budget_consumed),
            "consumed": self.consumed,
            "breached": self.breached,
            "pages": self.pages,
            "tickets": self.tickets,
            "alerts": [a.to_dict() for a in self.alerts],
        }


class SloEvaluator:
    """Incremental multi-window burn-rate evaluation over a sample stream.

    Feed samples in simulated-time order with :meth:`observe`; each call
    returns the alert transitions that sample caused, in deterministic
    order (SLO declaration order, page before ticket).  The service's
    epoch loop uses the incremental form so a page alert can tighten
    admission control *next* epoch; batch callers use
    :func:`evaluate_slos`.

    Parameters
    ----------
    slos:
        The objectives to track, in declaration order.
    horizon:
        Total expected samples (the service passes ``config.epochs``);
        sizes the run-level error budget.  Defaults to a growing horizon
        (budget fraction is then relative to samples seen so far).
    """

    def __init__(self, slos, *, horizon: int | None = None):
        if horizon is not None and horizon < 1:
            raise ConfigurationError("horizon must be >= 1 or None")
        self.slos = tuple(slos)
        names = [s.name for s in self.slos]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO names in {names}")
        self.horizon = horizon
        self.statuses = [SloStatus(slo=slo) for slo in self.slos]
        self._active: list[dict[str, bool]] = [
            {severity: False for severity in SEVERITIES} for _ in self.slos]
        self.alerts: list[AlertEvent] = []

    def observe(self, sample: MetricSample) -> list[AlertEvent]:
        """Evaluate one sample; returns the alert transitions it caused."""
        events: list[AlertEvent] = []
        for slot, (slo, status) in enumerate(zip(self.slos, self.statuses)):
            bad = slo.bad_fraction(sample)
            status.bad_fractions.append(bad)
            n = len(status.bad_fractions)
            budget = slo.budget
            fast = _window_mean(status.bad_fractions, slo.fast_window)
            slow = _window_mean(status.bad_fractions, slo.slow_window)
            burn_fast = fast / budget
            burn_slow = slow / budget
            horizon = self.horizon if self.horizon is not None else n
            consumed = sum(status.bad_fractions) / (budget * horizon)
            status.burn_fast.append(burn_fast)
            status.burn_slow.append(burn_slow)
            status.budget_consumed.append(consumed)

            should = {
                # Both windows must burn hot to page: a one-epoch blip
                # cannot wake anyone unless the slow window corroborates.
                "page": burn_fast >= slo.page_burn
                and burn_slow >= slo.page_burn * slo.fast_window
                / slo.slow_window,
                # The slow window alone raises a ticket: slow leaks
                # surface even when no single epoch looks alarming.
                "ticket": burn_slow >= slo.ticket_burn,
            }
            for severity in SEVERITIES:
                if should[severity] == self._active[slot][severity]:
                    continue
                self._active[slot][severity] = should[severity]
                event = AlertEvent(
                    epoch=sample.index, time=sample.time, slo=slo.name,
                    severity=severity,
                    kind="fire" if should[severity] else "resolve",
                    burn_fast=burn_fast, burn_slow=burn_slow,
                    budget_consumed=consumed)
                status.alerts.append(event)
                events.append(event)
        self.alerts.extend(events)
        return events

    def paging(self) -> bool:
        """True while any SLO has an active page alert."""
        return any(state["page"] for state in self._active)

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "slos": [status.to_dict() for status in self.statuses],
            "alerts": [a.to_dict() for a in self.alerts],
        }


def _window_mean(values: list[float], window: int) -> float:
    tail = values[-window:]
    return sum(tail) / len(tail)


def evaluate_slos(samples, slos, *, horizon: int | None = None) -> SloEvaluator:
    """Batch evaluation: run an :class:`SloEvaluator` over *samples*."""
    evaluator = SloEvaluator(slos, horizon=horizon)
    for sample in samples:
        evaluator.observe(sample)
    return evaluator


# ----------------------------------------------------------------------
# The online service's default objective set
# ----------------------------------------------------------------------
def default_service_slos(*, p99_latency_ms: float = 60.0,
                         availability: float = 0.999,
                         shed_rate: float = 0.05,
                         drift_bound: float = 0.05,
                         backlog_bound: float = 200.0) -> tuple[Slo, ...]:
    """The five SLOs every service run is judged against by default.

    Thresholds are calibrated to the ``slo-ablation`` experiment's
    nominal policy, which holds every objective; each knob has a named
    failure mode (starve ``mutation_service_rate`` → backlog + shed;
    disable migration → drift; shrink queue bounds → availability) that
    the other policies exercise.  The default ``serve-sim`` /
    ``repro health`` scenario is deliberately over-subscribed (offered
    writes exceed the service rate), so its dashboard demos a live
    write-shed / backlog breach rather than an all-green board.
    """
    return (
        Slo(name="query-latency-p99",
            description=f"epoch p99 query latency stays <= "
                        f"{p99_latency_ms:g} ms",
            objective=0.9, indicator="threshold",
            metric="service.epoch.p99_latency_ms", bound=p99_latency_ms),
        Slo(name="availability",
            description=f"at least {availability:.3%} of queries succeed",
            objective=availability, indicator="ratio",
            metric="service.queries.failed",
            total_metric="service.queries.completed"
                         "+service.queries.failed"),
        Slo(name="write-shed-rate",
            description=f"at most {shed_rate:.0%} of offered writes are "
                        f"shed by admission control",
            objective=1.0 - shed_rate, indicator="ratio",
            metric="service.epoch.shed_writes",
            total_metric="service.epoch.offered_mutations"),
        Slo(name="partition-drift",
            description=f"partition-quality drift stays <= {drift_bound:g}",
            objective=0.8, indicator="threshold",
            metric="service.epoch.drift", bound=drift_bound),
        Slo(name="migration-backlog",
            description=f"the pending-mutation backlog stays <= "
                        f"{backlog_bound:g}",
            objective=0.8, indicator="threshold",
            metric="service.epoch.pending_mutations", bound=backlog_bound),
    )
