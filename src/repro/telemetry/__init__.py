"""repro.telemetry — deterministic tracing, metrics and profiling.

Three layers (see ``docs/telemetry.md`` for the span taxonomy and trace
schema):

* :mod:`~repro.telemetry.tracer` — a zero-dependency span tracer whose
  timestamps come from the substrates' *simulated* clocks, so traces are
  seed-stable and regression-testable;
* :mod:`~repro.telemetry.metrics` — named counters/gauges/histograms
  behind one registry, replacing the substrates' ad-hoc counter fields;
* :mod:`~repro.telemetry.profile` — text flamegraph / hot-span reports
  over recorded traces (also the ``repro-trace`` CLI).

On top of the registry sits the observability layer (``docs/slo.md``):
:mod:`~repro.telemetry.timeseries` samples a registry into immutable
per-epoch series, :mod:`~repro.telemetry.slo` evaluates error-budget /
burn-rate SLOs over those series in simulated time, and
:mod:`~repro.telemetry.export` renders canonical OpenMetrics/JSONL
artifacts (the ``repro health`` dashboard's inputs).

Telemetry is **disabled by default**: the global tracer exists but
records nothing, and instrumented hot paths skip all tracer calls behind
a single ``enabled`` check.  Enable it for a block of work with::

    from repro import telemetry

    with telemetry.recording() as tracer:
        run_workload(graph, partition, PageRank(num_iterations=5))
    tracer.write_jsonl("trace.jsonl")

or globally with ``telemetry.configure(enabled=True)``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.export import (
    records_to_jsonl,
    samples_to_jsonl,
    to_openmetrics,
)
from repro.telemetry.metrics import (
    METRIC_NAMES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registered_metric_name,
)
from repro.telemetry.profile import (
    build_tree,
    hot_spans,
    render_flamegraph,
    render_hot_spans,
    trace_summary,
)
from repro.telemetry.slo import (
    AlertEvent,
    Slo,
    SloEvaluator,
    default_service_slos,
    evaluate_slos,
)
from repro.telemetry.timeseries import (
    MetricSample,
    TimeSeriesSampler,
)
from repro.telemetry.tracer import (
    SCHEMA_VERSION,
    SimClock,
    Span,
    Tracer,
    read_jsonl,
)

__all__ = [
    "SCHEMA_VERSION",
    "Span",
    "SimClock",
    "Tracer",
    "read_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRIC_NAMES",
    "registered_metric_name",
    "MetricSample",
    "TimeSeriesSampler",
    "Slo",
    "SloEvaluator",
    "AlertEvent",
    "default_service_slos",
    "evaluate_slos",
    "to_openmetrics",
    "samples_to_jsonl",
    "records_to_jsonl",
    "build_tree",
    "render_flamegraph",
    "render_hot_spans",
    "hot_spans",
    "trace_summary",
    "get_tracer",
    "set_tracer",
    "get_metrics",
    "set_metrics",
    "configure",
    "recording",
]

#: The process-wide tracer instrumented code resolves at run time.
_GLOBAL_TRACER = Tracer(enabled=False)

#: The process-wide metrics registry.  Substrate runs carry their own
#: per-run registries; this one holds cross-run process state — the
#: orchestrator's ``cache.*`` hit/miss counters and the
#: ``orchestrator.computed.*`` work counters.
_GLOBAL_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global metrics registry; returns the previous one.

    Tests install a fresh registry to read counters in isolation.
    """
    global _GLOBAL_METRICS
    previous = _GLOBAL_METRICS
    _GLOBAL_METRICS = registry
    return previous


def get_tracer() -> Tracer:
    """The global tracer (disabled by default)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the global tracer; returns the previous one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def configure(*, enabled: bool | None = None,
              decision_sample_every: int | None = None) -> Tracer:
    """Tune the global tracer in place; returns it."""
    tracer = _GLOBAL_TRACER
    if enabled is not None:
        tracer.enabled = enabled
    if decision_sample_every is not None:
        if decision_sample_every < 1:
            raise ValueError("decision_sample_every must be >= 1")
        tracer.decision_sample_every = decision_sample_every
    return tracer


@contextmanager
def recording(*, decision_sample_every: int = 64):
    """Swap in a fresh enabled tracer for the duration of the block.

    Yields the tracer; the previous global tracer (typically the disabled
    default) is restored on exit, even on error — so a test or CLI run
    can record a trace without leaking enabled-mode overhead into the
    rest of the process.
    """
    tracer = Tracer(enabled=True,
                    decision_sample_every=decision_sample_every)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
