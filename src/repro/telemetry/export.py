"""Canonical wire formats for sampled metrics: OpenMetrics text + JSONL.

Two surfaces over the :mod:`repro.telemetry.timeseries` samples:

* :func:`to_openmetrics` — the OpenMetrics text exposition format
  (``# TYPE`` metadata, ``_total``-suffixed counters, summary quantile
  labels, terminating ``# EOF``) for one sample, so any Prometheus-
  compatible toolchain can scrape a run's final state;
* :func:`samples_to_jsonl` / :func:`records_to_jsonl` — one canonical
  JSON object per line for whole series (samples, alert events), the
  format the health dashboard and CI artifacts consume.

Both formats are **canonical**: keys sorted, floats rendered by
shortest-roundtrip ``repr`` (integral values as integers), timestamps in
simulated seconds.  Two same-seed runs therefore produce byte-identical
exports — asserted by ``tests/test_observability.py`` under an active
fault schedule and a triggered migration.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Mapping

from repro.telemetry.timeseries import MetricSample

#: Histogram-summary fields exported as OpenMetrics summary quantiles.
#: min/max ride along as quantile 0 and 1 (both legal quantile values),
#: so the whole snapshot survives the round trip.
_QUANTILE_FIELDS = (
    ("min", "0"),
    ("p25", "0.25"),
    ("p50", "0.5"),
    ("median", "0.5"),
    ("p75", "0.75"),
    ("p95", "0.95"),
    ("p99", "0.99"),
    ("max", "1"),
)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def openmetrics_name(name: str, *, prefix: str = "repro_") -> str:
    """Map a dotted registry name onto the OpenMetrics grammar.

    ``db.query.latency_seconds`` → ``repro_db_query_latency_seconds``.
    """
    flat = prefix + name.replace(".", "_").replace("-", "_")
    if not _NAME_OK.match(flat):
        raise ValueError(f"cannot express metric name {name!r} "
                         f"in OpenMetrics ({flat!r})")
    return flat


def format_value(value: float) -> str:
    """Canonical number rendering: integers bare, floats by ``repr``.

    ``repr`` is shortest-roundtrip and deterministic for identical bits,
    which is exactly the byte-identity contract the exports promise.
    """
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_openmetrics(sample: MetricSample, *, prefix: str = "repro_") -> str:
    """Render one sample as an OpenMetrics text exposition.

    Counters become ``<name>_total`` counter families, gauges become
    gauge families, histogram summaries become summary families with
    quantile-labelled points plus ``_count``/``_sum`` (sum reconstructed
    as ``mean * count``).  Every point is stamped with the sample's
    simulated time.  The exposition terminates with ``# EOF`` per spec.
    """
    stamp = format_value(sample.time)
    lines: list[str] = []
    for name in sorted(sample.counters):
        flat = openmetrics_name(name, prefix=prefix)
        lines.append(f"# TYPE {flat} counter")
        lines.append(
            f"{flat}_total {format_value(sample.counters[name])} {stamp}")
    for name in sorted(sample.gauges):
        flat = openmetrics_name(name, prefix=prefix)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {format_value(sample.gauges[name])} {stamp}")
    for name in sorted(sample.histograms):
        flat = openmetrics_name(name, prefix=prefix)
        summary = sample.histograms[name]
        lines.append(f"# TYPE {flat} summary")
        seen: set[str] = set()
        for field, quantile in _QUANTILE_FIELDS:
            if field not in summary or quantile in seen:
                continue
            seen.add(quantile)
            lines.append(f"{flat}{{quantile=\"{quantile}\"}} "
                         f"{format_value(summary[field])} {stamp}")
        count = summary.get("count", 0.0)
        total = summary.get("mean", 0.0) * count
        lines.append(f"{flat}_count {format_value(count)} {stamp}")
        lines.append(f"{flat}_sum {format_value(total)} {stamp}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _canonical_json(record: Mapping) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def records_to_jsonl(records: Iterable) -> str:
    """One canonical JSON object per line; accepts dicts or objects
    exposing ``to_dict()`` (samples, alert events, SLO statuses)."""
    lines = []
    for record in records:
        if hasattr(record, "to_dict"):
            record = record.to_dict()
        lines.append(_canonical_json(record))
    return "\n".join(lines) + ("\n" if lines else "")


def samples_to_jsonl(samples: Iterable[MetricSample]) -> str:
    """Canonical JSONL for a metric-sample series."""
    return records_to_jsonl(samples)


def write_text(path: str, payload: str) -> None:
    """Write an export payload byte-exactly (newline-preserving)."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(payload)
