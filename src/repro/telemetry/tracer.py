"""Deterministic span tracer for the simulated substrates.

The engines in this repository *model* time: the GAS engine derives each
superstep's wall clock from its cost model, and the database simulator is
a discrete-event loop whose event times are exact.  That makes traces
regression-testable — a span's timestamps are part of the simulation's
output, not a measurement — provided no real wall clock ever leaks into
trace content.  The rules that keep that true:

* every timestamp written to a span comes from the caller (a
  :class:`SimClock` advanced by modelled durations, an event-loop time,
  or a stream position) — :class:`Tracer` never reads ``time.time()``;
* span ids are sequential integers, so identical instrumentation-call
  sequences produce identical ids;
* spans are exported in completion order, which is itself deterministic
  given a seed.

Two runs with the same seed therefore produce **byte-identical** JSONL
traces (``tests/test_telemetry_determinism.py`` asserts this for both
substrates, including under fault injection).

Overhead contract: instrumented hot paths guard every tracer call behind
a plain ``tracer.enabled`` attribute check (hoisted out of loops as a
local), so a disabled tracer costs one branch and allocates nothing.
:attr:`Tracer.calls` counts every ``begin``/``end``/``point`` invocation;
the overhead tests assert it stays at zero on disabled-mode hot paths.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

#: Trace schema version written into every exported line.
SCHEMA_VERSION = 1

#: Sentinel meaning "parent is the tracer's current context-manager span".
CURRENT = object()


class SimClock:
    """A simulated clock: a mutable ``now`` advanced by modelled durations.

    The substrates own the arithmetic; the clock only carries the value so
    context-manager spans can read a start and an end time.
    """

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0):
        self.now = float(now)

    def advance(self, seconds: float) -> float:
        """Move the clock forward and return the new time."""
        self.now += seconds
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now!r})"


class Span:
    """One traced operation: a named interval with nested children.

    ``start``/``end`` are simulated seconds (or stream positions for
    partitioner decision spans — the trace schema records which via the
    span name's prefix).  ``attrs`` carries the span's payload: counts,
    scores, worker ids — anything JSON-serialisable.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 start: float, end: float | None = None,
                 attrs: dict | None = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs or {}

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready record (keys sorted at serialisation time)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(record["id"], record.get("parent"), record["name"],
                   record["start"], record.get("end"),
                   record.get("attrs") or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"start={self.start}, end={self.end})")


def _jsonable(value):
    """Coerce numpy scalars/arrays into plain JSON types."""
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", 0) == 0:
        return item()
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class Tracer:
    """Records spans with caller-supplied (simulated) timestamps.

    Parameters
    ----------
    enabled:
        Master switch.  Instrumentation sites hoist this into a local and
        skip all tracer calls when it is False — see the module docstring
        for the overhead contract.
    decision_sample_every:
        Sampling knob for partitioner decision spans: record every Nth
        placement decision (1 = every decision).  Substrate spans are
        never sampled — they are few and each one backs a figure.
    """

    def __init__(self, *, enabled: bool = False,
                 decision_sample_every: int = 64):
        if decision_sample_every < 1:
            raise ValueError("decision_sample_every must be >= 1")
        self.enabled = enabled
        self.decision_sample_every = decision_sample_every
        self.spans: list[Span] = []
        #: Instrumentation-call counter (begin/end/point), kept even when
        #: disabled — the overhead tests assert it stays 0 on hot paths.
        self.calls = 0
        self._next_id = 1
        self._open: dict[int, Span] = {}
        self._stack: list[int] = []
        #: span id -> parent id for every span ever begun (ancestry checks
        #: must work after a parent has already completed).
        self._parents: dict[int, int | None] = {}

    # ------------------------------------------------------------------
    # Core recording API (explicit timestamps)
    # ------------------------------------------------------------------
    def begin(self, name: str, start: float, *, parent=CURRENT,
              **attrs) -> int:
        """Open a span at simulated time *start*; returns its id.

        *parent* defaults to the innermost open context-manager span
        (:data:`CURRENT`); pass an explicit span id — or ``None`` for a
        root — when spans overlap, as the database simulator's in-flight
        queries do.
        """
        self.calls += 1
        if not self.enabled:
            return 0
        if parent is CURRENT:
            parent = self._stack[-1] if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        span = Span(span_id, parent, name, float(start),
                    attrs={k: _jsonable(v) for k, v in attrs.items()})
        self._open[span_id] = span
        self._parents[span_id] = parent
        return span_id

    def end(self, span_id: int, end: float, **attrs) -> None:
        """Close span *span_id* at simulated time *end*.

        Closing an unknown/zero id is a no-op so instrumentation can stay
        unconditional after a disabled-mode ``begin`` returned 0.
        """
        self.calls += 1
        if not self.enabled:
            return
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end = float(end)
        if attrs:
            span.attrs.update((k, _jsonable(v)) for k, v in attrs.items())
        self.spans.append(span)

    def point(self, name: str, at: float, *, parent=CURRENT, **attrs) -> int:
        """Record an instantaneous event as a zero-duration span."""
        span_id = self.begin(name, at, parent=parent, **attrs)
        self.end(span_id, at)
        return span_id

    def emit_closed(self, name: str, start: float, ends, *, parent=None,
                    attr_name: str | None = None) -> None:
        """Batch-record ``len(ends)`` already-closed sibling spans.

        Equivalent to the loop ``for i: end(begin(name, start,
        parent=parent, **{attr_name: i}), ends[i])`` — same span ids,
        same export order, same :attr:`calls` accounting — minus the
        per-span call overhead.  The GAS engine uses this for its
        per-machine compute spans, whose lifetimes are all known at once.
        """
        n = len(ends)
        self.calls += 2 * n
        if not self.enabled:
            return
        span_id = self._next_id
        begin = float(start)
        for i in range(n):
            span = Span(span_id, parent, name, begin, float(ends[i]),
                        {attr_name: i} if attr_name is not None else {})
            self._parents[span_id] = parent
            self.spans.append(span)
            span_id += 1
        self._next_id = span_id

    def end_subtree(self, root_id: int, end: float, **attrs) -> int:
        """Close every still-open descendant of *root_id* at time *end*.

        The database simulator uses this at its horizon: queries still in
        flight would otherwise leave open (unexported) spans whose
        already-closed children turn into orphan roots.  Descendants are
        closed deepest-id first so children precede parents in the
        export, mirroring natural completion order.  Returns the number
        of spans closed.
        """
        self.calls += 1
        if not self.enabled:
            return 0
        closed = 0
        for span_id in sorted(self._open, reverse=True):
            if span_id == root_id or not self._is_descendant(span_id, root_id):
                continue
            span = self._open.pop(span_id)
            span.end = float(end)
            if attrs:
                span.attrs.update((k, _jsonable(v)) for k, v in attrs.items())
            self.spans.append(span)
            closed += 1
        return closed

    def _is_descendant(self, span_id: int, ancestor_id: int) -> bool:
        seen = 0
        parent = self._parents.get(span_id)
        while parent is not None:
            if parent == ancestor_id:
                return True
            parent = self._parents.get(parent)
            seen += 1
            if seen > len(self._parents):  # corrupt-trace cycle guard
                break
        return False

    @contextmanager
    def span(self, name: str, clock: SimClock, **attrs):
        """Context manager: open at ``clock.now``, close at ``clock.now``.

        The body is expected to advance *clock* by the modelled duration;
        nested ``span()``/``begin(parent=CURRENT)`` calls inherit this
        span as their parent.
        """
        span_id = self.begin(name, clock.now, **attrs)
        if self.enabled:
            self._stack.append(span_id)
        try:
            yield span_id
        finally:
            if self.enabled and self._stack and self._stack[-1] == span_id:
                self._stack.pop()
            self.end(span_id, clock.now)

    # ------------------------------------------------------------------
    # Introspection & export
    # ------------------------------------------------------------------
    @property
    def num_spans(self) -> int:
        """Completed spans recorded so far."""
        return len(self.spans)

    def clear(self) -> None:
        """Drop all recorded spans and reset ids (not the call counter)."""
        self.spans.clear()
        self._open.clear()
        self._stack.clear()
        self._parents.clear()
        self._next_id = 1

    def to_jsonl(self) -> str:
        """Serialise completed spans, one JSON object per line.

        Key order and float formatting are fixed (``sort_keys``, compact
        separators, ``repr``-based floats via :mod:`json`), so identical
        span sequences serialise to identical bytes.
        """
        lines = [json.dumps({"schema": SCHEMA_VERSION},
                            sort_keys=True, separators=(",", ":"))]
        lines.extend(
            json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
            for span in self.spans)
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path) -> None:
        """Write the trace to *path* (see :meth:`to_jsonl` for format)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


def read_jsonl(path_or_text) -> list[Span]:
    """Parse a JSONL trace (a path or raw text) back into spans.

    The schema header line is validated and skipped; unknown schema
    versions raise ``ValueError`` so stale traces fail loudly.
    """
    if hasattr(path_or_text, "read"):
        text = path_or_text.read()
    elif "\n" in str(path_or_text) or str(path_or_text).startswith("{"):
        text = str(path_or_text)
    else:
        with open(path_or_text, encoding="utf-8") as handle:
            text = handle.read()
    spans: list[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "schema" in record and "id" not in record:
            if record["schema"] != SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported trace schema {record['schema']!r} "
                    f"(expected {SCHEMA_VERSION})")
            continue
        spans.append(Span.from_dict(record))
    return spans
