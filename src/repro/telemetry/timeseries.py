"""Deterministic time-series sampling over a :class:`MetricsRegistry`.

The registry answers "what are the totals *now*"; the experiments'
central objects — the online service's epoch loop, the DES horizon, a
GAS run's supersteps — are *trajectories*, and an aggregate total cannot
say when p99 degraded or whether a migration paid for itself.  This
module turns a registry into an ordered sequence of immutable
:class:`MetricSample` records: each sample carries the cumulative
counters, the **deltas since the previous sample**, the gauges, and the
histogram quantile summaries, all stamped with *simulated* time — so two
same-seed runs produce byte-identical series (see
:mod:`repro.telemetry.export` for the canonical wire formats).

Sampling is **free when disabled**: a :class:`TimeSeriesSampler`
constructed with ``enabled=False`` makes zero registry calls — the same
contract the span tracer honours on hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class MetricSample:
    """One immutable observation of a registry at a simulated instant.

    Attributes
    ----------
    index:
        Ordinal of the sample in its series (the service uses the epoch
        number, the GAS engine the superstep, the DES a tick counter).
    time:
        Simulated seconds at which the snapshot was taken.
    counters:
        Cumulative counter values at *time*.
    deltas:
        Counter increments since the previous sample (first sample:
        since zero) — the per-epoch rates every SLO indicator reads.
    gauges:
        Instantaneous gauge values.
    histograms:
        Per-histogram quantile summaries
        (``count/min/p25/p50/p75/p95/p99/max/mean``).
    """

    index: int
    time: float
    counters: Mapping[str, float] = field(default_factory=dict)
    deltas: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def value(self, name: str, default: float = 0.0) -> float:
        """Gauge value, else cumulative counter, else *default*."""
        if name in self.gauges:
            return self.gauges[name]
        return self.counters.get(name, default)

    def delta(self, name: str, default: float = 0.0) -> float:
        """Counter increment since the previous sample."""
        return self.deltas.get(name, default)

    def quantile(self, name: str, key: str, default: float = 0.0) -> float:
        """One field of histogram *name*'s summary (e.g. ``"p99"``)."""
        summary = self.histograms.get(name)
        if summary is None:
            return default
        return summary.get(key, default)

    def to_dict(self) -> dict:
        """JSON-ready plain-dict view (sorted keys, plain floats)."""
        return {
            "index": self.index,
            "time": self.time,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "deltas": {k: self.deltas[k] for k in sorted(self.deltas)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: {k: summary[k] for k in sorted(summary)}
                for name, summary in sorted(self.histograms.items())},
        }


def _frozen(mapping: dict) -> Mapping:
    return MappingProxyType(dict(mapping))


class TimeSeriesSampler:
    """Collect ordered :class:`MetricSample` records from one registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.telemetry.metrics.MetricsRegistry` to observe.
    enabled:
        ``False`` makes :meth:`sample` a guaranteed no-op that performs
        **zero registry calls** — instrumented loops may therefore call
        it unconditionally.
    """

    def __init__(self, registry: MetricsRegistry, *, enabled: bool = True):
        self.registry = registry
        self.enabled = enabled
        self.samples: list[MetricSample] = []
        self._last_counters: dict[str, float] = {}
        self._last_time: float | None = None

    def __len__(self) -> int:
        return len(self.samples)

    def sample(self, time: float, index: int | None = None) -> MetricSample | None:
        """Snapshot the registry at simulated *time*; returns the sample.

        Samples must be taken in non-decreasing time order — out-of-order
        timestamps would corrupt every downstream series — and return
        ``None`` without touching the registry when the sampler is
        disabled.
        """
        if not self.enabled:
            return None
        if self._last_time is not None and time < self._last_time:
            raise ConfigurationError(
                f"samples must be taken in time order: got t={time} after "
                f"t={self._last_time}")
        snapshot = self.registry.snapshot()
        counters = snapshot["counters"]
        deltas = {name: value - self._last_counters.get(name, 0.0)
                  for name, value in counters.items()}
        record = MetricSample(
            index=len(self.samples) if index is None else index,
            time=float(time),
            counters=_frozen(counters),
            deltas=_frozen(deltas),
            gauges=_frozen(snapshot["gauges"]),
            histograms=_frozen({name: _frozen(summary)
                                for name, summary
                                in snapshot["histograms"].items()}),
        )
        self.samples.append(record)
        self._last_counters = dict(counters)
        self._last_time = time
        return record

    # ------------------------------------------------------------------
    # Series extraction (the dashboard's and the SLO evaluator's view)
    # ------------------------------------------------------------------
    def series(self, name: str, default: float = 0.0) -> list[float]:
        """Per-sample gauge-or-cumulative-counter values of *name*."""
        return [s.value(name, default) for s in self.samples]

    def delta_series(self, name: str, default: float = 0.0) -> list[float]:
        """Per-sample counter increments of *name*."""
        return [s.delta(name, default) for s in self.samples]

    def quantile_series(self, name: str, key: str = "p99",
                        default: float = 0.0) -> list[float]:
        """Per-sample histogram-summary field of *name* (default p99)."""
        return [s.quantile(name, key, default) for s in self.samples]

    def times(self) -> list[float]:
        return [s.time for s in self.samples]

    def names(self) -> list[str]:
        """Every metric name seen in any sample, sorted."""
        out: set[str] = set()
        for sample in self.samples:
            out.update(sample.counters)
            out.update(sample.gauges)
            out.update(sample.histograms)
        return sorted(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"TimeSeriesSampler({len(self.samples)} samples, {state})"
