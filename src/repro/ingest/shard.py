"""Sharded parallel ingest over file-backed edge streams.

The stream is split into ``num_shards`` contiguous segments; each shard
runs its own partitioner core (HDRF / greedy / DBH-partial, exact or
sketch degree state) over its segment and the shards share one *global
load vector* synchronised every ``sync_interval`` arrivals — the
bulk-synchronous analogue of distributed loaders that partition against
periodically gossiped partition sizes.  Between syncs a shard scores
against **stale** loads; the quality cost of that staleness as a
function of shard count and sync interval is exactly what the
scale-sweep experiment and ``BENCH_scale.json`` measure (the framing of
"(Re)partitioning for stream-enabled computation", arXiv 1310.8211).

Determinism: rounds are lockstep — in round ``r`` every live shard
processes its next ``sync_interval`` arrivals against the same global
snapshot, then the parent adds up the per-shard ``int64`` load deltas
(commutative, so summation order cannot matter) and publishes the next
snapshot.  Shards are *logical*: ``workers`` only controls how many OS
processes execute them, so any worker count produces byte-identical
assignments — the scale-smoke CI job asserts ``workers=1 ≡ workers=4``.

Each shard's tie-break RNG is derived as
``make_rng(splitmix64(shard_index, seed))`` so results are also
independent of which worker hosts which shard.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import asdict, dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import IngestError
from repro.ingest.memory import MemoryMeter, peak_rss_bytes
from repro.ingest.reader import EdgeStreamFile
from repro.partitioning.base import UNASSIGNED, EdgePartition
from repro.partitioning.degree_state import (
    DEFAULT_SKETCH_DEPTH,
    DEFAULT_SKETCH_WIDTH,
    DEGREE_STATES,
    make_degree_state,
)
from repro.partitioning.kernels import DEFAULT_EDGE_CHUNK
from repro.partitioning.vertex_cut.dbh import DbhCore
from repro.partitioning.vertex_cut.greedy import GreedyCore
from repro.partitioning.vertex_cut.hdrf import HdrfCore
from repro.rng import make_rng, splitmix64
from repro.tools import sanitize

__all__ = [
    "SHARD_ALGORITHMS",
    "ShardConfig",
    "ShardIngestResult",
    "shard_segments",
    "sharded_partition",
]

#: Vertex-cut cores the sharded driver can run.
SHARD_ALGORITHMS = ("hdrf", "greedy", "dbh")

#: Default arrivals a shard processes between load-vector syncs.
DEFAULT_SYNC_INTERVAL = 65536


@dataclass(frozen=True)
class ShardConfig:
    """Everything that identifies a sharded ingest run (JSON-safe)."""

    algorithm: str = "hdrf"
    num_partitions: int = 8
    state: str = "exact"
    num_shards: int = 1
    sync_interval: int = DEFAULT_SYNC_INTERVAL
    workers: int = 1
    seed: int = 0
    chunk_edges: int = DEFAULT_EDGE_CHUNK
    sketch_width: int = DEFAULT_SKETCH_WIDTH
    sketch_depth: int = DEFAULT_SKETCH_DEPTH
    balance_weight: float = 1.1
    balance_slack: float = 1.0
    hash_seed: int = 0

    def __post_init__(self) -> None:
        if self.algorithm not in SHARD_ALGORITHMS:
            raise IngestError(
                f"unknown shard algorithm {self.algorithm!r}; expected one "
                f"of {SHARD_ALGORITHMS}")
        if self.state not in DEGREE_STATES:
            raise IngestError(
                f"unknown degree state {self.state!r}; expected one of "
                f"{DEGREE_STATES}")
        if self.num_partitions < 1:
            raise IngestError("num_partitions must be >= 1")
        if self.num_shards < 1:
            raise IngestError("num_shards must be >= 1")
        if self.sync_interval < 1:
            raise IngestError("sync_interval must be >= 1")
        if self.workers < 1:
            raise IngestError("workers must be >= 1")
        if self.chunk_edges < 1:
            raise IngestError("chunk_edges must be >= 1")

    def to_fields(self) -> dict:
        """JSON-serialisable identity (cache keys, provenance stamps).

        ``workers`` is excluded on purpose: it changes wall-clock only,
        never bytes, and cache keys must agree across worker counts.
        """
        fields = asdict(self)
        del fields["workers"]
        return fields


@dataclass
class ShardIngestResult:
    """Assignment + provenance of one sharded ingest run."""

    config: ShardConfig
    num_vertices: int
    num_edges: int
    rounds: int
    assignment: np.ndarray
    peak_tracked_bytes: int
    peak_rss: int
    shard_stats: tuple = field(default_factory=tuple)

    def digest(self) -> str:
        """SHA-256 of the assignment bytes — the determinism contract."""
        return hashlib.sha256(
            np.ascontiguousarray(self.assignment, dtype=np.int32).tobytes()
        ).hexdigest()

    def partition(self) -> EdgePartition:
        return EdgePartition(self.config.num_partitions, self.assignment,
                             algorithm=f"sharded-{self.config.algorithm}")

    def sizes(self) -> np.ndarray:
        assigned = self.assignment[self.assignment != UNASSIGNED]
        return np.bincount(
            assigned, minlength=self.config.num_partitions).astype(np.int64)


def shard_segments(num_edges: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` segments covering the
    stream (the first ``num_edges % num_shards`` shards get one extra)."""
    if num_shards < 1:
        raise IngestError("num_shards must be >= 1")
    base, extra = divmod(int(num_edges), num_shards)
    segments = []
    start = 0
    for index in range(num_shards):
        length = base + (1 if index < extra else 0)
        segments.append((start, start + length))
        start += length
    return segments


def _make_core(config: ShardConfig, num_vertices: int, num_edges: int,
               shard_index: int):
    """Build the per-shard partitioner core (tie-break RNG derived from
    the shard index so placement never depends on worker assignment)."""
    k = config.num_partitions
    degrees = make_degree_state(config.state, num_vertices,
                                sketch_width=config.sketch_width,
                                sketch_depth=config.sketch_depth)
    rng = make_rng(int(splitmix64(shard_index, config.seed)))
    if config.algorithm == "hdrf":
        capacity = max(1.0, config.balance_slack * num_edges / k)
        return HdrfCore(k, num_vertices, capacity=capacity,
                        balance_weight=config.balance_weight,
                        degrees=degrees, rng=rng)
    if config.algorithm == "greedy":
        return GreedyCore(k, num_vertices, degrees=degrees, rng=rng)
    return DbhCore(k, config.hash_seed, degrees=degrees)


class _ShardRunner:
    """One logical shard: a partitioner core walking its segment."""

    def __init__(self, path: str, shard_index: int,
                 segment: tuple[int, int], num_vertices: int,
                 num_edges: int, config: ShardConfig) -> None:
        self.file = EdgeStreamFile(path)
        self.shard_index = shard_index
        self.start, self.stop = segment
        self.cursor = self.start
        self.config = config
        self.core = _make_core(config, num_vertices, num_edges, shard_index)
        # Local slice indexed by (edge_id - start); merged by the parent.
        self.assignment = np.full(self.stop - self.start, UNASSIGNED,
                                  dtype=np.int32)
        self.rounds = 0
        self.peak_bytes = 0

    def exhausted(self) -> bool:
        return self.cursor >= self.stop

    def run_round(self, global_sizes: np.ndarray) -> np.ndarray | None:
        """Process up to ``sync_interval`` arrivals against *global_sizes*;
        returns this round's int64 load delta (``None`` when already
        done)."""
        if self.exhausted():
            return None
        core = self.core
        core.rebase_sizes(global_sizes)
        round_stop = min(self.cursor + self.config.sync_interval, self.stop)
        chunk_bytes = 0
        for edge_ids, src, dst in self.file.iter_chunks(
                self.config.chunk_edges, start=self.cursor, stop=round_stop):
            core.process_chunk(edge_ids - self.start, src, dst,
                               self.assignment)
            nbytes = edge_ids.nbytes + src.nbytes + dst.nbytes
            if nbytes > chunk_bytes:
                chunk_bytes = nbytes
        self.cursor = round_stop
        self.rounds += 1
        footprint = (core.state_nbytes() + self.assignment.nbytes
                     + chunk_bytes)
        if footprint > self.peak_bytes:
            self.peak_bytes = footprint
        return core.sizes - global_sizes

    def stats(self) -> dict:
        return {
            "shard": self.shard_index,
            "start": self.start,
            "stop": self.stop,
            "rounds": self.rounds,
            "peak_bytes": self.peak_bytes,
        }


def _worker_loop(conn, path: str, num_vertices: int, num_edges: int,
                 config: ShardConfig, shard_items) -> None:
    """Worker-process entry: host a fixed set of logical shards."""
    if sanitize.ACTIVE:
        # Shard order decides round interleaving; a set here would make
        # it hash-seed dependent per worker process.
        sanitize.check_not_set(shard_items, "ingest.shard._worker_loop")
    runners = [_ShardRunner(path, index, segment, num_vertices, num_edges,
                            config) for index, segment in shard_items]
    try:
        while True:
            message = conn.recv()
            if message[0] == "round":
                global_sizes = message[1]
                delta = np.zeros(config.num_partitions, dtype=np.int64)
                live = 0
                for runner in runners:
                    contribution = runner.run_round(global_sizes)
                    if contribution is not None:
                        delta += contribution
                    if not runner.exhausted():
                        live += 1
                conn.send((delta, live))
            elif message[0] == "collect":
                conn.send([(runner.shard_index, runner.start, runner.stop,
                            runner.assignment, runner.stats())
                           for runner in runners])
                return
    finally:
        conn.close()


def _run_serial(path, num_vertices, num_edges, config, segments,
                global_sizes):
    """All shards in-process — the same lockstep protocol, one host."""
    runners = [_ShardRunner(path, index, segment, num_vertices, num_edges,
                            config) for index, segment in enumerate(segments)]
    rounds = 0
    while any(not runner.exhausted() for runner in runners):
        delta = np.zeros(config.num_partitions, dtype=np.int64)
        for runner in runners:
            contribution = runner.run_round(global_sizes)
            if contribution is not None:
                delta += contribution
        global_sizes += delta
        if sanitize.ACTIVE:
            sanitize.check_delta_merge(global_sizes, delta,
                                       "ingest.shard._run_serial")
        rounds += 1
    payload = [(runner.shard_index, runner.start, runner.stop,
                runner.assignment, runner.stats()) for runner in runners]
    return rounds, payload


def _run_parallel(path, num_vertices, num_edges, config, segments,
                  global_sizes):
    """Shards spread round-robin over worker processes, synced per round."""
    workers = min(config.workers, len(segments))
    items = [[] for _ in range(workers)]
    for index, segment in enumerate(segments):
        items[index % workers].append((index, segment))
    context = multiprocessing.get_context("spawn")
    pipes = []
    processes = []
    try:
        for worker_items in items:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_loop,
                args=(child_conn, path, num_vertices, num_edges, config,
                      worker_items),
                daemon=True)
            process.start()
            child_conn.close()
            pipes.append(parent_conn)
            processes.append(process)
        rounds = 0
        live = sum(1 for start, stop in segments if stop > start)
        while live:
            for conn in pipes:
                conn.send(("round", global_sizes))
            live = 0
            delta = np.zeros(config.num_partitions, dtype=np.int64)
            for conn in pipes:
                worker_delta, worker_live = conn.recv()
                delta += worker_delta
                live += worker_live
            global_sizes += delta
            if sanitize.ACTIVE:
                sanitize.check_delta_merge(global_sizes, delta,
                                           "ingest.shard._run_parallel")
            rounds += 1
        payload = []
        for conn in pipes:
            conn.send(("collect",))
            payload.extend(conn.recv())
        return rounds, payload
    finally:
        for conn in pipes:
            conn.close()
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join()


def sharded_partition(path, config: ShardConfig) -> ShardIngestResult:
    """Partition a ``.redg`` stream under *config*; deterministic for any
    ``workers`` value (see module docstring for the protocol)."""
    stream_file = EdgeStreamFile(path)
    num_vertices = stream_file.num_vertices
    num_edges = stream_file.num_edges
    segments = shard_segments(num_edges, config.num_shards)
    global_sizes = np.zeros(config.num_partitions, dtype=np.int64)

    if config.workers <= 1 or config.num_shards <= 1:
        rounds, payload = _run_serial(stream_file.path, num_vertices,
                                      num_edges, config, segments,
                                      global_sizes)
    else:
        rounds, payload = _run_parallel(stream_file.path, num_vertices,
                                        num_edges, config, segments,
                                        global_sizes)

    assignment = np.full(num_edges, UNASSIGNED, dtype=np.int32)
    meter = MemoryMeter()
    meter.track("assignment", assignment.nbytes)
    meter.track("load_vector", global_sizes.nbytes)
    stats = []
    for shard_index, start, stop, shard_assignment, shard_stats in sorted(
            payload, key=lambda item: item[0]):
        assignment[start:stop] = shard_assignment
        meter.track(f"shard{shard_index}", shard_stats["peak_bytes"])
        stats.append(shard_stats)

    metrics = telemetry.get_metrics()
    metrics.counter("ingest.edges").inc(num_edges)
    metrics.counter("ingest.sync_rounds").inc(rounds)
    metrics.gauge("ingest.peak_bytes").set(meter.peak_bytes)

    return ShardIngestResult(
        config=config,
        num_vertices=num_vertices,
        num_edges=num_edges,
        rounds=rounds,
        assignment=assignment,
        peak_tracked_bytes=meter.peak_bytes,
        peak_rss=peak_rss_bytes(),
        shard_stats=tuple(stats),
    )
