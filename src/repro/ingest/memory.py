"""Memory accounting for the out-of-core ingest path.

Two complementary views back the ``ingest.peak_bytes`` gauge and the
memory axis of ``BENCH_scale.json``:

* :class:`MemoryMeter` — *tracked allocation* accounting: each labelled
  component (assignment array, degree state, replica sets, chunk
  buffers) reports its ``nbytes``, and the meter keeps the running total
  plus its peak.  Deterministic, allocator-independent, and what the
  bounded-memory acceptance test asserts against.
* :func:`peak_rss_bytes` — the process's OS-reported peak resident set
  (``ru_maxrss``), the ground-truth corroboration the benchmark records
  alongside the tracked number.

:func:`full_materialization_bytes` estimates what the same stream would
cost the in-memory path (edge arrays + Graph + CSR index), giving the
baseline the "bounded well below full materialisation" claim is measured
against.
"""

from __future__ import annotations

import resource
import sys

__all__ = [
    "MemoryMeter",
    "full_materialization_bytes",
    "peak_rss_bytes",
]


class MemoryMeter:
    """Running total + peak of labelled byte counts."""

    def __init__(self) -> None:
        self._current: dict[str, int] = {}
        self.peak_bytes = 0

    def track(self, label: str, nbytes: int) -> None:
        """Set the current footprint of *label*; updates the peak."""
        self._current[label] = int(nbytes)
        total = self.total_bytes
        if total > self.peak_bytes:
            self.peak_bytes = total

    def drop(self, label: str) -> None:
        """Forget *label* (its allocation was released)."""
        self._current.pop(label, None)

    @property
    def total_bytes(self) -> int:
        return sum(self._current.values())

    def snapshot(self) -> dict[str, int]:
        """Current per-label byte counts (copy)."""
        return dict(self._current)


def peak_rss_bytes() -> int:
    """OS-reported peak resident set of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def full_materialization_bytes(num_vertices: int, num_edges: int) -> int:
    """Estimated bytes to materialise the stream the in-memory way.

    Src/dst int64 edge arrays, their CSR expansion (indptr + indices for
    both directions, as ``Graph.undirected_csr`` builds), and the int64
    permutation an :class:`~repro.graph.stream.EdgeStream` allocates —
    the floor any graph-backed run pays before partitioning starts.
    """
    edge_arrays = 2 * 8 * num_edges
    csr = 2 * 8 * num_edges + 8 * (num_vertices + 1)
    permutation = 8 * num_edges
    return edge_arrays + csr + permutation
