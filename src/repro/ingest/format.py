"""The ``.redg`` on-disk edge-stream format.

A ``.redg`` file is a directed edge stream that can be partitioned
without ever materialising a :class:`~repro.graph.digraph.Graph`:

====================  =======================================================
offset                content
====================  =======================================================
0                     64-byte header (little-endian, layout below)
64                    payload: for each chunk ``c`` of length ``L_c``,
                      ``L_c`` uint64 source ids then ``L_c`` uint64
                      destination ids, back to back
64 + 16·num_edges     footer: ``num_chunks`` uint64 chunk lengths
====================  =======================================================

Header layout (``<8s I I Q Q Q Q 16x``):

* ``magic``        — :data:`MAGIC` (8 bytes)
* ``version``      — :data:`FORMAT_VERSION` (uint32)
* ``flags``        — bit field; :data:`FLAG_ADJACENCY` set when edges form
  one contiguous run per source vertex, in stream order (the undirected
  adjacency expansion a vertex stream needs)
* ``num_vertices`` / ``num_edges`` / ``num_chunks`` — uint64 counts
* one reserved uint64 plus 16 zero-padding bytes

Chunks are variable-length because generators drop self-loops per block;
the footer makes any ``[start, stop)`` edge range seekable.  Edge ids are
implicit: edge ``i`` is simply the ``i``-th pair in the payload, so the
reader yields the same ``(edge_id, src, dst)`` shapes a graph-backed
:class:`~repro.graph.stream.EdgeStream` produces.

Everything that opens these files binarily lives in :mod:`repro.ingest`;
reprolint rule RL108 enforces that, and checks that the writer and the
reader both validate against the *same* :data:`MAGIC` /
:data:`FORMAT_VERSION` constants defined here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "FLAG_ADJACENCY",
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "MAGIC",
    "Header",
]

#: File magic — first 8 bytes of every ``.redg`` stream file.
MAGIC = b"REPROEDG"

#: Bumped on any incompatible layout change.
FORMAT_VERSION = 1

#: Fixed header size in bytes; the payload starts here.
HEADER_SIZE = 64

#: Header flag: edges form one contiguous run per source vertex, in
#: stream order (the undirected adjacency expansion), so a vertex
#: stream can be replayed.
FLAG_ADJACENCY = 1

_HEADER_STRUCT = struct.Struct("<8sIIQQQQ16x")
assert _HEADER_STRUCT.size == HEADER_SIZE


@dataclass(frozen=True)
class Header:
    """Parsed ``.redg`` header fields (validation happens in the reader)."""

    magic: bytes
    version: int
    flags: int
    num_vertices: int
    num_edges: int
    num_chunks: int

    def pack(self) -> bytes:
        """Serialise to the fixed 64-byte on-disk layout."""
        return _HEADER_STRUCT.pack(self.magic, self.version, self.flags,
                                   self.num_vertices, self.num_edges,
                                   self.num_chunks, 0)

    @classmethod
    def unpack(cls, buffer: bytes) -> "Header":
        """Parse a 64-byte header buffer (structure only, no validation)."""
        magic, version, flags, num_vertices, num_edges, num_chunks, _ = (
            _HEADER_STRUCT.unpack(buffer))
        return cls(magic=magic, version=version, flags=flags,
                   num_vertices=num_vertices, num_edges=num_edges,
                   num_chunks=num_chunks)

    @property
    def adjacency_sorted(self) -> bool:
        return bool(self.flags & FLAG_ADJACENCY)
