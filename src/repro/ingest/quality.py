"""Partition-quality metrics computed off a ``.redg`` file.

The in-memory quality helpers (:mod:`repro.metrics.quality`) take a
:class:`~repro.graph.digraph.Graph`; the out-of-core path never builds
one, so the replication factor and balance of a file-backed run are
re-derived here in one chunked pass over the stream — resident memory is
the ``num_vertices × k`` replica-presence table plus one chunk.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IngestError
from repro.ingest.reader import EdgeStreamFile
from repro.partitioning.base import UNASSIGNED

__all__ = ["file_partition_quality"]


def file_partition_quality(stream_file: EdgeStreamFile,
                           assignment: np.ndarray,
                           num_partitions: int) -> dict:
    """Replication factor, balance and sizes of a file-backed partition.

    Mirrors :func:`repro.metrics.quality.replication_factor` (mean
    replicas per *active* vertex — a vertex incident to at least one
    edge) and :func:`repro.metrics.quality.load_imbalance`
    (``max/mean`` edge load) for an assignment produced over
    *stream_file*.
    """
    assignment = np.asarray(assignment)
    if assignment.shape != (stream_file.num_edges,):
        raise IngestError(
            f"assignment has shape {assignment.shape}, stream has "
            f"{stream_file.num_edges} edges")
    if np.any(assignment == UNASSIGNED):
        raise IngestError("assignment is incomplete (UNASSIGNED edges)")
    k = int(num_partitions)
    presence = np.zeros((stream_file.num_vertices, k), dtype=bool)
    for edge_ids, src, dst in stream_file.iter_chunks():
        parts = assignment[edge_ids]
        presence[src, parts] = True
        presence[dst, parts] = True
    replicas_per_vertex = presence.sum(axis=1)
    active = int(np.count_nonzero(replicas_per_vertex))
    total_replicas = int(replicas_per_vertex.sum())
    sizes = np.bincount(assignment, minlength=k).astype(np.int64)
    mean_load = float(sizes.mean()) if k else 0.0
    return {
        "replication_factor": (total_replicas / active) if active else 0.0,
        "load_imbalance": (float(sizes.max()) / mean_load
                           if mean_load > 0 else 0.0),
        "active_vertices": active,
        "total_replicas": total_replicas,
        "sizes": sizes.tolist(),
    }
