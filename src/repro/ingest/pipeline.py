"""Spec-driven out-of-core runs: spill → sharded partition → quality.

One JSON-safe dict describes a whole run — ``{"stream": {...},
"shard": {...}}`` — so the orchestrator can cache results under it, the
scale-sweep experiment can enumerate it, and the CLI can print it.  The
summary returned is deterministic (no wall times, no RSS): two runs of
the same spec produce byte-identical payloads, which is what lets the
orchestrator's serial≡parallel digest guard cover ingest results too.
"""

from __future__ import annotations

import os
import tempfile

from repro.errors import IngestError
from repro.ingest.memory import full_materialization_bytes
from repro.ingest.quality import file_partition_quality
from repro.ingest.reader import EdgeStreamFile
from repro.ingest.shard import ShardConfig, sharded_partition
from repro.ingest.writer import spill_powerlaw, spill_rmat

__all__ = [
    "STREAM_GENERATORS",
    "run_file_ingest",
    "run_ingest_spec",
    "spill_spec",
]

#: Generators a stream spec may name.
STREAM_GENERATORS = ("rmat", "powerlaw")


def spill_spec(stream_spec: dict, path) -> str:
    """Spill the synthetic stream described by *stream_spec* to *path*.

    ``{"generator": "rmat", "scale": 18, "edge_factor": 16.0, "seed": 7}``
    or ``{"generator": "powerlaw", "num_vertices": 100000,
    "avg_out_degree": 16.0, "seed": 7}``; unknown keys are rejected so
    cache keys cannot silently drift.
    """
    spec = dict(stream_spec)
    generator = spec.pop("generator", "rmat")
    seed = spec.pop("seed", 0)
    if generator == "rmat":
        scale = spec.pop("scale")
        edge_factor = spec.pop("edge_factor", 16.0)
        chunk_edges = spec.pop("chunk_edges", None)
        if spec:
            raise IngestError(f"unknown rmat stream keys: {sorted(spec)}")
        kwargs = {} if chunk_edges is None else {"chunk_edges": chunk_edges}
        return spill_rmat(path, scale, edge_factor, seed=seed, **kwargs)
    if generator == "powerlaw":
        num_vertices = spec.pop("num_vertices")
        avg_out_degree = spec.pop("avg_out_degree", 16.0)
        chunk_edges = spec.pop("chunk_edges", None)
        if spec:
            raise IngestError(f"unknown powerlaw stream keys: {sorted(spec)}")
        kwargs = {} if chunk_edges is None else {"chunk_edges": chunk_edges}
        return spill_powerlaw(path, num_vertices, avg_out_degree, seed=seed,
                              **kwargs)
    raise IngestError(
        f"unknown stream generator {generator!r}; expected one of "
        f"{STREAM_GENERATORS}")


def run_file_ingest(path, config: ShardConfig, *,
                    with_quality: bool = True) -> dict:
    """Sharded-partition an existing ``.redg`` file; deterministic summary."""
    result = sharded_partition(path, config)
    stream_file = EdgeStreamFile(path)
    summary = {
        "config": config.to_fields(),
        "num_vertices": result.num_vertices,
        "num_edges": result.num_edges,
        "rounds": result.rounds,
        "digest": result.digest(),
        "peak_tracked_bytes": result.peak_tracked_bytes,
        "full_materialization_bytes": full_materialization_bytes(
            result.num_vertices, result.num_edges),
        "sizes": result.sizes().tolist(),
    }
    if with_quality:
        quality = file_partition_quality(stream_file, result.assignment,
                                         config.num_partitions)
        summary["replication_factor"] = quality["replication_factor"]
        summary["load_imbalance"] = quality["load_imbalance"]
        summary["active_vertices"] = quality["active_vertices"]
    return summary


def run_ingest_spec(spec: dict) -> dict:
    """Spill + partition + score the run described by *spec*.

    The stream file lives in a temporary directory for exactly the
    duration of the run — peak *disk* is one spill, peak memory is the
    sharded driver's tracked state.
    """
    stream_spec = dict(spec.get("stream", {}))
    config = ShardConfig(**dict(spec.get("shard", {})))
    with tempfile.TemporaryDirectory(prefix="repro-ingest-") as tmp:
        path = spill_spec(stream_spec, os.path.join(tmp, "stream.redg"))
        summary = run_file_ingest(path, config)
    summary["stream"] = stream_spec
    return summary
