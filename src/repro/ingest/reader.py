"""Memory-mapped readers for ``.redg`` edge-stream files.

:class:`EdgeStreamFile` validates the header and exposes seekable
``(edge_ids, src, dst)`` chunk iteration over any ``[start, stop)`` edge
range — resident memory is one chunk regardless of file size, since the
payload is a read-only :func:`numpy.memmap`.  Two adapters replay a file
through the existing partitioner interfaces without building a
:class:`~repro.graph.digraph.Graph`:

* :class:`FileEdgeStream` — the edge-stream shape (``EdgeArrival``
  elements, plus the ``iter_chunks`` fast path that
  :func:`repro.partitioning.kernels.iter_edge_chunks` delegates to);
* :class:`FileVertexStream` — ``VertexArrival`` elements replayed from
  an adjacency-sorted spill (:func:`repro.ingest.writer.spill_adjacency`),
  stitching neighbour runs across chunk boundaries.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.errors import IngestError
from repro.graph.stream import EdgeArrival, VertexArrival
from repro.ingest.format import FORMAT_VERSION, HEADER_SIZE, MAGIC, Header

__all__ = [
    "EdgeStreamFile",
    "FileEdgeStream",
    "FileVertexStream",
]

#: Default edges per yielded chunk (matches the scoring-loop chunking).
DEFAULT_READ_CHUNK = 16384


class EdgeStreamFile:
    """A validated, memory-mapped ``.redg`` file."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        size = os.path.getsize(self.path)
        if size < HEADER_SIZE:
            raise IngestError(
                f"{self.path}: too short for a .redg header "
                f"({size} < {HEADER_SIZE} bytes)")
        with open(self.path, "rb") as fh:
            header = Header.unpack(fh.read(HEADER_SIZE))
        if header.magic != MAGIC:
            raise IngestError(
                f"{self.path}: bad magic {header.magic!r} "
                f"(expected {MAGIC!r}) — not a .redg stream file")
        if header.version != FORMAT_VERSION:
            raise IngestError(
                f"{self.path}: format version {header.version} unsupported "
                f"(this reader speaks version {FORMAT_VERSION})")
        expected = (HEADER_SIZE + 16 * header.num_edges
                    + 8 * header.num_chunks)
        if size != expected:
            raise IngestError(
                f"{self.path}: file is {size} bytes but the header promises "
                f"{expected} — truncated or corrupt")
        self.header = header
        footer_offset = HEADER_SIZE + 16 * header.num_edges
        if header.num_chunks:
            footer = np.memmap(self.path, dtype="<u8", mode="r",
                               offset=footer_offset,
                               shape=(header.num_chunks,))
            chunk_lengths = np.asarray(footer, dtype=np.int64)
            del footer
        else:
            chunk_lengths = np.zeros(0, dtype=np.int64)
        if int(chunk_lengths.sum()) != header.num_edges:
            raise IngestError(
                f"{self.path}: chunk table sums to {int(chunk_lengths.sum())} "
                f"edges, header promises {header.num_edges}")
        self.chunk_lengths = chunk_lengths
        # chunk c covers edge ids [_bounds[c], _bounds[c + 1])
        self._bounds = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(chunk_lengths)])
        self._payload = (np.memmap(self.path, dtype="<u8", mode="r",
                                   offset=HEADER_SIZE,
                                   shape=(2 * header.num_edges,))
                         if header.num_edges else
                         np.zeros(0, dtype="<u8"))

    # -- header facts --------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.header.num_vertices

    @property
    def num_edges(self) -> int:
        return self.header.num_edges

    @property
    def num_chunks(self) -> int:
        return self.header.num_chunks

    @property
    def adjacency_sorted(self) -> bool:
        return self.header.adjacency_sorted

    def describe(self) -> dict:
        """Header facts as a plain dict (the ``ingest info`` CLI view)."""
        lengths = self.chunk_lengths
        return {
            "path": self.path,
            "format_version": self.header.version,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_chunks": self.num_chunks,
            "adjacency_sorted": self.adjacency_sorted,
            "payload_bytes": 16 * self.num_edges,
            "max_chunk_edges": int(lengths.max()) if lengths.size else 0,
        }

    # -- chunk iteration ------------------------------------------------
    def iter_chunks(
        self, chunk_edges: int | None = None, *,
        start: int = 0, stop: int | None = None,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(edge_ids, src, dst)`` int64 chunks for ``[start, stop)``.

        Chunks follow the stored layout, clipped to the range and split
        further when *chunk_edges* is given (stored chunks are never
        merged, so a yielded chunk holds at most
        ``min(stored_length, chunk_edges)`` edges).  Edge ids are global
        stream positions.
        """
        m = self.num_edges
        stop = m if stop is None else int(stop)
        start = int(start)
        if not (0 <= start <= stop <= m):
            raise IngestError(
                f"invalid edge range [{start}, {stop}) for {m} edges")
        if chunk_edges is not None and chunk_edges < 1:
            raise IngestError(f"chunk_edges must be >= 1, got {chunk_edges}")
        if start == stop:
            return
        bounds = self._bounds
        payload = self._payload
        first = int(np.searchsorted(bounds, start, side="right")) - 1
        for c in range(first, self.num_chunks):
            c_start = int(bounds[c])
            c_stop = int(bounds[c + 1])
            if c_start >= stop:
                break
            lo = max(start, c_start)
            hi = min(stop, c_stop)
            if lo >= hi:
                continue
            base = 2 * c_start
            length = c_stop - c_start
            step = hi - lo if chunk_edges is None else int(chunk_edges)
            for piece in range(lo, hi, step):
                piece_stop = min(piece + step, hi)
                src = payload[base + (piece - c_start):
                              base + (piece_stop - c_start)]
                dst = payload[base + length + (piece - c_start):
                              base + length + (piece_stop - c_start)]
                yield (np.arange(piece, piece_stop, dtype=np.int64),
                       src.astype(np.int64), dst.astype(np.int64))

    def close(self) -> None:
        """Drop the payload mapping (further iteration is invalid)."""
        self._payload = np.zeros(0, dtype="<u8")

    def __enter__(self) -> "EdgeStreamFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FileEdgeStream:
    """Edge-stream adapter over a ``.redg`` file.

    Yields :class:`~repro.graph.stream.EdgeArrival` elements in file
    order and exposes ``iter_chunks`` so the kernel layer's
    :func:`~repro.partitioning.kernels.iter_edge_chunks` streams arrays
    straight off the memory map — every vertex-cut partitioner accepts
    it wherever an :class:`~repro.graph.stream.EdgeStream` fits.
    """

    def __init__(self, source) -> None:
        self.file = (source if isinstance(source, EdgeStreamFile)
                     else EdgeStreamFile(source))

    @property
    def num_vertices(self) -> int:
        return self.file.num_vertices

    @property
    def num_edges(self) -> int:
        return self.file.num_edges

    def __len__(self) -> int:
        return self.num_edges

    def iter_chunks(
        self, chunk_size: int = DEFAULT_READ_CHUNK,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        return self.file.iter_chunks(chunk_size)

    def __iter__(self) -> Iterator[EdgeArrival]:
        for edge_ids, src, dst in self.iter_chunks():
            yield from (EdgeArrival(e, s, d) for e, s, d in
                        zip(edge_ids.tolist(), src.tolist(), dst.tolist()))


class FileVertexStream:
    """Vertex-stream adapter over an adjacency-sorted ``.redg`` file.

    Replays each contiguous same-source run as one
    :class:`~repro.graph.stream.VertexArrival`, stitching runs that span
    chunk boundaries.  Vertices with no neighbours own no run and are
    never yielded, so graphs with isolated vertices produce partial
    assignments (exactly like any external vertex stream would).
    """

    def __init__(self, source) -> None:
        file = (source if isinstance(source, EdgeStreamFile)
                else EdgeStreamFile(source))
        if not file.adjacency_sorted:
            raise IngestError(
                f"{file.path}: vertex replay needs an adjacency-sorted "
                f"spill (see repro.ingest.spill_adjacency)")
        self.file = file

    @property
    def num_vertices(self) -> int:
        return self.file.num_vertices

    def __len__(self) -> int:
        return self.num_vertices

    def __iter__(self) -> Iterator[VertexArrival]:
        pending_vertex: int | None = None
        pending_parts: list[np.ndarray] = []
        for _, src, dst in self.file.iter_chunks():
            boundaries = np.flatnonzero(src[1:] != src[:-1]) + 1
            run_edges = np.split(dst, boundaries)
            run_vertices = src[np.concatenate(
                [np.zeros(1, dtype=np.int64), boundaries])].tolist()
            for u, neighbors in zip(run_vertices, run_edges):
                if pending_vertex is not None and u == pending_vertex:
                    pending_parts.append(neighbors)
                    continue
                if pending_vertex is not None:
                    yield VertexArrival(pending_vertex,
                                        _concat(pending_parts))
                pending_vertex = int(u)
                pending_parts = [neighbors]
        if pending_vertex is not None:
            yield VertexArrival(pending_vertex, _concat(pending_parts))


def _concat(parts: list[np.ndarray]) -> np.ndarray:
    return parts[0] if len(parts) == 1 else np.concatenate(parts)
