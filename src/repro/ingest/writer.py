"""Spill edge streams to ``.redg`` files without materialising a graph.

:class:`EdgeStreamWriter` streams ``(src, dst)`` chunks to disk behind
the versioned header of :mod:`repro.ingest.format`; the generator
spillers (:func:`spill_rmat`, :func:`spill_powerlaw`) produce synthetic
streams whose peak memory is one chunk (plus, for preferential
attachment, the in-degree endpoint pool) instead of the full edge list —
this is how the out-of-core benchmarks build 10⁷⁺-edge inputs on a small
heap.  :func:`spill_graph_edges` / :func:`spill_adjacency` export an
in-memory :class:`~repro.graph.digraph.Graph` for parity testing against
the file-backed path.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, IngestError
from repro.graph.digraph import Graph
from repro.graph.stream import vertex_order
from repro.ingest.format import FLAG_ADJACENCY, FORMAT_VERSION, MAGIC, Header
from repro.rng import make_rng

__all__ = [
    "DEFAULT_SPILL_CHUNK",
    "EdgeStreamWriter",
    "iter_powerlaw_chunks",
    "iter_rmat_chunks",
    "spill_adjacency",
    "spill_edges",
    "spill_graph_edges",
    "spill_powerlaw",
    "spill_rmat",
]

#: Edges generated/written per chunk by the spillers: 2 MiB of payload.
DEFAULT_SPILL_CHUNK = 1 << 17


class EdgeStreamWriter:
    """Stream ``(src, dst)`` chunks into a ``.redg`` file.

    A placeholder header goes out first; chunks append as
    ``src·dst`` uint64 blocks; :meth:`close` writes the footer chunk
    table and rewrites the real header (so a crash mid-spill leaves an
    unreadable file, never a silently short one — the reader checks the
    byte length against the header).
    """

    def __init__(self, path, num_vertices: int, *,
                 adjacency_sorted: bool = False) -> None:
        if num_vertices < 0:
            raise ConfigurationError("num_vertices must be non-negative")
        self.path = os.fspath(path)
        self.num_vertices = int(num_vertices)
        self.num_edges = 0
        self.flags = FLAG_ADJACENCY if adjacency_sorted else 0
        self._chunk_lengths: list[int] = []
        self._fh = open(self.path, "wb")
        self._fh.write(Header(magic=MAGIC, version=FORMAT_VERSION,
                              flags=self.flags, num_vertices=0, num_edges=0,
                              num_chunks=0).pack())
        self._closed = False

    def append(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Write one chunk of edges (arrays of equal length)."""
        if self._closed:
            raise IngestError(f"writer for {self.path} is closed")
        src = np.ascontiguousarray(src, dtype="<u8")
        dst = np.ascontiguousarray(dst, dtype="<u8")
        if src.shape != dst.shape or src.ndim != 1:
            raise IngestError("src/dst chunks must be equal-length 1-D arrays")
        if src.size == 0:
            return
        src.tofile(self._fh)
        dst.tofile(self._fh)
        self._chunk_lengths.append(int(src.size))
        self.num_edges += int(src.size)

    def close(self) -> None:
        """Write the footer and the real header; idempotent."""
        if self._closed:
            return
        footer = np.asarray(self._chunk_lengths, dtype="<u8")
        footer.tofile(self._fh)
        self._fh.seek(0)
        self._fh.write(Header(magic=MAGIC, version=FORMAT_VERSION,
                              flags=self.flags,
                              num_vertices=self.num_vertices,
                              num_edges=self.num_edges,
                              num_chunks=len(self._chunk_lengths)).pack())
        self._fh.close()
        self._closed = True
        telemetry.get_metrics().counter("ingest.spilled_edges").inc(
            self.num_edges)

    def __enter__(self) -> "EdgeStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def spill_edges(path, num_vertices: int,
                chunks: Iterable[tuple[np.ndarray, np.ndarray]], *,
                adjacency_sorted: bool = False) -> str:
    """Spill an iterable of ``(src, dst)`` chunks to *path*; returns it."""
    with EdgeStreamWriter(path, num_vertices,
                          adjacency_sorted=adjacency_sorted) as writer:
        for src, dst in chunks:
            writer.append(src, dst)
    return os.fspath(path)


# ----------------------------------------------------------------------
# Chunked synthetic generators (never hold the full edge list)
# ----------------------------------------------------------------------
def iter_rmat_chunks(
    scale: int,
    edge_factor: float = 16.0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    noise: float = 0.1,
    seed=None,
    chunk_edges: int = DEFAULT_SPILL_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """R-MAT edge chunks, ``O(chunk_edges)`` memory.

    Same recursive-quadrant process as :func:`repro.graph.generators.rmat`
    (Graph500 parameters, per-level jitter, self-loops dropped) but the
    per-level coin flips are drawn chunk-at-a-time, so the stream spec is
    ``(scale, edge_factor, a, b, c, noise, seed, chunk_edges)`` — the
    chunk size is part of the stream's identity, not of the in-memory
    generator's.
    """
    if scale < 1 or scale > 30:
        raise ConfigurationError("scale must be in [1, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) <= 0:
        raise ConfigurationError(
            "quadrant probabilities must be positive and sum < 1")
    if chunk_edges < 1:
        raise ConfigurationError("chunk_edges must be >= 1")
    rng = make_rng(seed)
    n = 1 << scale
    m = int(round(edge_factor * n))

    # Per-level quadrant probabilities are stream-level constants: draw
    # all the jitters up front so chunking never changes them.
    level_probs = []
    for _ in range(scale):
        jitter = 1.0 + noise * (rng.random(4) - 0.5)
        pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
        total = pa + pb + pc + pd
        level_probs.append((pa / total, pb / total, pc / total))

    for start in range(0, m, chunk_edges):
        count = min(chunk_edges, m - start)
        row = np.zeros(count, dtype=np.int64)
        col = np.zeros(count, dtype=np.int64)
        for level, (pa, pb, pc) in enumerate(level_probs):
            u = rng.random(count)
            go_right = u >= (pa + pc)       # quadrants b, d select right half
            within_right = np.where(go_right, u - (pa + pc), 0.0)
            within_left = np.where(~go_right, u, 0.0)
            go_down = np.where(go_right, within_right >= pb,
                               within_left >= pa)
            bit = np.int64(1 << (scale - 1 - level))
            row += bit * go_down
            col += bit * go_right
        keep = row != col                   # chunks shrink: lengths vary
        yield row[keep], col[keep]


def iter_powerlaw_chunks(
    num_vertices: int,
    avg_out_degree: float = 16.0,
    *,
    uniform_mix: float = 0.2,
    seed=None,
    chunk_edges: int = DEFAULT_SPILL_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Preferential-attachment edge chunks.

    The same rich-get-richer process as
    :func:`repro.graph.generators.preferential_attachment`, flushing the
    accumulated edges every ``chunk_edges`` instead of holding them all:
    resident state is the in-degree endpoint pool (8 bytes/edge) plus
    one chunk, roughly a quarter of the in-memory generator's
    edge-list + Graph + CSR footprint.
    """
    if num_vertices < 2:
        raise ConfigurationError("preferential attachment needs >= 2 vertices")
    if not 0.0 <= uniform_mix <= 1.0:
        raise ConfigurationError("uniform_mix must lie in [0, 1]")
    if avg_out_degree <= 0:
        raise ConfigurationError("avg_out_degree must be positive")
    if chunk_edges < 1:
        raise ConfigurationError("chunk_edges must be >= 1")
    rng = make_rng(seed)
    core = min(max(2, int(avg_out_degree)), num_vertices)

    pool = np.empty(64, dtype=np.int64)
    pool_size = 0
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    buffered = 0

    def _append_pool(targets: np.ndarray):
        nonlocal pool, pool_size
        needed = pool_size + targets.size
        if needed > pool.size:
            pool = np.resize(pool, max(pool.size * 2, needed))
        pool[pool_size:needed] = targets
        pool_size = needed

    core_src = np.arange(core, dtype=np.int64)
    core_dst = (core_src + 1) % core
    src_parts.append(core_src)
    dst_parts.append(core_dst)
    buffered += core
    _append_pool(core_dst)

    pareto_shape = 1.8
    pareto_mean = 1.0 / (pareto_shape - 1.0)
    scale = max(avg_out_degree - 1.0, 0.0) / pareto_mean
    raw = rng.pareto(pareto_shape, size=num_vertices - core) * scale
    cap = max(2, num_vertices // 10)
    out_counts = np.clip(raw, 0, cap).astype(np.int64) + 1

    for offset, count in enumerate(out_counts.tolist()):
        v = core + offset
        uniform = rng.random(count) < uniform_mix
        targets = np.empty(count, dtype=np.int64)
        n_uni = int(uniform.sum())
        if n_uni:
            targets[uniform] = rng.integers(0, v, size=n_uni)
        n_pref = count - n_uni
        if n_pref:
            slots = rng.integers(0, pool_size, size=n_pref)
            targets[~uniform] = pool[slots]
        src_parts.append(np.full(count, v, dtype=np.int64))
        dst_parts.append(targets)
        buffered += count
        _append_pool(targets)
        if buffered >= chunk_edges:
            yield np.concatenate(src_parts), np.concatenate(dst_parts)
            src_parts, dst_parts, buffered = [], [], 0
    if buffered:
        yield np.concatenate(src_parts), np.concatenate(dst_parts)


def spill_rmat(path, scale: int, edge_factor: float = 16.0, *,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               noise: float = 0.1, seed=None,
               chunk_edges: int = DEFAULT_SPILL_CHUNK) -> str:
    """Spill an R-MAT stream with ``2**scale`` vertices to *path*."""
    return spill_edges(path, 1 << scale,
                       iter_rmat_chunks(scale, edge_factor, a=a, b=b, c=c,
                                        noise=noise, seed=seed,
                                        chunk_edges=chunk_edges))


def spill_powerlaw(path, num_vertices: int, avg_out_degree: float = 16.0, *,
                   uniform_mix: float = 0.2, seed=None,
                   chunk_edges: int = DEFAULT_SPILL_CHUNK) -> str:
    """Spill a preferential-attachment stream to *path*."""
    return spill_edges(path, num_vertices,
                       iter_powerlaw_chunks(num_vertices, avg_out_degree,
                                            uniform_mix=uniform_mix,
                                            seed=seed,
                                            chunk_edges=chunk_edges))


# ----------------------------------------------------------------------
# In-memory graph exports (parity tests, adjacency replay)
# ----------------------------------------------------------------------
def spill_graph_edges(graph: Graph, path, *,
                      chunk_edges: int = DEFAULT_SPILL_CHUNK) -> str:
    """Spill a graph's natural-order edge stream to *path*.

    Partitioning the resulting file is arrival-for-arrival identical to
    partitioning ``EdgeStream(graph, order="natural")``.
    """
    def _chunks():
        src, dst = graph.src, graph.dst
        for start in range(0, graph.num_edges, chunk_edges):
            stop = start + chunk_edges
            yield src[start:stop], dst[start:stop]

    return spill_edges(path, graph.num_vertices, _chunks())


def spill_adjacency(graph: Graph, path, *, order: str = "natural", seed=None,
                    chunk_edges: int = DEFAULT_SPILL_CHUNK) -> str:
    """Spill the undirected adjacency expansion, grouped by source.

    Each vertex's undirected neighbourhood appears as a contiguous run of
    ``(u, neighbor)`` pairs, in stream *order* of ``u`` — the layout
    :class:`repro.ingest.FileVertexStream` replays as ``VertexArrival``
    elements (isolated vertices own an empty run and are never yielded).
    """
    indptr, indices = graph.undirected_csr()

    def _chunks():
        for u in vertex_order(graph, order, seed).tolist():
            neighbors = indices[indptr[u]:indptr[u + 1]]
            if neighbors.size:
                yield np.full(neighbors.size, u, dtype=np.int64), neighbors

    # Group whole vertex runs into write chunks of ~chunk_edges.
    def _grouped():
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        buffered = 0
        for src, dst in _chunks():
            srcs.append(src)
            dsts.append(dst)
            buffered += int(src.size)
            if buffered >= chunk_edges:
                yield np.concatenate(srcs), np.concatenate(dsts)
                srcs, dsts, buffered = [], [], 0
        if buffered:
            yield np.concatenate(srcs), np.concatenate(dsts)

    return spill_edges(path, graph.num_vertices, _grouped(),
                       adjacency_sorted=True)
