"""Out-of-core ingest: file-backed edge streams, bounded-memory state,
sharded parallel partitioning.

The in-memory path caps experiments at what fits in RAM; this subsystem
removes that ceiling along three axes (see ``docs/scaling.md``):

* **file-backed streams** — generators spill straight to the versioned
  binary ``.redg`` format (:mod:`repro.ingest.writer`); memory-mapped
  readers replay them through the existing ``EdgeArrival`` /
  ``VertexArrival`` interfaces without ever building a ``Graph``
  (:mod:`repro.ingest.reader`);
* **bounded partitioner state** — the vertex-cut family accepts
  ``state="sketch"``, swapping exact partial-degree tables for a
  deterministic count-min sketch
  (:mod:`repro.partitioning.degree_state`);
* **sharded ingest** — contiguous stream segments partitioned in
  parallel worker processes against a periodically synced load vector,
  deterministically for any worker count (:mod:`repro.ingest.shard`).
"""

from repro.ingest.format import FLAG_ADJACENCY, FORMAT_VERSION, HEADER_SIZE, MAGIC, Header
from repro.ingest.memory import (
    MemoryMeter,
    full_materialization_bytes,
    peak_rss_bytes,
)
from repro.ingest.pipeline import (
    STREAM_GENERATORS,
    run_file_ingest,
    run_ingest_spec,
    spill_spec,
)
from repro.ingest.quality import file_partition_quality
from repro.ingest.reader import EdgeStreamFile, FileEdgeStream, FileVertexStream
from repro.ingest.shard import (
    DEFAULT_SYNC_INTERVAL,
    SHARD_ALGORITHMS,
    ShardConfig,
    ShardIngestResult,
    shard_segments,
    sharded_partition,
)
from repro.ingest.writer import (
    EdgeStreamWriter,
    iter_powerlaw_chunks,
    iter_rmat_chunks,
    spill_adjacency,
    spill_edges,
    spill_graph_edges,
    spill_powerlaw,
    spill_rmat,
)

__all__ = [
    "DEFAULT_SYNC_INTERVAL",
    "FLAG_ADJACENCY",
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "MAGIC",
    "SHARD_ALGORITHMS",
    "STREAM_GENERATORS",
    "EdgeStreamFile",
    "EdgeStreamWriter",
    "FileEdgeStream",
    "FileVertexStream",
    "Header",
    "MemoryMeter",
    "ShardConfig",
    "ShardIngestResult",
    "file_partition_quality",
    "full_materialization_bytes",
    "iter_powerlaw_chunks",
    "iter_rmat_chunks",
    "peak_rss_bytes",
    "run_file_ingest",
    "run_ingest_spec",
    "shard_segments",
    "sharded_partition",
    "spill_adjacency",
    "spill_edges",
    "spill_graph_edges",
    "spill_powerlaw",
    "spill_rmat",
    "spill_spec",
]
