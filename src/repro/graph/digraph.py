"""Compact directed graph with CSR adjacency.

:class:`Graph` is the single in-memory graph representation used across the
package.  It is immutable after construction, stores edges as parallel
``int64`` numpy arrays and builds CSR indices for out-, in- and undirected
neighbourhoods on demand.  Vertices are dense integers ``0..n-1``.

The streaming partitioners never *require* the whole graph — they consume
:mod:`repro.graph.stream` iterators — but the experimental harness (like the
paper's) materialises each dataset once and streams it in different orders.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

from repro.errors import GraphFormatError

#: Anything ``np.ascontiguousarray`` can turn into an endpoint array.
EdgeEndpoints = Union[np.ndarray, Sequence[int]]


class Graph:
    """An immutable directed multigraph over vertices ``0..n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.  Every endpoint must be ``< n``.
    src, dst:
        Parallel arrays of edge endpoints.  Edge *i* is ``src[i] -> dst[i]``
        and edge ids are positions in these arrays.
    name:
        Optional human-readable dataset name (used in reports).
    """

    def __init__(self, num_vertices: int, src: EdgeEndpoints,
                 dst: EdgeEndpoints, name: str = "graph") -> None:
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise GraphFormatError("src and dst must be 1-D arrays of equal length")
        if num_vertices < 0:
            raise GraphFormatError(f"num_vertices must be >= 0, got {num_vertices}")
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= num_vertices:
                raise GraphFormatError(
                    f"edge endpoints must lie in [0, {num_vertices}), "
                    f"found range [{lo}, {hi}]"
                )
        self._n = int(num_vertices)
        self._src = src
        self._dst = dst
        self.name = name
        # CSR caches, built lazily.
        self._out_csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._in_csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._und_csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._out_degree: np.ndarray | None = None
        self._in_degree: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return int(self._src.size)

    @property
    def src(self) -> np.ndarray:
        """Source endpoint of each edge (read-only view)."""
        view = self._src.view()
        view.flags.writeable = False
        return view

    @property
    def dst(self) -> np.ndarray:
        """Destination endpoint of each edge (read-only view)."""
        view = self._dst.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    @property
    def out_degree(self) -> np.ndarray:
        """Out-degree of every vertex as an ``int64`` array of length n."""
        if self._out_degree is None:
            self._out_degree = np.bincount(self._src, minlength=self._n).astype(np.int64)
        return self._out_degree

    @property
    def in_degree(self) -> np.ndarray:
        """In-degree of every vertex as an ``int64`` array of length n."""
        if self._in_degree is None:
            self._in_degree = np.bincount(self._dst, minlength=self._n).astype(np.int64)
        return self._in_degree

    @property
    def degree(self) -> np.ndarray:
        """Total (in + out) degree of every vertex."""
        return self.out_degree + self.in_degree

    # ------------------------------------------------------------------
    # CSR construction
    # ------------------------------------------------------------------
    @staticmethod
    def _build_csr(keys: np.ndarray, values: np.ndarray,
                   n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sort ``values`` by ``keys`` and return ``(indptr, indices, order)``.

        ``order`` maps CSR slots back to original edge ids, so callers can
        recover which edge produced each adjacency entry.
        """
        order = np.argsort(keys, kind="stable")
        indices = values[order]
        counts = np.bincount(keys, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, indices, order

    def _ensure_out_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._out_csr is None:
            self._out_csr = self._build_csr(self._src, self._dst, self._n)
        return self._out_csr

    def _ensure_in_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._in_csr is None:
            self._in_csr = self._build_csr(self._dst, self._src, self._n)
        return self._in_csr

    def _ensure_und_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._und_csr is None:
            keys = np.concatenate([self._src, self._dst])
            values = np.concatenate([self._dst, self._src])
            self._und_csr = self._build_csr(keys, values, self._n)
        return self._und_csr

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> np.ndarray:
        """Destinations of ``u``'s out-edges (with multiplicity)."""
        indptr, indices, _ = self._ensure_out_csr()
        return indices[indptr[u]:indptr[u + 1]]

    def in_neighbors(self, u: int) -> np.ndarray:
        """Sources of ``u``'s in-edges (with multiplicity)."""
        indptr, indices, _ = self._ensure_in_csr()
        return indices[indptr[u]:indptr[u + 1]]

    def neighbors(self, u: int) -> np.ndarray:
        """Undirected neighbourhood N(u): out- and in-neighbours combined.

        This is the ``N(u)`` that vertex-stream partitioners (LDG, FENNEL)
        see for each arriving vertex.
        """
        indptr, indices, _ = self._ensure_und_csr()
        return indices[indptr[u]:indptr[u + 1]]

    def undirected_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` of the undirected neighbourhood CSR.

        ``indices[indptr[u]:indptr[u + 1]]`` is exactly
        :meth:`neighbors` of ``u``; exposing the arrays lets streaming
        hot loops (:mod:`repro.partitioning.kernels`) slice adjacency
        without per-vertex method dispatch.  Callers must treat both
        arrays as read-only.
        """
        indptr, indices, _ = self._ensure_und_csr()
        return indptr, indices

    def out_edge_ids(self, u: int) -> np.ndarray:
        """Edge ids of ``u``'s out-edges."""
        indptr, _, order = self._ensure_out_csr()
        return order[indptr[u]:indptr[u + 1]]

    def in_edge_ids(self, u: int) -> np.ndarray:
        """Edge ids of ``u``'s in-edges."""
        indptr, _, order = self._ensure_in_csr()
        return order[indptr[u]:indptr[u + 1]]

    # ------------------------------------------------------------------
    # Iteration / export
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(src, dst)`` pairs in edge-id order."""
        for u, v in zip(self._src.tolist(), self._dst.tolist()):
            yield u, v

    def edge_array(self) -> np.ndarray:
        """Edges as an ``(m, 2)`` array (copy)."""
        return np.stack([self._src, self._dst], axis=1)

    def reversed(self) -> "Graph":
        """The graph with every edge direction flipped."""
        return Graph(self._n, self._dst.copy(), self._src.copy(), name=f"{self.name}-rev")

    def subgraph_edges(self, edge_ids: Sequence[int], name: str | None = None) -> "Graph":
        """A graph over the same vertex set containing only ``edge_ids``."""
        idx = np.asarray(edge_ids, dtype=np.int64)
        return Graph(
            self._n,
            self._src[idx],
            self._dst[idx],
            name=name or f"{self.name}-sub",
        )

    def with_name(self, name: str) -> "Graph":
        """A shallow rename (shares edge arrays)."""
        clone = Graph.__new__(Graph)
        clone.__dict__.update(self.__dict__)
        clone.name = name
        return clone
