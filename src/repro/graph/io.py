"""Graph serialisation: edge-list and adjacency-list text formats.

Mirrors the two stream input formats of Section 4 of the paper:

* **edge list** — one ``src dst`` pair per line (the edge-stream
  serialisation; what DBH/HDRF-class algorithms ingest);
* **adjacency list** — one ``vertex n1 n2 ...`` line per vertex (the
  vertex-stream serialisation; what LDG/FENNEL-class algorithms ingest).

Both readers accept ``#``-prefixed comment lines and gzip-compressed files
(by extension).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import Graph


def _open_text(path, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_edge_list(graph: Graph, path) -> None:
    """Write *graph* as a ``src dst`` edge list (one edge per line)."""
    with _open_text(path, "w") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_edge_list(path, num_vertices: int | None = None,
                   name: str | None = None) -> Graph:
    """Read an edge list written by :func:`write_edge_list` (or any
    whitespace-separated pair file)."""
    builder = GraphBuilder(num_vertices=num_vertices, allow_self_loops=True)
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{line_no}: expected 'src dst'")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_no}: non-integer endpoint"
                ) from exc
            builder.add_edge(u, v)
    return builder.build(name=name or Path(path).stem)


def write_adjacency_list(graph: Graph, path) -> None:
    """Write *graph* as out-adjacency lists: ``vertex n1 n2 ...``."""
    with _open_text(path, "w") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for u in range(graph.num_vertices):
            nbrs = " ".join(str(v) for v in graph.out_neighbors(u).tolist())
            handle.write(f"{u} {nbrs}\n".rstrip() + "\n")


def read_adjacency_list(path, name: str | None = None) -> Graph:
    """Read an adjacency list written by :func:`write_adjacency_list`."""
    builder = GraphBuilder(allow_self_loops=True)
    max_vertex = -1
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                ids = [int(p) for p in parts]
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_no}: non-integer vertex id"
                ) from exc
            u, nbrs = ids[0], ids[1:]
            max_vertex = max(max_vertex, u, *nbrs) if nbrs else max(max_vertex, u)
            for v in nbrs:
                builder.add_edge(u, v)
    graph = builder.build(name=name or Path(path).stem)
    if graph.num_vertices <= max_vertex:
        # Isolated trailing vertices: rebuild with the right vertex count.
        graph = Graph(max_vertex + 1, graph.src.copy(), graph.dst.copy(),
                      name=graph.name)
    return graph


def stream_edge_list(path) -> Iterator[tuple[int, int]]:
    """Lazily yield ``(src, dst)`` pairs from an edge-list file.

    This is the "truly streaming" entry point: an
    :class:`~repro.graph.stream.EdgeArrival` sequence can be built from it
    without ever materialising the graph.
    """
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            yield int(parts[0]), int(parts[1])


def save_npz(graph: Graph, path) -> None:
    """Binary save (numpy ``.npz``) — fast cache format for experiments."""
    np.savez_compressed(path, n=graph.num_vertices, src=graph.src,
                        dst=graph.dst, name=graph.name)


def load_npz(path) -> Graph:
    """Load a graph written by :func:`save_npz`."""
    data = np.load(path, allow_pickle=False)
    return Graph(int(data["n"]), data["src"], data["dst"],
                 name=str(data["name"]))
