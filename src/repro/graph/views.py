"""Derived graph views: common preprocessing before partitioning.

Real pipelines rarely partition the raw crawl: they deduplicate,
symmetrise, drop the periphery, or restrict to the giant component first.
These helpers produce new :class:`~repro.graph.digraph.Graph` objects
(inputs are never modified).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.analysis import weakly_connected_components
from repro.graph.digraph import Graph


def simplified(graph: Graph) -> Graph:
    """Drop parallel edges and self loops (a simple directed graph)."""
    src, dst = graph.src, graph.dst
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if src.size:
        keys = src * graph.num_vertices + dst
        _, first = np.unique(keys, return_index=True)
        first.sort()
        src, dst = src[first], dst[first]
    return Graph(graph.num_vertices, src, dst, name=f"{graph.name}-simple")


def symmetrized(graph: Graph) -> Graph:
    """Add the reverse of every edge (deduplicated): the undirected view
    many partitioners conceptually operate on, materialised."""
    src = np.concatenate([graph.src, graph.dst])
    dst = np.concatenate([graph.dst, graph.src])
    merged = Graph(graph.num_vertices, src, dst, name=graph.name)
    result = simplified(merged)
    return result.with_name(f"{graph.name}-sym")


def largest_component(graph: Graph) -> Graph:
    """Restrict to the largest weakly connected component.

    Vertices are re-labelled densely (0..n'-1) in ascending original-id
    order; the returned graph's ``name`` records the operation.
    """
    if graph.num_vertices == 0:
        return graph.with_name(f"{graph.name}-lcc")
    labels = weakly_connected_components(graph)
    counts = np.bincount(labels)
    winner = int(np.argmax(counts))
    keep_vertices = np.flatnonzero(labels == winner)
    mapping = np.full(graph.num_vertices, -1, dtype=np.int64)
    mapping[keep_vertices] = np.arange(keep_vertices.size)
    keep_edges = (labels[graph.src] == winner)
    src = mapping[graph.src[keep_edges]]
    dst = mapping[graph.dst[keep_edges]]
    return Graph(keep_vertices.size, src, dst, name=f"{graph.name}-lcc")


def degree_filtered(graph: Graph, min_degree: int = 1) -> Graph:
    """Drop vertices with total degree below ``min_degree`` (and their
    edges), relabelling densely — the standard periphery trim."""
    if min_degree < 0:
        raise ConfigurationError("min_degree must be >= 0")
    keep = graph.degree >= min_degree
    keep_vertices = np.flatnonzero(keep)
    mapping = np.full(graph.num_vertices, -1, dtype=np.int64)
    mapping[keep_vertices] = np.arange(keep_vertices.size)
    keep_edges = keep[graph.src] & keep[graph.dst]
    src = mapping[graph.src[keep_edges]]
    dst = mapping[graph.dst[keep_edges]]
    return Graph(keep_vertices.size, src, dst,
                 name=f"{graph.name}-deg{min_degree}")
