"""LDBC-SNB-like social friendship graph generator.

The paper's online-query experiments run on the friendship subgraph of the
LDBC Social Network Benchmark (persons + ``knows`` edges): a heavy-tailed,
community-structured graph.  We reproduce that structure with a
community-aware Chung–Lu model: vertices get Zipf-sized communities and
lognormal expected degrees; edges pick both endpoints proportionally to
expected degree, staying inside the source's community with probability
``homophily``.  This preserves the two properties the online experiments
exercise — degree skew (hotspot queries) and community locality (what
LDG/FENNEL/METIS exploit to beat hashing on edge-cut ratio).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.rng import make_rng


def _zipf_community_sizes(num_vertices: int, num_communities: int,
                          skew: float, rng: np.random.Generator) -> np.ndarray:
    """Community id per vertex; community sizes follow a Zipf profile."""
    ranks = np.arange(1, num_communities + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    communities = rng.choice(num_communities, size=num_vertices, p=weights)
    return communities.astype(np.int64)


def social_network(
    num_vertices: int,
    avg_degree: float = 20.0,
    *,
    num_communities: int | None = None,
    homophily: float = 0.8,
    community_skew: float = 1.1,
    degree_sigma: float = 1.0,
    seed=None,
    name: str = "social",
) -> Graph:
    """Community-structured Chung–Lu social graph.

    Parameters
    ----------
    num_vertices:
        Number of persons.
    avg_degree:
        Mean number of (directed) ``knows`` edges per person.  LDBC stores
        friendship in both directions; so do we — each undirected
        friendship contributes two directed edges, and ``avg_degree``
        counts directed edges.
    num_communities:
        Number of planted communities (default ``~ sqrt(n)/2``).
    homophily:
        Probability that an edge's target is drawn from the source's own
        community.
    community_skew:
        Zipf exponent of community sizes (larger = a few huge communities).
    degree_sigma:
        Lognormal sigma of expected degrees (larger = heavier tail).
    """
    if num_vertices < 2:
        raise ConfigurationError("social network needs >= 2 vertices")
    if not 0.0 <= homophily <= 1.0:
        raise ConfigurationError("homophily must lie in [0, 1]")
    if avg_degree <= 0:
        raise ConfigurationError("avg_degree must be positive")
    rng = make_rng(seed)
    if num_communities is None:
        num_communities = max(2, int(np.sqrt(num_vertices) / 2))

    community = _zipf_community_sizes(num_vertices, num_communities,
                                      community_skew, rng)
    # Lognormal expected degrees, normalised to the requested mean.
    weights = rng.lognormal(mean=0.0, sigma=degree_sigma, size=num_vertices)
    weights *= avg_degree / weights.mean()

    # Number of undirected friendships to sample.
    num_friendships = int(round(num_vertices * avg_degree / 2.0))

    # Pre-compute, per community, the member list and its weight profile.
    order = np.argsort(community, kind="stable")
    sorted_comm = community[order]
    boundaries = np.searchsorted(sorted_comm, np.arange(num_communities + 1))
    prob_global = weights / weights.sum()

    # Source endpoints: ∝ weight globally.
    u = rng.choice(num_vertices, size=num_friendships, p=prob_global)
    v = np.empty(num_friendships, dtype=np.int64)
    local_mask = rng.random(num_friendships) < homophily

    # Global (non-homophilous) targets.
    n_global = int((~local_mask).sum())
    if n_global:
        v[~local_mask] = rng.choice(num_vertices, size=n_global, p=prob_global)

    # Local targets: weighted draw within the source's community.
    local_sources = u[local_mask]
    if local_sources.size:
        local_targets = np.empty(local_sources.size, dtype=np.int64)
        source_comms = community[local_sources]
        for comm in np.unique(source_comms):
            members = order[boundaries[comm]:boundaries[comm + 1]]
            member_w = weights[members]
            member_p = member_w / member_w.sum()
            sel = source_comms == comm
            local_targets[sel] = rng.choice(members, size=int(sel.sum()),
                                            p=member_p)
        v[local_mask] = local_targets

    keep = u != v
    u, v = u[keep], v[keep]
    # Friendship is symmetric: store both directions like LDBC's knows.
    src = np.concatenate([u, v]).astype(np.int64)
    dst = np.concatenate([v, u]).astype(np.int64)
    return Graph(num_vertices, src, dst, name=name)


def ldbc_like(num_vertices: int = 20_000, avg_degree: float = 24.0,
              seed=None) -> Graph:
    """The repo's stand-in for the LDBC SNB SF-1000 friendship graph."""
    return social_network(num_vertices, avg_degree, homophily=0.8,
                          degree_sigma=1.0, seed=seed, name="ldbc-like")
