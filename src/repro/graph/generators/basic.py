"""Elementary graph generators used as fixtures and edge cases.

These are deliberately simple, exact constructions (no randomness except
Erdős–Rényi) so tests can assert closed-form properties against them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.rng import make_rng


def empty_graph(num_vertices: int = 0) -> Graph:
    """A graph with ``num_vertices`` vertices and no edges."""
    return Graph(num_vertices, np.empty(0, np.int64), np.empty(0, np.int64),
                 name=f"empty-{num_vertices}")


def path_graph(num_vertices: int) -> Graph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    if num_vertices < 0:
        raise ConfigurationError("num_vertices must be >= 0")
    src = np.arange(max(num_vertices - 1, 0), dtype=np.int64)
    return Graph(num_vertices, src, src + 1, name=f"path-{num_vertices}")


def cycle_graph(num_vertices: int) -> Graph:
    """Directed cycle over ``num_vertices`` vertices."""
    if num_vertices < 1:
        raise ConfigurationError("cycle needs at least one vertex")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    return Graph(num_vertices, src, dst, name=f"cycle-{num_vertices}")


def star_graph(num_leaves: int) -> Graph:
    """Star: vertex 0 points to ``1..num_leaves`` — the extreme hub case
    that separates degree-aware vertex-cut algorithms from edge-cut ones."""
    if num_leaves < 0:
        raise ConfigurationError("num_leaves must be >= 0")
    src = np.zeros(num_leaves, dtype=np.int64)
    dst = np.arange(1, num_leaves + 1, dtype=np.int64)
    return Graph(num_leaves + 1, src, dst, name=f"star-{num_leaves}")


def complete_graph(num_vertices: int) -> Graph:
    """Complete directed graph (both directions, no self loops)."""
    if num_vertices < 0:
        raise ConfigurationError("num_vertices must be >= 0")
    grid_u, grid_v = np.meshgrid(np.arange(num_vertices), np.arange(num_vertices))
    mask = grid_u != grid_v
    return Graph(num_vertices, grid_u[mask].astype(np.int64),
                 grid_v[mask].astype(np.int64), name=f"complete-{num_vertices}")


def erdos_renyi(num_vertices: int, num_edges: int, seed=None) -> Graph:
    """Uniform random directed graph with exactly ``num_edges`` edges
    (self loops excluded, duplicates allowed — it is a multigraph)."""
    if num_vertices < 2 and num_edges > 0:
        raise ConfigurationError("need >= 2 vertices to place loop-free edges")
    rng = make_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    offset = rng.integers(1, num_vertices, size=num_edges, dtype=np.int64)
    dst = (src + offset) % num_vertices
    return Graph(num_vertices, src, dst, name=f"er-{num_vertices}-{num_edges}")
