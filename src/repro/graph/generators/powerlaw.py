"""Heavy-tailed social-network generator (Twitter-like).

The paper's Twitter dataset (1.46B edges, avg degree 35, max degree 2.9M)
is a follower graph with a heavily skewed in-degree distribution.  We
reproduce the *shape* at laptop scale with a directed preferential
attachment process: each new vertex emits a random number of follow edges
whose targets are chosen proportionally to current in-degree (rich get
richer) with a uniform-mixing term to keep the tail from collapsing onto a
single vertex.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.rng import make_rng


def preferential_attachment(
    num_vertices: int,
    avg_out_degree: float = 16.0,
    *,
    uniform_mix: float = 0.2,
    seed_vertices: int | None = None,
    seed=None,
    name: str = "pa",
) -> Graph:
    """Directed preferential-attachment graph.

    Parameters
    ----------
    num_vertices:
        Total vertex count ``n``.
    avg_out_degree:
        Mean number of out-edges per vertex; per-vertex counts are drawn
        from a Pareto law so out-degree is heavy-tailed too (real follower
        graphs have both: celebrities with millions of followers *and*
        accounts following hundreds of thousands).
    uniform_mix:
        Probability that an individual edge picks its target uniformly at
        random rather than by in-degree; ``0`` gives the steepest tail.
    seed_vertices:
        Size of the initial uniformly wired clique-ish core (defaults to
        ``max(2, avg_out_degree)``).

    Returns a multigraph: repeated follows are kept, matching the
    paper's treatment of datasets as raw edge lists.
    """
    if num_vertices < 2:
        raise ConfigurationError("preferential attachment needs >= 2 vertices")
    if not 0.0 <= uniform_mix <= 1.0:
        raise ConfigurationError("uniform_mix must lie in [0, 1]")
    if avg_out_degree <= 0:
        raise ConfigurationError("avg_out_degree must be positive")
    rng = make_rng(seed)
    core = seed_vertices if seed_vertices is not None else max(2, int(avg_out_degree))
    core = min(core, num_vertices)

    # Endpoint pool: every stored target id appears once per received edge,
    # so sampling uniformly from the pool is sampling ∝ in-degree.
    pool = np.empty(64, dtype=np.int64)
    pool_size = 0
    src_chunks: list[np.ndarray] = []
    dst_chunks: list[np.ndarray] = []

    def _append_pool(targets: np.ndarray):
        nonlocal pool, pool_size
        needed = pool_size + targets.size
        if needed > pool.size:
            pool = np.resize(pool, max(pool.size * 2, needed))
        pool[pool_size:needed] = targets
        pool_size = needed

    # Core: ring so every early vertex has in-degree >= 1.
    core_src = np.arange(core, dtype=np.int64)
    core_dst = (core_src + 1) % core
    src_chunks.append(core_src)
    dst_chunks.append(core_dst)
    _append_pool(core_dst)

    # Pareto out-degree with the requested mean (>= 1 edge per vertex,
    # capped at n/10 so a single account cannot follow everyone).
    pareto_shape = 1.8
    pareto_mean = 1.0 / (pareto_shape - 1.0)
    scale = max(avg_out_degree - 1.0, 0.0) / pareto_mean
    raw = rng.pareto(pareto_shape, size=num_vertices - core) * scale
    cap = max(2, num_vertices // 10)
    out_counts = np.clip(raw, 0, cap).astype(np.int64) + 1

    for offset, count in enumerate(out_counts.tolist()):
        v = core + offset
        uniform = rng.random(count) < uniform_mix
        targets = np.empty(count, dtype=np.int64)
        n_uni = int(uniform.sum())
        if n_uni:
            targets[uniform] = rng.integers(0, v, size=n_uni)
        n_pref = count - n_uni
        if n_pref:
            slots = rng.integers(0, pool_size, size=n_pref)
            targets[~uniform] = pool[slots]
        # Drop accidental self loops (target may equal v only via pool
        # additions below, which have not happened yet, so only uniform
        # picks could — they draw from [0, v) and cannot).
        src_chunks.append(np.full(count, v, dtype=np.int64))
        dst_chunks.append(targets)
        _append_pool(targets)

    src = np.concatenate(src_chunks)
    dst = np.concatenate(dst_chunks)
    return Graph(num_vertices, src, dst, name=name)


def twitter_like(num_vertices: int = 30_000, avg_degree: float = 17.0,
                 seed=None) -> Graph:
    """The repo's stand-in for the paper's Twitter follower graph.

    Heavy-tailed in-degree (a few celebrity hubs), skewed out-degree,
    average total degree ≈ ``2 * avg_degree`` like the real dataset's 35.
    """
    return preferential_attachment(
        num_vertices,
        avg_out_degree=avg_degree,
        uniform_mix=0.15,
        seed=seed,
        name="twitter-like",
    )
