"""Road-network generator (USA-Road stand-in).

The paper's USA road network is a low-degree (avg 2.5, max 9), grid-like
graph with a very long diameter.  We reproduce those properties with a 2-D
lattice whose edges are randomly thinned and augmented with a sparse set of
short diagonal "connector" roads.  Both directions of every surviving road
segment are materialised, matching how road datasets serialise two-way
streets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.rng import make_rng


def road_grid(
    width: int,
    height: int,
    *,
    keep_probability: float = 0.7,
    diagonal_probability: float = 0.03,
    seed=None,
    name: str | None = None,
) -> Graph:
    """Perturbed 2-D lattice road network over ``width * height`` vertices.

    Vertex ``(x, y)`` has id ``y * width + x``.  Horizontal and vertical
    segments survive independently with ``keep_probability``; a small
    fraction of cells additionally gain a diagonal connector.  The defaults
    give an average total degree ≈ 2.6 (directed, counting both directions
    of two-way segments once each), matching the paper's Table 3.
    """
    if width < 2 or height < 2:
        raise ConfigurationError("road grid needs width >= 2 and height >= 2")
    if not 0.0 < keep_probability <= 1.0:
        raise ConfigurationError("keep_probability must lie in (0, 1]")
    rng = make_rng(seed)

    xs, ys = np.meshgrid(np.arange(width), np.arange(height))
    ids = (ys * width + xs).astype(np.int64)

    segments = []
    # Horizontal segments (x, y) -- (x+1, y).
    h_from = ids[:, :-1].ravel()
    h_to = ids[:, 1:].ravel()
    h_keep = rng.random(h_from.size) < keep_probability
    segments.append((h_from[h_keep], h_to[h_keep]))
    # Vertical segments (x, y) -- (x, y+1).
    v_from = ids[:-1, :].ravel()
    v_to = ids[1:, :].ravel()
    v_keep = rng.random(v_from.size) < keep_probability
    segments.append((v_from[v_keep], v_to[v_keep]))
    # Sparse diagonals (x, y) -- (x+1, y+1).
    d_from = ids[:-1, :-1].ravel()
    d_to = ids[1:, 1:].ravel()
    d_keep = rng.random(d_from.size) < diagonal_probability
    segments.append((d_from[d_keep], d_to[d_keep]))

    seg_src = np.concatenate([s for s, _ in segments])
    seg_dst = np.concatenate([t for _, t in segments])
    # Two-way streets: materialise both directions.
    src = np.concatenate([seg_src, seg_dst])
    dst = np.concatenate([seg_dst, seg_src])
    return Graph(width * height, src, dst,
                 name=name or f"road-{width}x{height}")


def road_like(num_vertices: int = 40_000, seed=None) -> Graph:
    """The repo's stand-in for the paper's USA road network.

    Builds a roughly square grid with ~``num_vertices`` vertices; average
    degree ≈ 2.6, max degree <= 8, long diameter (O(sqrt(n))).
    """
    side = max(2, int(round(num_vertices ** 0.5)))
    graph = road_grid(side, side, keep_probability=0.65,
                      diagonal_probability=0.02, seed=seed)
    return graph.with_name("road-like")
