"""R-MAT recursive-matrix generator (web-graph stand-in).

The paper's UK2007-05 crawl is a power-law web graph.  R-MAT (Chakrabarti
et al.) is the standard synthetic surrogate: recursively subdividing the
adjacency matrix with skewed quadrant probabilities yields power-law in- and
out-degree distributions and community-like locality.  The implementation is
fully vectorised: one pass per matrix level over all edges at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.rng import make_rng


def rmat(
    scale: int,
    edge_factor: float = 16.0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    noise: float = 0.1,
    seed=None,
    name: str | None = None,
) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        ``log2`` of the vertex count.
    edge_factor:
        Edges per vertex (Graph500 convention), so ``m = edge_factor * n``.
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c`` must be positive.
        Defaults are the Graph500 parameters, which produce the skew of
        large web crawls.
    noise:
        Per-level multiplicative jitter on the quadrant probabilities,
        which prevents the degree distribution from developing unrealistic
        lattice artifacts.

    Self loops are dropped; duplicates are kept (multigraph).
    """
    if scale < 1 or scale > 30:
        raise ConfigurationError("scale must be in [1, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) <= 0:
        raise ConfigurationError("quadrant probabilities must be positive and sum < 1")
    rng = make_rng(seed)
    n = 1 << scale
    m = int(round(edge_factor * n))

    row = np.zeros(m, dtype=np.int64)
    col = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        jitter = 1.0 + noise * (rng.random(4) - 0.5)
        pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
        total = pa + pb + pc + pd
        pa, pb, pc = pa / total, pb / total, pc / total
        u = rng.random(m)
        go_right = u >= (pa + pc)           # quadrants b, d select right half
        within_right = np.where(go_right, u - (pa + pc), 0.0)
        within_left = np.where(~go_right, u, 0.0)
        go_down = np.where(
            go_right,
            within_right >= pb,             # below-right = quadrant d
            within_left >= pa,              # below-left  = quadrant c
        )
        bit = np.int64(1 << (scale - 1 - level))
        row += bit * go_down
        col += bit * go_right

    keep = row != col
    graph_name = name or f"rmat-{scale}"
    return Graph(n, row[keep], col[keep], name=graph_name)


def web_like(scale: int = 15, edge_factor: float = 18.0, seed=None) -> Graph:
    """The repo's stand-in for the paper's UK2007-05 web graph.

    Power-law in/out degrees with a steeper tail than the Twitter-like
    generator (links concentrate on popular pages), average degree ≈ 35.
    """
    return rmat(scale, edge_factor, a=0.60, b=0.19, c=0.16, seed=seed,
                name="web-like")
