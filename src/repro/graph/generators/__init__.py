"""Synthetic dataset generators standing in for the paper's datasets."""

from repro.graph.generators.basic import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graph.generators.ldbc import ldbc_like, social_network
from repro.graph.generators.powerlaw import preferential_attachment, twitter_like
from repro.graph.generators.rmat import rmat, web_like
from repro.graph.generators.road import road_grid, road_like

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "erdos_renyi",
    "preferential_attachment",
    "twitter_like",
    "rmat",
    "web_like",
    "road_grid",
    "road_like",
    "social_network",
    "ldbc_like",
]
