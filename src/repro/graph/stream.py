"""Graph stream models.

The paper (Section 3) defines a streaming algorithm as one that is
"sequentially presented a stream S = <a1, a2, ...>" where each element is
either an edge ``(u, v)`` or a vertex ``u`` with its neighbourhood ``N(u)``.
This module materialises both stream models over an in-memory
:class:`~repro.graph.digraph.Graph`, plus the stream *orders* the SGP
literature studies (random, BFS, DFS, degree-sorted) — HDRF's λ term, for
example, exists specifically to survive BFS-ordered streams.

Streams are plain Python iterables so partitioners can also consume truly
external sources (e.g. a file reader) that follow the same element shapes:

* vertex stream elements: ``VertexArrival(vertex, neighbors)``
* edge stream elements:   ``EdgeArrival(edge_id, src, dst)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import Graph
from repro.rng import make_rng

#: Recognised stream order names.
STREAM_ORDERS = ("natural", "random", "bfs", "dfs", "degree", "degree_desc")


@dataclass(frozen=True)
class VertexArrival:
    """One element of a vertex stream: a vertex and its full neighbourhood."""

    vertex: int
    neighbors: np.ndarray

    def __iter__(self):  # allows ``for u, nbrs in stream`` unpacking
        return iter((self.vertex, self.neighbors))


@dataclass(frozen=True)
class EdgeArrival:
    """One element of an edge stream."""

    edge_id: int
    src: int
    dst: int

    def __iter__(self):
        return iter((self.edge_id, self.src, self.dst))


def vertex_order(graph: Graph, order: str = "natural", seed=None) -> np.ndarray:
    """Return a permutation of vertex ids realising a stream *order*.

    ``bfs``/``dfs`` traverse the undirected graph from the lowest-id vertex
    of each component (appending unreached components in id order), which is
    the convention used by Stanton & Kliot's experiments.
    """
    n = graph.num_vertices
    if order == "natural":
        return np.arange(n, dtype=np.int64)
    if order == "random":
        rng = make_rng(seed)
        return rng.permutation(n).astype(np.int64)
    if order == "degree":
        return np.argsort(graph.degree, kind="stable").astype(np.int64)
    if order == "degree_desc":
        return np.argsort(-graph.degree, kind="stable").astype(np.int64)
    if order in ("bfs", "dfs"):
        return _traversal_order(graph, depth_first=(order == "dfs"))
    raise ConfigurationError(
        f"unknown stream order {order!r}; expected one of {STREAM_ORDERS}"
    )


def _traversal_order(graph: Graph, depth_first: bool) -> np.ndarray:
    """BFS or DFS vertex order over the undirected graph, all components."""
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    result = np.empty(n, dtype=np.int64)
    pos = 0
    from collections import deque

    for root in range(n):
        if visited[root]:
            continue
        visited[root] = True
        frontier = deque([root])
        while frontier:
            u = frontier.pop() if depth_first else frontier.popleft()
            result[pos] = u
            pos += 1
            for v in graph.neighbors(u).tolist():
                if not visited[v]:
                    visited[v] = True
                    frontier.append(v)
    return result


class VertexStream:
    """Stream of vertices with complete adjacency lists (Section 4.1.1).

    This is the input model of edge-cut SGP algorithms (LDG, FENNEL):
    adjacency-list formats require complete neighbourhood information, so
    every arrival carries the *undirected* neighbourhood ``N(u)``.
    """

    def __init__(self, graph: Graph, order: str = "natural", seed=None):
        self.graph = graph
        self.order = order
        self._permutation = vertex_order(graph, order, seed)

    def __len__(self) -> int:
        return self.graph.num_vertices

    def __iter__(self) -> Iterator[VertexArrival]:
        graph = self.graph
        for u in self._permutation.tolist():
            yield VertexArrival(u, graph.neighbors(u))

    @property
    def permutation(self) -> np.ndarray:
        """The vertex order this stream will produce (read-only)."""
        view = self._permutation.view()
        view.flags.writeable = False
        return view


class EdgeStream:
    """Stream of directed edges one-at-a-time (Section 4.2.2).

    This is the input model of vertex-cut SGP algorithms (DBH, Grid,
    PowerGraph-greedy, HDRF) and of hybrid-cut algorithms.  ``order``
    applies to *edges*: ``bfs``/``dfs`` emit each vertex's out-edges in
    traversal order of the source (matching how a crawl or a bulk export
    would emit them), ``random`` shuffles edges uniformly.
    """

    def __init__(self, graph: Graph, order: str = "natural", seed=None):
        self.graph = graph
        self.order = order
        self._permutation = self._edge_order(order, seed)

    def _edge_order(self, order: str, seed) -> np.ndarray:
        m = self.graph.num_edges
        if order == "natural":
            return np.arange(m, dtype=np.int64)
        if order == "random":
            return make_rng(seed).permutation(m).astype(np.int64)
        if order in ("bfs", "dfs", "degree", "degree_desc"):
            by_vertex = vertex_order(self.graph, order, seed)
            chunks = [self.graph.out_edge_ids(int(u)) for u in by_vertex]
            if not chunks:
                return np.arange(0, dtype=np.int64)
            return np.concatenate(chunks).astype(np.int64)
        raise ConfigurationError(
            f"unknown stream order {order!r}; expected one of {STREAM_ORDERS}"
        )

    def __len__(self) -> int:
        return self.graph.num_edges

    def __iter__(self) -> Iterator[EdgeArrival]:
        src = self.graph.src
        dst = self.graph.dst
        for eid in self._permutation.tolist():
            yield EdgeArrival(eid, int(src[eid]), int(dst[eid]))

    @property
    def permutation(self) -> np.ndarray:
        """The edge-id order this stream will produce (read-only)."""
        view = self._permutation.view()
        view.flags.writeable = False
        return view
