"""Incremental graph construction.

:class:`GraphBuilder` accumulates edges (growing numpy buffers) and
produces an immutable :class:`~repro.graph.digraph.Graph`.  It is the
entry point for readers, generators and tests that assemble graphs edge by
edge.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.digraph import Graph


class GraphBuilder:
    """Accumulate edges and build a :class:`Graph`.

    Parameters
    ----------
    num_vertices:
        Optional fixed vertex count.  When omitted, the vertex count is
        ``max endpoint + 1`` at build time.
    allow_self_loops:
        If ``False`` (default), self loops are silently dropped — the SGP
        literature (and the paper's datasets) work on loop-free graphs.
    dedup:
        If ``True``, duplicate ``(src, dst)`` pairs are removed at build
        time, keeping the first occurrence order-stably.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self, num_vertices: int | None = None, *,
                 allow_self_loops: bool = False, dedup: bool = False):
        self._fixed_n = num_vertices
        self._allow_self_loops = allow_self_loops
        self._dedup = dedup
        self._src = np.empty(self._INITIAL_CAPACITY, dtype=np.int64)
        self._dst = np.empty(self._INITIAL_CAPACITY, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _grow(self, needed: int):
        capacity = self._src.size
        if self._size + needed <= capacity:
            return
        new_capacity = max(capacity * 2, self._size + needed)
        self._src = np.resize(self._src, new_capacity)
        self._dst = np.resize(self._dst, new_capacity)

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Append one directed edge ``u -> v``; returns self for chaining."""
        if u < 0 or v < 0:
            raise GraphFormatError(f"negative vertex id in edge ({u}, {v})")
        if u == v and not self._allow_self_loops:
            return self
        self._grow(1)
        self._src[self._size] = u
        self._dst[self._size] = v
        self._size += 1
        return self

    def add_edges(self, edges) -> "GraphBuilder":
        """Append many edges from an iterable of pairs or an ``(m, 2)`` array."""
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                         dtype=np.int64)
        if arr.size == 0:
            return self
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError("edges must be an iterable of (src, dst) pairs")
        if arr.min() < 0:
            raise GraphFormatError("negative vertex id in edge batch")
        if not self._allow_self_loops:
            arr = arr[arr[:, 0] != arr[:, 1]]
        self._grow(arr.shape[0])
        self._src[self._size:self._size + arr.shape[0]] = arr[:, 0]
        self._dst[self._size:self._size + arr.shape[0]] = arr[:, 1]
        self._size += arr.shape[0]
        return self

    def build(self, name: str = "graph") -> Graph:
        """Freeze the accumulated edges into an immutable :class:`Graph`."""
        src = self._src[:self._size].copy()
        dst = self._dst[:self._size].copy()
        if self._dedup and src.size:
            keys = src * (max(int(dst.max()), int(src.max())) + 1) + dst
            _, first = np.unique(keys, return_index=True)
            first.sort()
            src, dst = src[first], dst[first]
        if self._fixed_n is not None:
            n = self._fixed_n
        else:
            n = int(max(src.max(), dst.max())) + 1 if src.size else 0
        return Graph(n, src, dst, name=name)
