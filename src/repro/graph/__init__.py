"""Graph substrate: compact graphs, streams, generators, analysis, IO."""

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import Graph
from repro.graph.views import (
    degree_filtered,
    largest_component,
    simplified,
    symmetrized,
)
from repro.graph.stream import (
    STREAM_ORDERS,
    EdgeArrival,
    EdgeStream,
    VertexArrival,
    VertexStream,
    vertex_order,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "VertexStream",
    "EdgeStream",
    "VertexArrival",
    "EdgeArrival",
    "vertex_order",
    "STREAM_ORDERS",
    "simplified",
    "symmetrized",
    "largest_component",
    "degree_filtered",
]
