"""Structural graph analysis.

Backs Table 3 of the paper (dataset characteristics) and the dataset
classification step of the Figure 9 decision tree: degree statistics, a
simple power-law tail estimate, connected components and diameter
estimation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import Graph
from repro.rng import make_rng


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution (Table 3 columns)."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    max_in_degree: int
    max_out_degree: int
    #: Ratio max/avg degree — the skew signal the decision tree keys on.
    skew: float
    #: Estimated power-law exponent of the degree tail (Hill estimator);
    #: ``nan`` for graphs whose tail is too short to estimate.
    tail_exponent: float


def degree_stats(graph: Graph) -> DegreeStats:
    """Compute :class:`DegreeStats` for *graph*."""
    n = graph.num_vertices
    m = graph.num_edges
    degree = graph.degree
    avg = float(degree.mean()) if n else 0.0
    max_deg = int(degree.max()) if n else 0
    return DegreeStats(
        num_vertices=n,
        num_edges=m,
        avg_degree=avg,
        max_degree=max_deg,
        max_in_degree=int(graph.in_degree.max()) if n else 0,
        max_out_degree=int(graph.out_degree.max()) if n else 0,
        skew=(max_deg / avg) if avg else 0.0,
        tail_exponent=power_law_exponent(degree),
    )


def power_law_exponent(degrees: np.ndarray, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the power-law exponent of the degree tail.

    Uses the top ``tail_fraction`` of positive degrees.  Returns ``nan``
    when fewer than 10 tail samples exist.
    """
    positive = np.sort(degrees[degrees > 0]).astype(np.float64)
    k = int(len(positive) * tail_fraction)
    if k < 10:
        return float("nan")
    tail = positive[-k:]
    x_min = tail[0]
    if x_min <= 0:
        return float("nan")
    logs = np.log(tail / x_min)
    mean_log = logs.mean()
    if mean_log <= 0:
        return float("nan")
    return float(1.0 + 1.0 / mean_log)


GRAPH_TYPES = ("low-degree", "heavy-tailed", "power-law")


def isolated_fraction(graph: Graph) -> float:
    """Fraction of vertices with no incident edges at all."""
    if graph.num_vertices == 0:
        return 0.0
    return float((graph.degree == 0).mean())


def classify_graph(graph: Graph) -> str:
    """Classify a graph the way the paper's decision tree needs.

    * ``low-degree`` — regular structure, tiny maximum degree (road-like);
    * ``power-law`` — steep straight-line tail, or a web-crawl signature
      (a steep core plus a large dangling periphery of untouched pages);
    * ``heavy-tailed`` — skewed but with a flatter tail (social graphs).

    The tail exponent is a Hill estimate and noisy on small graphs, so the
    web-crawl signature (isolated periphery ≥ 10%) backs it up.  The
    boundary constants are heuristic but stable across the scales this
    repo generates, and they are validated against the generators in the
    test suite.
    """
    stats = degree_stats(graph)
    if stats.max_degree <= 16 and stats.skew <= 8:
        return "low-degree"
    exponent = stats.tail_exponent
    if not np.isnan(exponent) and exponent <= 2.3:
        return "power-law"
    if isolated_fraction(graph) >= 0.10:
        return "power-law"
    return "heavy-tailed"


def weakly_connected_components(graph: Graph) -> np.ndarray:
    """Component label per vertex (labels are the minimum vertex id of the
    component), computed with union-find over the edge list."""
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:            # path compression
            parent[x], x = root, parent[x]
        return root

    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv
    labels = np.empty(n, dtype=np.int64)
    for x in range(n):
        labels[x] = find(x)
    return labels


def largest_component_fraction(graph: Graph) -> float:
    """Fraction of vertices in the largest weakly connected component."""
    if graph.num_vertices == 0:
        return 0.0
    labels = weakly_connected_components(graph)
    counts = np.bincount(labels)
    return float(counts.max() / graph.num_vertices)


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Undirected BFS hop distances from *source* (-1 = unreachable)."""
    n = graph.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in graph.neighbors(u).tolist():
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                frontier.append(v)
    return dist


def estimate_diameter(graph: Graph, probes: int = 4, seed=None) -> int:
    """Lower-bound diameter estimate via repeated double-sweep BFS."""
    if graph.num_vertices == 0:
        return 0
    rng = make_rng(seed)
    best = 0
    for _ in range(probes):
        start = int(rng.integers(0, graph.num_vertices))
        dist = bfs_distances(graph, start)
        far = int(np.argmax(dist))
        dist2 = bfs_distances(graph, far)
        best = max(best, int(dist2.max()))
    return best
