"""The reprolint rule engine.

Small by design: a :class:`Rule` sees parsed modules (AST + source lines +
package location) and yields :class:`Finding` objects.  Rules come in two
shapes — per-module checks (``check_module``) for local determinism
violations, and project-wide checks (``check_project``) for cross-module
contracts such as "every registry entry's ``accepts_seed`` flag matches its
constructor".  The engine handles file collection, pragma suppression
(``# reprolint: ignore[RL001]`` on the offending line, or
``# reprolint: ignore-file`` near the top of a file), rule selection and
deterministic ordering of the output.

Package scoping: a file belongs to the ``repro`` package when a ``repro``
directory appears on its path (``src/repro/...`` in this repo, or any
fixture tree that mimics the layout).  Library-only rules key off that, so
``python -m repro lint src tests benchmarks`` never flags test harness
code for, say, seeding its own numpy generators.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

#: Code reserved for files the engine itself cannot parse.
SYNTAX_ERROR_CODE = "RL000"

_PRAGMA = re.compile(r"#\s*reprolint:\s*ignore\[(?P<codes>[A-Za-z0-9,\s]+)\]")
_FILE_PRAGMA = re.compile(r"#\s*reprolint:\s*ignore-file\b")
#: ``ignore-file`` must appear in the first few lines, like a coding cookie.
_FILE_PRAGMA_WINDOW = 5

_SKIP_DIRS = {"__pycache__", ".git", ".repro-cache", ".mypy_cache",
              ".ruff_cache", ".pytest_cache", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col}

    def render(self) -> str:
        return f"{self.location}: {self.code} {self.message}"


class Module:
    """A parsed source file plus the context rules need.

    Each file is parsed exactly once, and the flattened node list is
    memoised on first use (``all_nodes``/``nodes``) so the dozens of
    registered rules share one AST walk instead of re-walking the tree
    per rule family.
    """

    def __init__(self, path: Path, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.package_parts = _package_parts(path)
        self._all_nodes: list | None = None
        self._ignored_by_line: dict | None = None

    @property
    def module_name(self) -> str:
        """Dotted module path within the ``repro`` package ('' outside it)."""
        return ".".join(self.package_parts)

    def in_package(self) -> bool:
        return bool(self.package_parts)

    def package_startswith(self, *prefixes: Sequence[str]) -> bool:
        """True when the module lives under any of the given part tuples."""
        return any(self.package_parts[:len(p)] == tuple(p) for p in prefixes)

    def finding(self, code: str, message: str, node: ast.AST) -> Finding:
        return Finding(code=code, message=message, path=str(self.path),
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0))

    @property
    def all_nodes(self) -> list:
        """Every AST node, flattened once and cached for all rules."""
        if self._all_nodes is None:
            self._all_nodes = list(ast.walk(self.tree))
        return self._all_nodes

    def nodes(self, *types: type) -> list:
        """Cached nodes, optionally filtered by AST node type(s)."""
        if not types:
            return self.all_nodes
        return [n for n in self.all_nodes if isinstance(n, types)]

    def ignored_codes(self, line: int) -> set:
        """Codes suppressed at 1-based *line* by an inline pragma.

        A pragma suppresses its whole *logical statement*, not just its
        own physical line: a ``# reprolint: ignore[RL001]`` on the first
        line of a multi-line call covers findings on its continuation
        lines, and a pragma anywhere in a decorated ``def``/``class``
        header (decorators through the signature) covers the header even
        though the AST node's ``lineno`` points at the decorator.
        """
        if self._ignored_by_line is None:
            self._ignored_by_line = self._build_suppressions()
        return self._ignored_by_line.get(line, set())

    def _build_suppressions(self) -> dict:
        """Map each 1-based line to the codes suppressed there."""
        by_line: dict = {}
        for number, text in enumerate(self.lines, start=1):
            codes = _pragma_codes(text)
            if codes:
                by_line[number] = set(codes)
        if not by_line:
            return by_line
        # Widen every pragma to its statement's suppression region so a
        # pragma on any physical line of the region covers all of it.
        for start, end in self._suppression_regions():
            region_codes: set = set()
            for line in range(start, end + 1):
                region_codes |= by_line.get(line, set())
            if not region_codes:
                continue
            for line in range(start, end + 1):
                by_line.setdefault(line, set()).update(region_codes)
        return by_line

    def _suppression_regions(self) -> Iterator:
        """(start, end) line spans a single pragma should cover.

        Simple statements span their full physical extent.  Compound
        statements (defs, classes, loops, ...) contribute only their
        *header* — decorators through the line before the first body
        statement — so a pragma on a ``def`` never silences the body.
        """
        for node in self.all_nodes:
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            decorators = getattr(node, "decorator_list", [])
            for decorator in decorators:
                start = min(start, decorator.lineno)
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                end = max(start, body[0].lineno - 1)
            else:
                end = getattr(node, "end_lineno", None) or node.lineno
            if end > start or decorators:
                yield start, end


def _pragma_codes(text: str) -> set:
    """Codes named by an inline ``# reprolint: ignore[...]`` pragma."""
    match = _PRAGMA.search(text)
    if not match:
        return set()
    return {code.strip().upper()
            for code in match.group("codes").split(",") if code.strip()}


def _package_parts(path: Path) -> tuple:
    """Module path from the last ``repro`` directory onward, if any.

    ``src/repro/database/mutations.py`` → ``('repro', 'database',
    'mutations')``; package ``__init__`` files collapse onto the package
    itself, and files outside any ``repro`` directory yield ``()``.
    """
    parts = list(path.parts)
    if "repro" not in parts[:-1]:
        return ()
    start = len(parts) - 2 - parts[:-1][::-1].index("repro")
    module_parts = parts[start:-1] + [path.stem]
    if module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return tuple(module_parts)


class Project:
    """Every successfully parsed module in one lint run."""

    def __init__(self, modules: Sequence[Module]):
        self.modules = list(modules)

    def find(self, *suffix: str) -> Module | None:
        """The unique in-package module whose dotted path ends in *suffix*."""
        for module in self.modules:
            if module.package_parts[-len(suffix):] == tuple(suffix):
                return module
        return None

    def package_modules(self) -> Iterator[Module]:
        return (m for m in self.modules if m.in_package())


class Rule:
    """Base class; subclasses set ``code``/``name``/``summary``."""

    code = "RL999"
    name = "unnamed"
    summary = ""

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


_REGISTRY: list = []


def register(rule_cls: Callable[[], Rule]):
    """Class decorator adding a rule to the engine's registry."""
    _REGISTRY.append(rule_cls)
    return rule_cls


def all_rules() -> list:
    """Fresh instances of every registered rule, in code order."""
    _load_rule_modules()
    return sorted((cls() for cls in _REGISTRY), key=lambda r: r.code)


def _load_rule_modules() -> None:
    # Imported lazily so `import repro.tools.lint.engine` alone never
    # pays for (or fails on) the rule modules.
    from repro.tools.lint import (  # noqa: F401
        dataflow,
        rules_contracts,
        rules_determinism,
        rules_process,
    )


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` call."""

    findings: list = field(default_factory=list)
    files_checked: int = 0
    files_skipped: int = 0
    rules: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    #: Versioned identifier for the ``--format json`` payload shape.
    SCHEMA = "repro.lint/1"

    def to_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "clean": self.clean,
            "files_checked": self.files_checked,
            "files_skipped": self.files_skipped,
            "rules": list(self.rules),
            "findings": [f.to_dict() for f in self.findings],
        }


def collect_files(paths: Iterable) -> list:
    """All ``.py`` files under *paths*, deterministically ordered."""
    out: set = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py")
                       if not _SKIP_DIRS.intersection(p.parts))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _has_file_pragma(source: str) -> bool:
    head = source.splitlines()[:_FILE_PRAGMA_WINDOW]
    return any(_FILE_PRAGMA.search(line) for line in head)


def run_lint(paths: Iterable, select: Iterable | None = None,
             ignore: Iterable | None = None) -> LintResult:
    """Lint *paths* with every registered rule; returns all live findings.

    *select*/*ignore* restrict by rule code (select wins first, then
    ignore removes).  Findings suppressed by inline pragmas are dropped;
    unparsable files produce an ``RL000`` finding rather than a crash.
    """
    selected = {c.upper() for c in select} if select else None
    ignored = {c.upper() for c in ignore} if ignore else set()
    rules = [r for r in all_rules()
             if (selected is None or r.code in selected)
             and r.code not in ignored]

    result = LintResult(rules=[r.code for r in rules])
    modules: list = []
    by_path: dict = {}
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            result.files_skipped += 1
            continue
        if _has_file_pragma(source):
            result.files_skipped += 1
            continue
        try:
            module = Module(path, source)
        except SyntaxError as error:
            result.files_checked += 1
            if SYNTAX_ERROR_CODE not in ignored:
                result.findings.append(Finding(
                    code=SYNTAX_ERROR_CODE,
                    message=f"file does not parse: {error.msg}",
                    path=str(path), line=error.lineno or 1,
                    col=(error.offset or 1) - 1))
            continue
        result.files_checked += 1
        modules.append(module)
        by_path[str(path)] = module

    project = Project(modules)
    raw: list = []
    for rule in rules:
        for module in modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(project))

    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and finding.code in module.ignored_codes(finding.line):
            continue
        result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result
