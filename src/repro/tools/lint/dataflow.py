"""Interprocedural determinism dataflow rules (RL201–RL203).

These rules ride on :mod:`repro.tools.lint.callgraph` to answer the
questions the per-file rules cannot:

* **RL201 — unseeded RNG flow.**  A seed-provenance taint analysis: a
  parameter is *seed-flowing* when its value reaches the ``seed``
  parameter of :func:`repro.rng.make_rng`, either directly, through
  another seed-flowing parameter, or via a ``self.seed = seed`` lane
  stored in ``__init__`` and consumed elsewhere in the class.  Any call
  site in ``partitioning/``, ``service/``, ``ingest/`` or ``database/``
  that leaves a seed-flowing parameter unset (or passes an explicit
  ``None``) falls back to process entropy and breaks bit-for-bit
  reproducibility.
* **RL202 — wall-clock impurity reaching simulated time.**  Functions
  containing a wall-clock read are impure; impurity propagates backwards
  over call edges.  A simulated-time module calling an *out-of-scope*
  impure helper is reported at the boundary call (direct in-scope reads
  are RL003's per-file job).
* **RL203 — mutable module globals written from hot paths.**  A
  module-level mutable literal in a hot-scope module that any function
  in the same module mutates is cross-run shared state: it survives
  between runs inside one process and orders itself by call history.

The call graph is built once per project and shared by all three rules.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tools.lint.callgraph import CallGraph, CallSite, FunctionInfo
from repro.tools.lint.engine import Finding, Module, Project, Rule, register
from repro.tools.lint.rules_determinism import (
    WallClockInSimulatedTime,
    SIMULATED_TIME_SCOPES,
    dotted_name,
)

#: Scopes whose RNG consumption must trace back to the experiment seed.
RNG_SCOPES = (
    ("repro", "partitioning"),
    ("repro", "service"),
    ("repro", "ingest"),
    ("repro", "database"),
)

#: Hot-path scopes for the mutable-global rule.
HOT_SCOPES = RNG_SCOPES

#: The root of all seed provenance: make_rng's ``seed`` parameter.
SEED_ROOT = ("repro.rng.make_rng", "seed")

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard",
})

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def project_callgraph(project: Project) -> CallGraph:
    """The project's call graph, built once and memoised on the project."""
    graph = getattr(project, "_reprolint_callgraph", None)
    if graph is None:
        graph = CallGraph(project)
        project._reprolint_callgraph = graph  # type: ignore[attr-defined]
    return graph


def _is_none(node: ast.AST | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _unbindable(call: ast.Call) -> bool:
    return (any(isinstance(a, ast.Starred) for a in call.args)
            or any(k.arg is None for k in call.keywords))


# ----------------------------------------------------------------------
# Seed-provenance taint analysis.
# ----------------------------------------------------------------------
class SeedFlow:
    """Fixpoint computation of seed-flowing parameters and attributes."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: (qualname, param) pairs whose value reaches make_rng's seed.
        self.params: set = set()
        #: (class_key, attr) pairs acting as a stored seed lane.
        self.attrs: set = set()
        self._self_assigns = self._collect_self_assigns()
        self._run()

    def _collect_self_assigns(self) -> list:
        """Every ``self.<attr> = <expr>`` in every method, once."""
        out: list = []
        for info in self.graph.functions.values():
            if info.class_name is None:
                continue
            class_key = f"{info.module.module_name}.{info.class_name}"
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        out.append((class_key, target.attr, node.value, info))
        return out

    def _run(self) -> None:
        if SEED_ROOT[0] in self.graph.functions:
            self.params.add(SEED_ROOT)
        changed = True
        while changed:
            changed = False
            for site in self.graph.call_sites:
                if _unbindable(site.call):
                    continue
                callee = self.graph.functions.get(site.callee)
                if callee is None:
                    continue
                bound = self.graph.bind_arguments(site.call, callee)
                for param, expr in bound.items():
                    if (site.callee, param) not in self.params:
                        continue
                    changed |= self._taint_expr(site, expr)
            for class_key, attr, value, method in self._self_assigns:
                if (class_key, attr) not in self.attrs:
                    continue
                if (isinstance(value, ast.Name)
                        and value.id in method.params):
                    pair = (method.qualname, value.id)
                    if pair not in self.params:
                        self.params.add(pair)
                        changed = True

    def _taint_expr(self, site: CallSite, expr: ast.AST) -> bool:
        """Taint whatever *expr* names in the calling context."""
        caller = self.graph.functions.get(site.caller)
        if isinstance(expr, ast.Name) and caller is not None:
            if expr.id in caller.params:
                pair = (site.caller, expr.id)
                if pair not in self.params:
                    self.params.add(pair)
                    return True
        elif (isinstance(expr, ast.Attribute)
              and isinstance(expr.value, ast.Name)
              and expr.value.id == "self"
              and caller is not None and caller.class_name is not None):
            key = (f"{caller.module.module_name}.{caller.class_name}",
                   expr.attr)
            if key not in self.attrs:
                self.attrs.add(key)
                return True
        return False


@register
class UnseededRngFlow(Rule):
    """RL201 — every RNG in the hot scopes must trace back to a seed."""

    code = "RL201"
    name = "unseeded-rng-flow"
    summary = ("call in partitioning/service/ingest/database leaves a "
               "seed-flowing parameter unset (or passes None) — the RNG "
               "falls back to process entropy")

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project_callgraph(project)
        flow = SeedFlow(graph)
        if not flow.params:
            return
        for site in graph.call_sites:
            if not site.module.package_startswith(*RNG_SCOPES):
                continue
            if _unbindable(site.call):
                continue
            callee = graph.functions.get(site.callee)
            if callee is None:
                continue
            bound = graph.bind_arguments(site.call, callee)
            for param in callee.params:
                if (site.callee, param) not in flow.params:
                    continue
                if param in bound:
                    if _is_none(bound[param]):
                        yield site.module.finding(
                            self.code,
                            f"explicit None for seed-flowing parameter "
                            f"`{param}` of {site.callee} — the RNG stream "
                            f"will come from process entropy, not the "
                            f"experiment seed", site.call)
                elif _is_none(callee.param_default(param)):
                    yield site.module.finding(
                        self.code,
                        f"seed-flowing parameter `{param}` of "
                        f"{site.callee} is omitted and defaults to None — "
                        f"thread the experiment seed through this call",
                        site.call)


# ----------------------------------------------------------------------
# Wall-clock impurity propagation.
# ----------------------------------------------------------------------
class TimePurity:
    """Which functions (transitively) read the wall clock, and why."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: qualname -> human-readable reason chain ("via a -> b: time.time")
        self.impure: dict = {}
        self._run()

    def _direct_reads(self, info: FunctionInfo) -> str | None:
        banned = WallClockInSimulatedTime.banned_suffixes
        imports = self.graph.imports.get(info.module.module_name, {})
        for node in ast.walk(info.node):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                tail = ".".join(name.split(".")[-2:])
                if tail in banned:
                    return name
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                target = imports.get(node.func.id)
                if target and target in {f"time.{n}" for n in
                                         WallClockInSimulatedTime.banned_time_names}:
                    return target
        return None

    def _run(self) -> None:
        for qualname, info in self.graph.functions.items():
            read = self._direct_reads(info)
            if read is not None:
                self.impure[qualname] = f"reads `{read}`"
        changed = True
        while changed:
            changed = False
            for caller, callees in self.graph.edges.items():
                if caller in self.impure or caller not in self.graph.functions:
                    continue
                for callee in callees:
                    if callee in self.impure:
                        self.impure[caller] = (
                            f"calls {callee}, which {self.impure[callee]}")
                        changed = True
                        break


@register
class TimeImpurityReachesSimulation(Rule):
    """RL202 — nothing reachable from simulated time reads the clock."""

    code = "RL202"
    name = "time-impurity-reaches-des"
    summary = ("simulated-time code calls a helper that (transitively) "
               "reads the wall clock — direct reads are RL003, this is "
               "the cross-module escape hatch")

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project_callgraph(project)
        purity = TimePurity(graph)
        if not purity.impure:
            return
        for site in graph.call_sites:
            if not site.module.package_startswith(*SIMULATED_TIME_SCOPES):
                continue
            callee = graph.functions.get(site.callee)
            if callee is None or site.callee not in purity.impure:
                continue
            # The boundary only: direct in-scope reads are RL003's,
            # in-scope impure callees are flagged at their own boundary.
            if callee.module.package_startswith(*SIMULATED_TIME_SCOPES):
                continue
            yield site.module.finding(
                self.code,
                f"simulated-time code calls {site.callee}, which "
                f"{purity.impure[site.callee]} — wall-clock state must "
                f"not leak into simulated time", site.call)


# ----------------------------------------------------------------------
# Mutable module globals on hot paths.
# ----------------------------------------------------------------------
@register
class MutableGlobalOnHotPath(Rule):
    """RL203 — no function-mutated module globals in hot scopes.

    A module-level ``CACHE = {}`` that hot-path functions write to is
    cross-run shared state: within one process it survives between runs,
    so the second run of an experiment sees different state than the
    first and digests diverge.  State belongs on instances whose
    lifetime the experiment controls.
    """

    code = "RL203"
    name = "mutable-global-hot-path"
    summary = ("module-level mutable literal in partitioning/service/"
               "ingest/database mutated from function code")

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.package_startswith(*HOT_SCOPES):
            return
        mutable_globals = self._module_level_mutables(module)
        if not mutable_globals:
            return
        for fn in module.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            for name, write in self._writes(fn, mutable_globals):
                yield module.finding(
                    self.code,
                    f"module global `{name}` (defined at line "
                    f"{mutable_globals[name]}) is mutated from a hot-path "
                    f"function — per-process state makes runs order-"
                    f"dependent; hold it on an instance instead", write)

    @staticmethod
    def _module_level_mutables(module: Module) -> dict:
        out: dict = {}
        for node in module.tree.body:
            targets: list = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                         ast.ListComp, ast.DictComp,
                                         ast.SetComp))
            mutable |= (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id in _MUTABLE_FACTORIES)
            if not mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.lineno
        return out

    @staticmethod
    def _writes(fn: ast.AST, names: dict):
        declared_global = {
            name for node in ast.walk(fn)
            if isinstance(node, ast.Global) for name in node.names}
        for node in ast.walk(fn):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in names):
                yield node.func.value.id, node
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in names):
                        yield target.value.id, node
                    elif (isinstance(target, ast.Name)
                          and target.id in names
                          and target.id in declared_global):
                        yield target.id, node
