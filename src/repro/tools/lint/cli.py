"""``repro-lint`` / ``python -m repro lint`` — run the invariant checker.

Usage::

    repro-lint src tests benchmarks          # human output, exit 1 on findings
    repro-lint src --format json             # machine-readable findings
    repro-lint src --select RL001,RL003      # a subset of rules
    repro-lint --list-rules                  # the rule catalogue

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.tools.lint.engine import all_rules, run_lint

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _codes(raw: str | None) -> list:
    if not raw:
        return []
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based checker for this repo's determinism, "
                    "seeding and registry contracts "
                    "(docs/static_analysis.md).",
    )
    parser.add_argument("paths", nargs="*", default=None, metavar="PATH",
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", dest="output_format",
                        help="findings as text lines or one JSON document")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:24s} {rule.summary}")
        return EXIT_CLEAN

    known = {rule.code for rule in all_rules()} | {"RL000"}
    select, ignore = _codes(args.select), _codes(args.ignore)
    unknown = [c for c in select + ignore if c not in known]
    if unknown:
        print(f"unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known codes: {', '.join(sorted(known))}", file=sys.stderr)
        return EXIT_USAGE

    paths = args.paths or ["src"]
    result = run_lint(paths, select=select or None, ignore=ignore or None)

    if args.output_format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        suffix = "" if result.files_checked == 1 else "s"
        status = ("clean" if result.clean
                  else f"{len(result.findings)} finding"
                       f"{'' if len(result.findings) == 1 else 's'}")
        print(f"[reprolint: {result.files_checked} file{suffix} checked, "
              f"{status}]", file=sys.stderr)

    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
