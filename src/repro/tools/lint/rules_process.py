"""Process-boundary audit rules (RL210–RL213).

The spawn-based multiprocessing paths (the orchestrator's process pool,
the sharded-ingest worker loop) are where determinism is easiest to lose
silently: a closure that captures a live handle pickles by accident
under fork and crashes under spawn, a forked child inherits warm module
state the spawned child would not have, and a float delta accumulator
makes the merged result depend on worker arrival order.  These rules
audit every call that crosses a process boundary.

They activate only in modules that import ``multiprocessing`` or
``concurrent.futures`` — everything else has no boundary to audit.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.tools.lint.engine import Finding, Module, Rule, register
from repro.tools.lint.rules_determinism import dotted_name

#: Constructors whose results are live OS/process handles — never valid
#: as spawn payloads (RL211) and never safe inside captured closures.
LIVE_HANDLE_FACTORIES = frozenset({
    "MetricsRegistry", "get_metrics", "get_tracer", "Tracer",
    "memmap", "mmap", "open", "EdgeStreamFile", "socket", "Lock",
    "RLock", "Condition",
})

_MP_ROOTS = frozenset({"multiprocessing", "concurrent"})


def _imports_multiprocessing(module: Module) -> bool:
    for node in module.nodes(ast.Import, ast.ImportFrom):
        if isinstance(node, ast.Import):
            if any(a.name.split(".")[0] in _MP_ROOTS for a in node.names):
                return True
        elif (node.module or "").split(".")[0] in _MP_ROOTS:
            return True
    return False


def _module_level_function_names(module: Module) -> set:
    return {node.name for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _imported_names(module: Module) -> set:
    out: set = set()
    for node in module.nodes(ast.Import, ast.ImportFrom):
        for alias in node.names:
            out.add(alias.asname or alias.name.split(".")[0])
    return out


class _Boundary:
    """One call that ships a callable and/or payload across processes."""

    __slots__ = ("call", "kind", "callable", "payloads")

    def __init__(self, call: ast.Call, kind: str,
                 callable_expr: ast.AST | None, payloads: list):
        self.call = call
        self.kind = kind  # "submit" | "process" | "send"
        self.callable = callable_expr
        self.payloads = payloads


def _boundaries(module: Module) -> Iterator[_Boundary]:
    for node in module.nodes(ast.Call):
        func = node.func
        if not isinstance(func, ast.Attribute):
            # Bare Process(...) / ProcessPoolExecutor(...) by name.
            if isinstance(func, ast.Name) and func.id == "Process":
                yield _from_process_call(node)
            continue
        if func.attr == "submit" and node.args:
            yield _Boundary(node, "submit", node.args[0],
                            list(node.args[1:])
                            + [k.value for k in node.keywords])
        elif func.attr == "Process":
            yield _from_process_call(node)
        elif func.attr == "send" and len(node.args) == 1:
            yield _Boundary(node, "send", None, _flatten(node.args[0]))


def _from_process_call(node: ast.Call) -> _Boundary:
    target = None
    payloads: list = []
    for keyword in node.keywords:
        if keyword.arg == "target":
            target = keyword.value
        elif keyword.arg == "args":
            payloads.extend(_flatten(keyword.value))
        elif keyword.arg == "kwargs":
            payloads.extend(_flatten(keyword.value))
    return _Boundary(node, "process", target, payloads)


def _flatten(expr: ast.AST) -> list:
    if isinstance(expr, (ast.Tuple, ast.List)):
        return list(expr.elts)
    if isinstance(expr, ast.Dict):
        return [v for v in expr.values if v is not None]
    return [expr]


def _enclosing_for(module: Module, call: ast.Call):
    """Innermost function definition containing *call*, if any."""
    best = None
    for fn in module.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
        if fn.lineno <= call.lineno <= (fn.end_lineno or fn.lineno):
            if best is None or fn.lineno >= best.lineno:
                best = fn
    return best


@register
class ProcessBoundaryCallable(Rule):
    """RL210 — only module-level functions cross process boundaries.

    A lambda, nested def or bound method shipped to ``submit``/
    ``Process(target=...)`` drags its closure (and under fork, the whole
    warm parent state) across the boundary.  Spawn requires the target
    to be importable: a plain module-level function.
    """

    code = "RL210"
    name = "process-boundary-callable"
    summary = ("lambda/nested def/bound method passed across a process "
               "boundary — spawn targets must be module-level functions")

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_package() or not _imports_multiprocessing(module):
            return
        module_level = _module_level_function_names(module)
        imported = _imported_names(module)
        for boundary in _boundaries(module):
            target = boundary.callable
            if target is None:
                continue
            if isinstance(target, ast.Lambda):
                yield module.finding(
                    self.code,
                    "lambda crosses a process boundary — it cannot be "
                    "pickled for spawn; use a module-level function",
                    boundary.call)
            elif isinstance(target, ast.Attribute):
                yield module.finding(
                    self.code,
                    f"bound method `{dotted_name(target) or target.attr}` "
                    f"crosses a process boundary — it captures its whole "
                    f"instance; use a module-level function taking value "
                    f"arguments", boundary.call)
            elif isinstance(target, ast.Name):
                if target.id in module_level or target.id in imported:
                    continue
                enclosing = _enclosing_for(module, boundary.call)
                if enclosing is not None:
                    nested = {
                        n.name for n in ast.walk(enclosing)
                        if isinstance(n, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                        and n is not enclosing}
                    if target.id in nested:
                        yield module.finding(
                            self.code,
                            f"nested function `{target.id}` crosses a "
                            f"process boundary — closures do not survive "
                            f"spawn; hoist it to module level",
                            boundary.call)


@register
class ProcessPayloadHygiene(Rule):
    """RL211 — spawn payloads are picklable value types, not live handles.

    A ``MetricsRegistry``, tracer, open file or mmap shipped through
    ``Process(args=...)``/``submit``/``conn.send`` either fails to
    pickle or — worse — pickles a *copy* whose mutations silently
    diverge from the parent's. Workers must receive plain values and
    merge state back through explicit deltas.
    """

    code = "RL211"
    name = "process-payload-hygiene"
    summary = ("live handle (registry/tracer/mmap/file) shipped across a "
               "process boundary")

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_package() or not _imports_multiprocessing(module):
            return
        for boundary in _boundaries(module):
            enclosing = _enclosing_for(module, boundary.call)
            live_names = self._live_handle_names(enclosing)
            for payload in boundary.payloads:
                factory = self._live_factory(payload)
                if factory is not None:
                    yield module.finding(
                        self.code,
                        f"`{factory}(...)` result shipped across a "
                        f"process boundary — live handles are not "
                        f"spawn-safe; pass plain values and rebuild in "
                        f"the worker", boundary.call)
                elif (isinstance(payload, ast.Name)
                      and payload.id in live_names):
                    yield module.finding(
                        self.code,
                        f"`{payload.id}` holds a "
                        f"`{live_names[payload.id]}(...)` handle and is "
                        f"shipped across a process boundary — pass plain "
                        f"values and rebuild in the worker", boundary.call)

    @staticmethod
    def _live_factory(expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name and name.split(".")[-1] in LIVE_HANDLE_FACTORIES:
                return name
        return None

    @staticmethod
    def _live_handle_names(enclosing: ast.AST | None) -> dict:
        if enclosing is None:
            return {}
        out: dict = {}
        for node in ast.walk(enclosing):
            if not isinstance(node, ast.Assign) or \
                    not isinstance(node.value, ast.Call):
                continue
            name = dotted_name(node.value.func)
            if name is None or \
                    name.split(".")[-1] not in LIVE_HANDLE_FACTORIES:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = name
        return out


@register
class ExplicitSpawnContext(Rule):
    """RL212 — every process boundary names an explicit spawn context.

    The platform default (fork on Linux) hands children a warm copy of
    the parent — module caches, RNG state, open fds — so results differ
    between platforms and between first/second runs. ``spawn`` starts
    cold everywhere, which is why workers=N digest parity holds.
    """

    code = "RL212"
    name = "explicit-spawn-context"
    summary = ("process pool/Process without an explicit spawn context — "
               "fork inherits warm parent state and differs per platform")

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_package() or not _imports_multiprocessing(module):
            return
        spawn_vars = self._context_vars(module)
        for node in module.nodes(ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.split(".")[-1]
            head = name.split(".")[0]
            if tail == "get_context":
                method = node.args[0] if node.args else None
                if not (isinstance(method, ast.Constant)
                        and method.value == "spawn"):
                    yield module.finding(
                        self.code,
                        "get_context() without 'spawn' — fork/forkserver "
                        "inherit warm parent state; request 'spawn' "
                        "explicitly", node)
            elif tail in ("Process", "Pool") and head in (
                    "multiprocessing", "mp"):
                yield module.finding(
                    self.code,
                    f"`{name}` uses the platform-default start method — "
                    f"build it from get_context('spawn')", node)
            elif tail == "ProcessPoolExecutor":
                context = next((k.value for k in node.keywords
                                if k.arg == "mp_context"), None)
                ok = (isinstance(context, ast.Name)
                      and context.id in spawn_vars)
                ok |= (isinstance(context, ast.Call)
                       and (dotted_name(context.func) or "")
                       .endswith("get_context"))
                if not ok:
                    yield module.finding(
                        self.code,
                        "ProcessPoolExecutor without mp_context="
                        "get_context('spawn') — the Linux default is "
                        "fork, which inherits warm parent state", node)

    @staticmethod
    def _context_vars(module: Module) -> set:
        out: set = set()
        for node in module.nodes(ast.Assign):
            if not isinstance(node.value, ast.Call):
                continue
            name = dotted_name(node.value.func) or ""
            if not name.endswith("get_context"):
                continue
            method = node.value.args[0] if node.value.args else None
            if isinstance(method, ast.Constant) and method.value == "spawn":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
        return out


@register
class IntegerDeltaAccumulator(Rule):
    """RL213 — cross-process delta accumulators carry an integer dtype.

    Merging worker deltas with float ``+=`` is non-associative: the sum
    depends on worker arrival order, so the same run with a different
    scheduler interleaving produces a different digest. Integer deltas
    commute exactly — the contract the shard merge API relies on.
    """

    code = "RL213"
    name = "integer-delta-accumulator"
    summary = ("np.zeros/np.empty accumulator merged with += in a "
               "multiprocessing module lacks an explicit integer dtype")

    _ALLOC = frozenset({"zeros", "empty", "ones"})

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_package() or not _imports_multiprocessing(module):
            return
        for fn in module.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            allocations = self._array_allocations(fn)
            if not allocations:
                continue
            merged = {
                node.target.id for node in ast.walk(fn)
                if isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Name)}
            for name, (call, integer) in allocations.items():
                if name in merged and not integer:
                    yield module.finding(
                        self.code,
                        f"delta accumulator `{name}` is merged with += "
                        f"but allocated without an explicit integer dtype "
                        f"— float accumulation depends on worker arrival "
                        f"order", call)

    def _array_allocations(self, fn: ast.AST) -> dict:
        out: dict = {}
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or \
                    not isinstance(node.value, ast.Call):
                continue
            name = dotted_name(node.value.func) or ""
            parts = name.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy") or \
                    parts[1] not in self._ALLOC:
                continue
            dtype = next((k.value for k in node.value.keywords
                          if k.arg == "dtype"), None)
            integer = self._is_integer_dtype(dtype)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = (node.value, integer)
        return out

    @staticmethod
    def _is_integer_dtype(dtype: ast.AST | None) -> bool:
        if dtype is None:
            return False
        if isinstance(dtype, ast.Name):
            return dtype.id == "int" or dtype.id.startswith(("int", "uint"))
        if isinstance(dtype, ast.Attribute):
            return dtype.attr.startswith(("int", "uint"))
        if isinstance(dtype, ast.Constant) and isinstance(dtype.value, str):
            return dtype.value.startswith(("int", "uint"))
        return False
