"""Determinism rules (RL001–RL006).

Each rule encodes one way a change can silently break bit-for-bit
reproducibility: an unseeded (or privately-seeded) RNG, a wall-clock read
inside a simulated-time substrate, hash-order iteration, or an
environment read outside the configuration layer.  All of them are scoped
to the ``repro`` package — the test/benchmark harnesses may do what they
like with their own randomness.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.tools.lint.engine import Finding, Module, Rule, register

#: Where the repo simulates time instead of reading it (RL003).
SIMULATED_TIME_SCOPES = (
    ("repro", "analytics"),
    ("repro", "database"),
    ("repro", "partitioning"),
    ("repro", "faults"),
    ("repro", "service"),
    ("repro", "telemetry", "tracer"),
)

#: Hot decision paths where hash-order iteration matters most (RL004).
DECISION_SCOPES = (
    ("repro", "partitioning"),
    ("repro", "analytics"),
    ("repro", "database"),
    ("repro", "service"),
)

#: The only module allowed to construct numpy generators (RL001/RL002).
RNG_MODULE = ("repro", "rng")

#: The configuration layer allowed to read the environment (RL006).
#: ``tools.sanitize`` is the documented exception: REPRO_SANITIZE is its
#: master switch, read once at import, and the sanitizer never affects
#: results — it can only abort.
ENV_SCOPES = (
    ("repro", "experiments"),
    ("repro", "orchestrator"),
    ("repro", "tools", "sanitize"),
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def walk_code(module: Module) -> Iterator[ast.AST]:
    """Every AST node, via the module's shared one-walk cache."""
    yield from module.all_nodes


@register
class RawNumpyRandom(Rule):
    """RL001 — numpy randomness must flow through ``repro.rng``."""

    code = "RL001"
    name = "raw-numpy-rng"
    summary = ("np.random.* construction or global-state use outside "
               "repro.rng — route through make_rng/derive_rng")

    #: Constructors and global-state entry points.  Notably *not*
    #: ``Generator`` (a legitimate type annotation everywhere).
    banned = frozenset({
        "default_rng", "seed", "RandomState", "SeedSequence",
        "get_state", "set_state", "rand", "randn", "randint", "random",
        "random_sample", "choice", "shuffle", "permutation",
    })

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_package() or module.package_parts == RNG_MODULE:
            return
        for node in walk_code(module):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                head, _, attr = name.rpartition(".")
                if head in ("np.random", "numpy.random") and attr in self.banned:
                    yield module.finding(
                        self.code,
                        f"raw numpy RNG `{name}` outside repro.rng — use "
                        f"repro.rng.make_rng / derive_rng so seeds stay "
                        f"centrally derivable", node)
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                bad = [a.name for a in node.names if a.name in self.banned]
                if bad:
                    yield module.finding(
                        self.code,
                        f"importing {', '.join(bad)} from numpy.random "
                        f"outside repro.rng — use repro.rng.make_rng / "
                        f"derive_rng", node)


@register
class StdlibRandomness(Rule):
    """RL002 — no stdlib randomness outside ``repro.rng``."""

    code = "RL002"
    name = "stdlib-random"
    summary = "stdlib `random`/`secrets` import outside repro.rng"

    banned_modules = frozenset({"random", "secrets"})

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_package() or module.package_parts == RNG_MODULE:
            return
        for node in walk_code(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.banned_modules:
                        yield module.finding(
                            self.code,
                            f"stdlib `{alias.name}` is not seed-derivable "
                            f"from the experiment seed — use repro.rng",
                            node)
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self.banned_modules and not node.level:
                    yield module.finding(
                        self.code,
                        f"stdlib `{node.module}` is not seed-derivable "
                        f"from the experiment seed — use repro.rng", node)


@register
class WallClockInSimulatedTime(Rule):
    """RL003 — simulated-time substrates never read the wall clock."""

    code = "RL003"
    name = "wall-clock"
    summary = ("time.time/perf_counter/datetime.now in a simulated-time "
               "module — clocks there must come from the simulation")

    banned_suffixes = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "datetime.now", "datetime.utcnow",
        "datetime.today", "date.today",
    })
    banned_time_names = frozenset({
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    })

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.package_startswith(*SIMULATED_TIME_SCOPES):
            return
        for node in walk_code(module):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                tail = ".".join(name.split(".")[-2:])
                if tail in self.banned_suffixes:
                    yield module.finding(
                        self.code,
                        f"wall-clock read `{name}` in a simulated-time "
                        f"module — cache keys, traces and digests must not "
                        f"depend on real time", node)
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names
                       if a.name in self.banned_time_names]
                if bad:
                    yield module.finding(
                        self.code,
                        f"importing {', '.join(bad)} from time in a "
                        f"simulated-time module", node)


@register
class SetIteration(Rule):
    """RL004 — no iteration over bare sets in decision hot paths.

    Set iteration order is a function of element hashes and insertion
    history; an HDRF/FENNEL-style tie-break fed from it changes every
    downstream assignment between runs.  Iterate a list, or ``sorted()``
    the set first.
    """

    code = "RL004"
    name = "set-iteration"
    summary = ("iteration over a set literal/constructor/comprehension in "
               "partitioning/analytics/database code")

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.package_startswith(*DECISION_SCOPES):
            return
        for node in walk_code(module):
            iters: list = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_bare_set(it):
                    yield module.finding(
                        self.code,
                        "iterating a set — order is hash-dependent; use a "
                        "list or sorted(...) so decisions are reproducible",
                        it)

    @staticmethod
    def _is_bare_set(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))


@register
class DictPopitem(Rule):
    """RL005 — ``dict.popitem()`` is an insertion-order dependency."""

    code = "RL005"
    name = "dict-popitem"
    summary = "dict.popitem() call — take an explicit key instead"

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_package():
            return
        for node in walk_code(module):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "popitem"):
                yield module.finding(
                    self.code,
                    "popitem() pops by insertion order — evict by an "
                    "explicit, deterministic key instead", node)


@register
class EnvRead(Rule):
    """RL006 — environment reads live in the configuration layer only.

    ``REPRO_SCALE`` / ``REPRO_CACHE_DIR`` are resolved once, at the
    experiments/orchestrator boundary.  An env read inside a substrate
    would make results depend on invisible process state that never
    reaches a cache key or a report's provenance stamp.
    """

    code = "RL006"
    name = "env-read"
    summary = "os.environ/os.getenv outside repro.experiments/orchestrator"

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_package() or module.package_startswith(*ENV_SCOPES):
            return
        for node in walk_code(module):
            name = dotted_name(node) if isinstance(node, ast.Attribute) else None
            if name in ("os.environ", "os.getenv"):
                yield module.finding(
                    self.code,
                    f"`{name}` outside the configuration layer "
                    f"(repro.experiments / repro.orchestrator) — results "
                    f"must not depend on hidden process state", node)
            elif (isinstance(node, ast.ImportFrom) and node.module == "os"
                  and any(a.name in ("environ", "getenv")
                          for a in node.names)):
                yield module.finding(
                    self.code,
                    "importing environ/getenv outside the configuration "
                    "layer", node)
