"""Cross-module contract rules (RL101–RL108).

These rules extract facts from several modules at once — the partitioner
registry, the experiment registry, the orchestrator's job planner, the
telemetry emitters — and check that the pieces still agree.  Every anchor
module is located by its dotted suffix within the linted file set, so the
same rules run unchanged over the real tree and over miniature fixture
trees in the test suite; a rule whose anchors are absent simply does not
fire.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.tools.lint.engine import Finding, Module, Project, Rule, register

#: Scopes whose concrete partitioner classes must all be registered.
ALGORITHM_SCOPES = (
    ("repro", "partitioning", "edge_cut"),
    ("repro", "partitioning", "vertex_cut"),
    ("repro", "partitioning", "hybrid"),
)

PARTITIONER_BASES = frozenset({"VertexPartitioner", "EdgePartitioner"})


def _literal_str_dict(module: Module, name: str):
    """``name = {"k": <value>, ...}`` at top level → {key: (value_node, line)}."""
    for node in module.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
            continue
        value = node.value
        if not isinstance(value, ast.Dict):
            return None
        out = {}
        for key, val in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                out[key.value] = (val, key.lineno)
        return out
    return None


def _literal_str_tuple(module: Module, name: str):
    """``name = ("a", "b", ...)`` at top level → {value: line}, else None."""
    for node in module.tree.body:
        if not (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == name
                        for t in node.targets)):
            continue
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        out = {}
        for element in value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None  # dynamically built — don't guess
            out[element.value] = element.lineno
        return out
    return None


def _top_level_names(tree: ast.Module) -> set:
    """Names bound at module top level (descending into if/try blocks)."""
    names: set = set()

    def visit(body) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    _bind_target(target, names)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                _bind_target(node.target, names)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        names.add("*")
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)
            elif isinstance(node, (ast.For, ast.While, ast.With)):
                if isinstance(node, ast.For):
                    _bind_target(node.target, names)
                visit(node.body)
    visit(tree.body)
    return names


def _bind_target(target: ast.AST, names: set) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(element, names)


def _all_declaration(module: Module):
    """The ``__all__`` list node and its string entries, if literal."""
    for node in module.tree.body:
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)
                and isinstance(node.value, (ast.List, ast.Tuple))):
            entries = []
            for element in node.value.elts:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    return node, None  # dynamically built — don't guess
                entries.append((element.value, element.lineno,
                                element.col_offset))
            return node, entries
    return None, None


class _ClassIndex:
    """Class definitions across the project, resolvable through bases."""

    def __init__(self, project: Project):
        self.classes: dict = {}
        for module in project.package_modules():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    # First definition wins; partitioner class names are
                    # unique in practice and in the fixtures.
                    self.classes.setdefault(node.name, (module, node))

    def accepts_seed(self, class_name: str):
        """Whether ``__init__`` (possibly inherited) takes ``seed``.

        Returns ``None`` when the chain leaves the analysed file set —
        an unknown is never reported as a contradiction.
        """
        seen: set = set()
        name: str | None = class_name
        while name and name not in seen:
            seen.add(name)
            entry = self.classes.get(name)
            if entry is None:
                return None
            _, node = entry
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name == "__init__"):
                    args = item.args
                    params = [a.arg for a in
                              args.posonlyargs + args.args + args.kwonlyargs]
                    return "seed" in params
            name = next((base.id for base in node.bases
                         if isinstance(base, ast.Name)), None)
        return None

    def inherits_partitioner(self, node: ast.ClassDef) -> bool:
        seen: set = set()
        stack = [node]
        while stack:
            current = stack.pop()
            for base in current.bases:
                base_name = base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else None)
                if base_name is None:
                    continue
                if base_name in PARTITIONER_BASES:
                    return True
                entry = self.classes.get(base_name)
                if entry is not None and base_name not in seen:
                    seen.add(base_name)
                    stack.append(entry[1])
        return False


@register
class RegistrySeedContract(Rule):
    """RL101 — the partitioner registry matches the constructors.

    Three sub-checks over ``partitioning/registry.py``: every factory has
    an ``accepts_seed`` flag, every flag matches whether the class's
    (possibly inherited) ``__init__`` takes ``seed``, and every concrete
    partitioner class under edge_cut/vertex_cut/hybrid is registered.
    The import-time ``_validate_seed_flags`` guard catches the first two
    at runtime; this rule catches them in review, plus the third, which
    no runtime check covers.
    """

    code = "RL101"
    name = "registry-seed-contract"
    summary = ("partitioning registry accepts_seed flags must match "
               "constructor signatures; concrete partitioners must be "
               "registered")

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry = project.find("partitioning", "registry")
        if registry is None:
            return
        factories = _literal_str_dict(registry, "_FACTORIES")
        flags = _literal_str_dict(registry, "_ACCEPTS_SEED")
        if factories is None:
            return
        index = _ClassIndex(project)
        flags = flags or {}

        registered_classes: set = set()
        for name, (value_node, lineno) in sorted(factories.items()):
            class_name = value_node.id if isinstance(value_node, ast.Name) \
                else None
            if class_name:
                registered_classes.add(class_name)
            if name not in flags:
                yield Finding(self.code,
                              f"registry entry {name!r} has no "
                              f"_ACCEPTS_SEED flag",
                              str(registry.path), lineno)
                continue
            flag_node, flag_line = flags[name]
            if not (isinstance(flag_node, ast.Constant)
                    and isinstance(flag_node.value, bool)):
                continue
            if class_name is None:
                continue
            has_seed = index.accepts_seed(class_name)
            if has_seed is not None and has_seed != flag_node.value:
                yield Finding(
                    self.code,
                    f"accepts_seed flag for {name!r} is {flag_node.value} "
                    f"but {class_name}.__init__ "
                    f"{'takes' if has_seed else 'does not take'} a seed "
                    f"parameter", str(registry.path), flag_line)

        for name in sorted(set(flags) - set(factories)):
            yield Finding(self.code,
                          f"_ACCEPTS_SEED names {name!r} which is not a "
                          f"registered factory",
                          str(registry.path), flags[name][1])

        for module in project.package_modules():
            if not module.package_startswith(*ALGORITHM_SCOPES):
                continue
            for node in module.tree.body:
                if (isinstance(node, ast.ClassDef)
                        and not node.name.startswith("_")
                        and node.name not in registered_classes
                        and index.inherits_partitioner(node)):
                    yield module.finding(
                        self.code,
                        f"partitioner class {node.name} is not registered "
                        f"in partitioning/registry.py", node)


@register
class AllNamesResolve(Rule):
    """RL102 — every ``__all__`` entry is defined in its module."""

    code = "RL102"
    name = "all-resolves"
    summary = "__all__ names must be defined/imported; no duplicates"

    def check_module(self, module: Module) -> Iterable[Finding]:
        node, entries = _all_declaration(module)
        if node is None or entries is None:
            return
        defined = _top_level_names(module.tree)
        if "*" in defined:
            return  # a star import may bind anything — don't guess
        seen: set = set()
        for name, lineno, col in entries:
            if name in seen:
                yield Finding(self.code,
                              f"duplicate __all__ entry {name!r}",
                              str(module.path), lineno, col)
                continue
            seen.add(name)
            if name not in defined and name != "__version__":
                yield Finding(self.code,
                              f"__all__ names {name!r} which the module "
                              f"never defines or imports",
                              str(module.path), lineno, col)


@register
class ExperimentPlanSync(Rule):
    """RL103 — every CLI-reachable experiment has a DAG plan entry.

    ``EXPERIMENTS`` (experiments/__init__) is what ``python -m repro``
    will run; ``_REQUIREMENTS`` (orchestrator/dag) is what ``build_plan``
    can parallelise and cache.  A missing plan entry silently serialises
    an experiment; a dangling one plans artifacts nothing renders.
    """

    code = "RL103"
    name = "experiment-plan-sync"
    summary = "EXPERIMENTS keys and orchestrator _REQUIREMENTS keys match"

    def check_project(self, project: Project) -> Iterable[Finding]:
        experiments_mod = project.find("repro", "experiments")
        dag_mod = project.find("orchestrator", "dag")
        if experiments_mod is None or dag_mod is None:
            return
        experiments = _literal_str_dict(experiments_mod, "EXPERIMENTS")
        requirements = _literal_str_dict(dag_mod, "_REQUIREMENTS")
        if experiments is None or requirements is None:
            return
        for name in sorted(set(experiments) - set(requirements)):
            yield Finding(self.code,
                          f"experiment {name!r} has no _REQUIREMENTS entry "
                          f"in orchestrator/dag.py — build_plan cannot "
                          f"pre-plan its artifacts",
                          str(experiments_mod.path), experiments[name][1])
        for name in sorted(set(requirements) - set(experiments)):
            yield Finding(self.code,
                          f"_REQUIREMENTS entry {name!r} matches no "
                          f"experiment in EXPERIMENTS",
                          str(dag_mod.path), requirements[name][1])


#: A span name: at least two lowercase dotted segments (``db.hop``,
#: ``sgp.decision``) — and never a filename.
_SPAN_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
_FILE_SUFFIXES = (".py", ".json", ".jsonl", ".txt", ".md", ".csv", ".yml",
                  ".yaml", ".toml")


def _docstring_positions(tree: ast.Module) -> set:
    positions: set = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            body = node.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                positions.add((body[0].value.lineno,
                               body[0].value.col_offset))
    return positions


@register
class SpanNameContract(Rule):
    """RL104 — trace consumers only reference span names that are emitted.

    Emitted names are the literal first arguments of ``tracer.begin`` /
    ``tracer.point`` calls anywhere in the package; consumer literals in
    ``tools/trace_cli.py`` and ``telemetry/profile.py`` (filters, default
    reports) must come from that set, or the report would silently match
    nothing.
    """

    code = "RL104"
    name = "span-name-contract"
    summary = ("span-name literals in trace_cli/profile must be emitted "
               "by some tracer.begin/point call")

    consumer_suffixes = (("tools", "trace_cli"), ("telemetry", "profile"))

    def check_project(self, project: Project) -> Iterable[Finding]:
        emitted: set = set()
        emitters = 0
        for module in project.package_modules():
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("begin", "point")
                        and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)):
                    emitted.add(node.args[0].value)
                    emitters += 1
        if not emitters:
            return  # no tracer in the linted set — nothing to check against
        for suffix in self.consumer_suffixes:
            module = project.find(*suffix)
            if module is None:
                continue
            yield from self._check_consumer(module, emitted)

    def _check_consumer(self, module: Module, emitted: set) -> Iterator[Finding]:
        docstrings = _docstring_positions(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)):
                continue
            if (node.lineno, node.col_offset) in docstrings:
                continue
            value = node.value
            if (not _SPAN_NAME.match(value)
                    or value.endswith(_FILE_SUFFIXES)):
                continue
            if value not in emitted:
                yield Finding(
                    self.code,
                    f"span name {value!r} is referenced here but no "
                    f"tracer.begin/point call emits it",
                    str(module.path), node.lineno, node.col_offset)


@register
class PublicApiReexport(Rule):
    """RL105 — ``repro/__init__`` re-exports stay in ``__all__``.

    Every public name the package ``__init__`` imports from a subpackage
    is part of the advertised API surface; forgetting to list it in
    ``__all__`` makes ``from repro import *`` and the docs drift from
    what the code actually exposes.
    """

    code = "RL105"
    name = "public-api-reexport"
    summary = "names imported by repro/__init__.py must appear in __all__"

    def check_project(self, project: Project) -> Iterable[Finding]:
        module = project.find("repro")
        if module is None or module.package_parts != ("repro",):
            return
        _, entries = _all_declaration(module)
        if entries is None:
            return
        declared = {name for name, _, _ in entries}
        for node in module.tree.body:
            if not (isinstance(node, ast.ImportFrom)
                    and (node.module or "").startswith("repro")):
                continue
            for alias in node.names:
                name = alias.asname or alias.name
                if name.startswith("_") or name == "*":
                    continue
                if name not in declared:
                    yield Finding(
                        self.code,
                        f"repro/__init__ imports {name!r} from "
                        f"{node.module} but __all__ does not list it",
                        str(module.path), node.lineno)


#: The dotted package prefix RL106 polices.
_SERVICE_SCOPE = ("repro", "service")
#: RNG constructors the service must import from ``repro.rng``.
_SERVICE_RNG_NAMES = frozenset({"make_rng", "derive_rng"})


@register
class ServiceSpanRegistry(Rule):
    """RL106 — the online service stays seeded and its spans registered.

    ``repro/service/__init__.py`` declares ``SPAN_NAMES``, the closed
    registry of telemetry span names the service may emit.  Two-way
    check: every literal ``tracer.begin``/``tracer.point`` name inside
    ``repro.service`` must be a ``service.``-prefixed member of the
    registry (an unregistered span silently escapes the trace tooling),
    and every registry entry must actually be emitted somewhere (a
    dangling entry documents telemetry that does not exist).  In the
    same scope, any call to ``make_rng``/``derive_rng`` must resolve to
    an import from ``repro.rng`` — a locally-defined shadow would let
    unseeded randomness into the seed-deterministic service loop.
    """

    code = "RL106"
    name = "service-span-registry"
    summary = ("repro.service span literals must be registered in "
               "SPAN_NAMES and rng constructors imported from repro.rng")

    def check_project(self, project: Project) -> Iterable[Finding]:
        init = project.find(*_SERVICE_SCOPE)
        if init is None or init.package_parts != _SERVICE_SCOPE:
            return  # no service package in the linted set
        registry = _literal_str_tuple(init, "SPAN_NAMES")
        if registry is None:
            yield Finding(
                self.code,
                "repro/service/__init__.py must declare SPAN_NAMES as a "
                "literal tuple of span-name strings",
                str(init.path), 1)
            return

        emitted: set = set()
        for module in project.package_modules():
            if not module.package_startswith(_SERVICE_SCOPE):
                continue
            yield from self._check_module(module, registry, emitted)

        for name in sorted(set(registry) - emitted):
            yield Finding(
                self.code,
                f"SPAN_NAMES registers {name!r} but no tracer.begin/point "
                f"call in repro.service emits it",
                str(init.path), registry[name])

    def _check_module(self, module: Module, registry: dict,
                      emitted: set) -> Iterator[Finding]:
        rng_imports: set = set()
        for node in module.tree.body:
            if (isinstance(node, ast.ImportFrom)
                    and node.module == "repro.rng"):
                rng_imports.update(alias.asname or alias.name
                                   for alias in node.names)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("begin", "point")
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                name = node.args[0].value
                emitted.add(name)
                if not name.startswith("service."):
                    yield module.finding(
                        self.code,
                        f"span {name!r} emitted in repro.service must use "
                        f"the 'service.' prefix", node.args[0])
                elif name not in registry:
                    yield module.finding(
                        self.code,
                        f"span {name!r} is not registered in "
                        f"repro/service/__init__.py SPAN_NAMES",
                        node.args[0])
            elif (isinstance(func, ast.Name)
                    and func.id in _SERVICE_RNG_NAMES
                    and func.id not in rng_imports):
                yield module.finding(
                    self.code,
                    f"{func.id}() in repro.service must be imported from "
                    f"repro.rng (seed-deterministic service loop)", func)


#: Registry methods whose first argument is a metric name.
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
#: The module that must declare the METRIC_NAMES export schema.
_METRIC_ANCHOR = ("telemetry", "metrics")


def _fstring_head(node: ast.JoinedStr) -> str:
    """The literal prefix of an f-string, up to the first ``{...}``."""
    head = []
    for part in node.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            head.append(part.value)
        else:
            break
    return "".join(head)


@register
class MetricNameRegistry(Rule):
    """RL107 — every emitted metric name is registered, both ways.

    ``telemetry/metrics.py`` declares ``METRIC_NAMES``, the closed export
    schema of every metric the repo emits — the OpenMetrics exporter, the
    SLO indicators and the health dashboard all address series by these
    names, so an unregistered emission is a series those consumers cannot
    see, and a dangling entry documents telemetry that does not exist.
    Emissions are the literal first arguments of ``counter()`` /
    ``gauge()`` / ``histogram()`` calls (attribute or aliased-name form)
    anywhere in the package; dynamic f-string names (the orchestrator's
    ``cache.{outcome}`` family) must fall under a ``.*`` wildcard entry
    covering their literal prefix.  The tuple must also stay sorted, so
    diffs against the schema remain one-line.
    """

    code = "RL107"
    name = "metric-name-registry"
    summary = ("metric names passed to counter()/gauge()/histogram() must "
               "be registered in telemetry/metrics.py METRIC_NAMES, every "
               "entry must have an emitter, and the tuple stays sorted")

    def check_project(self, project: Project) -> Iterable[Finding]:
        anchor = project.find(*_METRIC_ANCHOR)
        if anchor is None:
            return  # no metrics registry in the linted set
        registry = _literal_str_tuple(anchor, "METRIC_NAMES")
        if registry is None:
            yield Finding(
                self.code,
                "telemetry/metrics.py must declare METRIC_NAMES as a "
                "literal tuple of metric-name strings",
                str(anchor.path), 1)
            return

        entries = list(registry)
        if entries != sorted(entries):
            first = next(name for prev, name in zip(entries, entries[1:])
                         if name < prev)
            yield Finding(
                self.code,
                f"METRIC_NAMES must be sorted; {first!r} is out of order",
                str(anchor.path), registry[first])

        wildcards = [name for name in registry if name.endswith(".*")]
        emitted_exact: dict = {}
        emitted_heads: dict = {}
        for module in project.package_modules():
            if module is anchor:
                continue  # the registry's own class definitions
            yield from self._check_module(module, registry, wildcards,
                                          emitted_exact, emitted_heads)

        for name in sorted(registry):
            if name in wildcards:
                prefix = name[:-1]
                covered = (any(e.startswith(prefix) for e in emitted_exact)
                           or any(h.startswith(prefix) or prefix.startswith(h)
                                  for h in emitted_heads))
            else:
                covered = name in emitted_exact
            if not covered:
                yield Finding(
                    self.code,
                    f"METRIC_NAMES registers {name!r} but no "
                    f"counter()/gauge()/histogram() call emits it",
                    str(anchor.path), registry[name])

    def _check_module(self, module: Module, registry: dict, wildcards,
                      emitted_exact: dict, emitted_heads: dict
                      ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            method = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if method not in _METRIC_METHODS:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
                emitted_exact.setdefault(name, module)
                if not self._registered(name, registry, wildcards):
                    yield module.finding(
                        self.code,
                        f"metric {name!r} is not registered in "
                        f"telemetry/metrics.py METRIC_NAMES", arg)
            elif isinstance(arg, ast.JoinedStr):
                head = _fstring_head(arg)
                if not head:
                    continue  # fully dynamic — don't guess
                emitted_heads.setdefault(head, module)
                if not any(head.startswith(w[:-1]) or w[:-1].startswith(head)
                           for w in wildcards):
                    yield module.finding(
                        self.code,
                        f"dynamic metric family {head + '{...}'!r} has no "
                        f"covering '.*' wildcard in METRIC_NAMES", arg)

    @staticmethod
    def _registered(name: str, registry: dict, wildcards) -> bool:
        if name in registry:
            return True
        return any(name.startswith(entry[:-1]) for entry in wildcards)


#: The package that owns raw binary stream I/O.
_INGEST_SCOPE = ("repro", "ingest")
#: Non-ingest modules allowed to open files binarily (the artifact
#: cache's pickle blobs predate the ingest subsystem).
_BINARY_IO_ALLOWED = (("orchestrator", "cache"),)
#: Functions whose literal mode argument marks a binary open.
_OPEN_FUNCTIONS = frozenset({"open", "fdopen"})


def _binary_mode_arg(node: ast.Call):
    """The mode node of an ``open``/``fdopen`` call when it is a literal
    string containing ``'b'``, else None."""
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (isinstance(mode, ast.Constant) and isinstance(mode.value, str)
            and "b" in mode.value):
        return mode
    return None


@register
class IngestBinaryFormat(Rule):
    """RL108 — binary stream I/O stays inside ``repro.ingest`` and the
    writer/reader agree on one magic/version.

    The ``.redg`` on-disk format has exactly one definition:
    ``ingest/format.py`` declares ``MAGIC`` (a bytes literal) and
    ``FORMAT_VERSION`` (an int literal), and both the writer and the
    reader must reference *those names* — a module hard-coding its own
    magic bytes would let the two sides of the format drift apart
    silently.  Containment is checked too: ``numpy.memmap`` and
    binary-mode ``open()``/``fdopen()`` calls outside ``repro.ingest``
    (the orchestrator's pickle-blob cache excepted) bypass the format's
    validation and versioning, so they are flagged wherever they appear
    in the package.
    """

    code = "RL108"
    name = "ingest-binary-format"
    summary = ("np.memmap / binary-mode open() only inside repro.ingest; "
               "writer and reader must share format.py's MAGIC and "
               "FORMAT_VERSION constants")

    def check_project(self, project: Project) -> Iterable[Finding]:
        for module in project.package_modules():
            if module.package_startswith(_INGEST_SCOPE):
                continue
            if any(module.package_parts[-len(suffix):] == suffix
                   for suffix in _BINARY_IO_ALLOWED):
                continue
            yield from self._check_containment(module)

        format_mod = project.find("ingest", "format")
        if format_mod is None:
            return  # no ingest package in the linted set
        yield from self._check_constants(format_mod)
        for suffix in (("ingest", "writer"), ("ingest", "reader")):
            module = project.find(*suffix)
            if module is None:
                continue
            referenced = {node.id for node in ast.walk(module.tree)
                          if isinstance(node, ast.Name)}
            referenced |= {node.attr for node in ast.walk(module.tree)
                           if isinstance(node, ast.Attribute)}
            for constant in ("MAGIC", "FORMAT_VERSION"):
                if constant not in referenced:
                    yield Finding(
                        self.code,
                        f"{'/'.join(suffix)}.py never references "
                        f"{constant} from ingest/format.py — the two "
                        f"sides of the .redg format can drift",
                        str(module.path), 1)

    def _check_containment(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "memmap":
                yield module.finding(
                    self.code,
                    "numpy.memmap outside repro.ingest — raw binary "
                    "stream access belongs behind the .redg reader", node)
                continue
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name in _OPEN_FUNCTIONS:
                mode = _binary_mode_arg(node)
                if mode is not None:
                    yield module.finding(
                        self.code,
                        f"binary-mode {name}() outside repro.ingest — "
                        f"raw stream files are owned by the ingest "
                        f"subsystem", mode)

    def _check_constants(self, format_mod: Module) -> Iterator[Finding]:
        constants: dict = {}
        for node in format_mod.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = node.value
        magic = constants.get("MAGIC")
        if not (isinstance(magic, ast.Constant)
                and isinstance(magic.value, bytes)):
            yield Finding(
                self.code,
                "ingest/format.py must define MAGIC as a bytes literal",
                str(format_mod.path), 1)
        version = constants.get("FORMAT_VERSION")
        if not (isinstance(version, ast.Constant)
                and isinstance(version.value, int)):
            yield Finding(
                self.code,
                "ingest/format.py must define FORMAT_VERSION as an int "
                "literal",
                str(format_mod.path), 1)
