"""Project-wide call graph for interprocedural lint rules.

The per-file rules in :mod:`rules_determinism` can flag a raw
``np.random`` call, but they cannot tell whether a seed actually
*reaches* a partitioner three calls away, or whether a helper reachable
from the discrete-event simulator reads the wall clock.  This module
builds the whole-program structure those questions need:

* every function/method in the project, keyed by a stable qualname
  (``repro.ingest.shard._worker_loop``,
  ``repro.partitioning.streaming.LdgPartitioner.__init__``);
* a conservative call-edge relation between them.

Resolution is deliberately best-effort: module-local names, ``from
repro.x import f`` imports, ``repro.x.f`` attribute calls on imported
modules, ``self.method()`` dispatch through the class/base hierarchy,
and constructor calls (``Cls(...)`` resolves to ``Cls.__init__``).
Anything dynamic — a factory held in a variable, ``getattr``, a callback
parameter — resolves to nothing, which keeps the downstream rules free
of speculative false positives at the cost of missing exotic flows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.tools.lint.engine import Module, Project


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: Module
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    @property
    def params(self) -> list:
        """Positional/keyword parameter names, ``self``/``cls`` included."""
        args = self.node.args  # type: ignore[attr-defined]
        return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]

    def param_default(self, param: str) -> ast.AST | None:
        """The default-value expression for *param*, if it has one."""
        args = self.node.args  # type: ignore[attr-defined]
        positional = args.posonlyargs + args.args
        tail = positional[len(positional) - len(args.defaults):]
        for arg, default in zip(tail, args.defaults):
            if arg.arg == param:
                return default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == param and default is not None:
                return default
        return None


@dataclass
class CallSite:
    """A resolved call: *call* in *caller* targets *callee* qualname."""

    caller: str  # qualname of enclosing function ('' at module level)
    callee: str
    call: ast.Call
    module: Module


@dataclass
class _ClassInfo:
    module_name: str
    name: str
    bases: list = field(default_factory=list)  # resolved "mod.Cls" keys
    methods: dict = field(default_factory=dict)  # method name -> qualname


def _function_defs(body: list) -> list:
    return [n for n in body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]


class CallGraph:
    """Functions, classes, imports and resolved call edges for a project."""

    def __init__(self, project: Project):
        self.project = project
        #: qualname -> FunctionInfo
        self.functions: dict = {}
        #: "module.Class" -> _ClassInfo
        self.classes: dict = {}
        #: module name -> {local name -> dotted target}
        self.imports: dict = {}
        #: caller qualname -> set of callee qualnames
        self.edges: dict = {}
        #: every resolved call site, in deterministic module/position order
        self.call_sites: list = []
        for module in sorted(project.package_modules(),
                             key=lambda m: m.module_name):
            self._index_module(module)
        for module in sorted(project.package_modules(),
                             key=lambda m: m.module_name):
            self._resolve_module(module)

    # ------------------------------------------------------------------
    # Indexing pass: definitions and imports.
    # ------------------------------------------------------------------
    def _index_module(self, module: Module) -> None:
        name = module.module_name
        imports: dict = {}
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:  # relative: resolve against this module
                    parent = name.split(".")[:-node.level]
                    base = ".".join(parent + [node.module])
                for alias in node.names:
                    imports[alias.asname or alias.name] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node, imports)
        self.imports[name] = imports

    def _add_function(self, module: Module, node: ast.AST,
                      class_name: str | None) -> FunctionInfo:
        scope = f"{module.module_name}.{class_name}" if class_name \
            else module.module_name
        info = FunctionInfo(qualname=f"{scope}.{node.name}",  # type: ignore[attr-defined]
                            module=module, node=node, class_name=class_name)
        self.functions[info.qualname] = info
        return info

    def _index_class(self, module: Module, node: ast.ClassDef,
                     imports: dict) -> None:
        info = _ClassInfo(module_name=module.module_name, name=node.name)
        for base in node.bases:
            resolved = self._resolve_class_ref(module, base, imports)
            if resolved:
                info.bases.append(resolved)
        for method in _function_defs(node.body):
            fn = self._add_function(module, method, class_name=node.name)
            info.methods[method.name] = fn.qualname
        self.classes[f"{module.module_name}.{node.name}"] = info

    def _resolve_class_ref(self, module: Module, node: ast.AST,
                           imports: dict) -> str | None:
        if isinstance(node, ast.Name):
            target = imports.get(node.id)
            if target:
                return target
            return f"{module.module_name}.{node.id}"
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            head = imports.get(node.value.id, node.value.id)
            return f"{head}.{node.attr}"
        return None

    # ------------------------------------------------------------------
    # Resolution pass: call edges.
    # ------------------------------------------------------------------
    def _resolve_module(self, module: Module) -> None:
        name = module.module_name
        stack: list = []  # (FunctionInfo | None) enclosing-function stack

        graph = self

        class _Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.class_name: str | None = None

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                previous, self.class_name = self.class_name, node.name
                self.generic_visit(node)
                self.class_name = previous

            def _visit_function(self, node: ast.AST) -> None:
                qualname = graph._qualname_of(name, node, self.class_name)
                stack.append(qualname)
                self.generic_visit(node)
                stack.pop()

            visit_FunctionDef = _visit_function
            visit_AsyncFunctionDef = _visit_function

            def visit_Call(self, node: ast.Call) -> None:
                # Attribute calls inside closures/nested defs to the
                # nearest *indexed* enclosing function: invoking it is
                # the only way the closure runs, so purity- and
                # seed-flow-wise they are one unit.
                caller = next(
                    (q for q in reversed(stack) if q in graph.functions),
                    "")
                callee = graph._resolve_call(module, node,
                                             caller_class=self.class_name)
                if callee is not None:
                    graph.edges.setdefault(caller, set()).add(callee)
                    graph.call_sites.append(CallSite(
                        caller=caller, callee=callee, call=node,
                        module=module))
                self.generic_visit(node)

        _Visitor().visit(module.tree)

    def _qualname_of(self, module_name: str, node: ast.AST,
                     class_name: str | None) -> str:
        scope = f"{module_name}.{class_name}" if class_name else module_name
        qualname = f"{scope}.{node.name}"  # type: ignore[attr-defined]
        # Nested defs are not indexed; attribute them to their parent name
        # anyway so the edge set stays conservative but connected.
        return qualname

    def _resolve_call(self, module: Module, call: ast.Call,
                      caller_class: str | None) -> str | None:
        imports = self.imports.get(module.module_name, {})
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_plain_name(module, func.id, imports)
        if isinstance(func, ast.Attribute):
            # self.method() through the class hierarchy.
            if (isinstance(func.value, ast.Name) and func.value.id == "self"
                    and caller_class is not None):
                return self.resolve_method(
                    f"{module.module_name}.{caller_class}", func.attr)
            # module.attr() on an imported repro module.
            if isinstance(func.value, ast.Name):
                target = imports.get(func.value.id)
                if target:
                    return self._resolve_dotted(f"{target}.{func.attr}")
        return None

    def _resolve_plain_name(self, module: Module, name: str,
                            imports: dict) -> str | None:
        local = f"{module.module_name}.{name}"
        if local in self.functions:
            return local
        if local in self.classes:
            return self.resolve_method(local, "__init__") or local
        target = imports.get(name)
        if target:
            return self._resolve_dotted(target)
        return None

    def _resolve_dotted(self, dotted: str) -> str | None:
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            return self.resolve_method(dotted, "__init__") or dotted
        return None

    def resolve_method(self, class_key: str, method: str,
                       _seen: frozenset = frozenset()) -> str | None:
        """Qualname of *method* on *class_key*, walking project bases."""
        if class_key in _seen:
            return None
        info = self.classes.get(class_key)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        seen = _seen | {class_key}
        for base in info.bases:
            found = self.resolve_method(base, method, seen)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # Queries used by the dataflow rules.
    # ------------------------------------------------------------------
    def callers_of(self, qualname: str) -> set:
        return {caller for caller, callees in self.edges.items()
                if qualname in callees}

    def bind_arguments(self, call: ast.Call, callee: FunctionInfo) -> dict:
        """Map parameter name -> argument expression for a resolved call.

        Methods skip their ``self``/``cls`` slot when the call site is a
        constructor or a ``self.m()`` dispatch.  ``*args``/``**kwargs`` at
        the call site abort the binding (conservative: nothing is bound).
        """
        if any(isinstance(a, ast.Starred) for a in call.args) or \
                any(k.arg is None for k in call.keywords):
            return {}
        params = callee.params
        if callee.class_name is not None and params \
                and params[0] in ("self", "cls"):
            params = params[1:]
        bound: dict = {}
        for param, arg in zip(params, call.args):
            bound[param] = arg
        for keyword in call.keywords:
            if keyword.arg in params:
                bound[keyword.arg] = keyword.value
        return bound
