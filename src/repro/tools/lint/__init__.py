"""reprolint — AST-based invariants checker for this repository.

The paper's methodology depends on bit-for-bit reproducible runs, and the
repo enforces that contract by *convention*: everything stochastic draws
randomness through :mod:`repro.rng`, simulated-time substrates never read
the wall clock, and the partitioner registry's ``accepts_seed`` flags match
the constructor signatures.  Conventions drift.  ``reprolint`` turns each
one into a static rule checked over the AST: per-file determinism rules
(``RL0xx``), cross-module registry/contract rules (``RL1xx``) and
whole-program dataflow rules over the project call graph (``RL2xx`` —
seed provenance, wall-clock purity, process-boundary hygiene).  A
determinism violation is caught in review — before it silently changes
every downstream assignment, poisons a cache key, or breaks the
serial≡parallel digest guarantee.

Run it as ``python -m repro lint [paths]`` or via the ``repro-lint``
console script; see ``docs/static_analysis.md`` for the rule catalogue.
"""

from repro.tools.lint.engine import (
    Finding,
    LintResult,
    Module,
    Project,
    Rule,
    all_rules,
    register,
    run_lint,
)

__all__ = [
    "Finding",
    "LintResult",
    "Module",
    "Project",
    "Rule",
    "all_rules",
    "register",
    "run_lint",
]
