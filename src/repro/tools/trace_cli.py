"""``repro-trace`` — profile a recorded JSONL trace from the shell.

Renders a text flamegraph and a top-N hot-span table from a trace
produced by ``python -m repro <experiment> --trace out.jsonl`` or by the
:func:`repro.telemetry.recording` API.  Also reachable as
``python -m repro trace <file>``.

Examples::

    repro-trace trace.jsonl                      # summary + flamegraph + top-10
    repro-trace trace.jsonl --top 25 --no-flame  # just the hot-span table
    repro-trace trace.jsonl --min-percent 1 --max-depth 3
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry import (
    read_jsonl,
    render_flamegraph,
    render_hot_spans,
    trace_summary,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render a flamegraph and hot-span report from a "
                    "JSONL telemetry trace.",
    )
    parser.add_argument("trace", help="JSONL trace file ('-' for stdin)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows in the hot-span table (default 10)")
    parser.add_argument("--max-depth", type=int, default=None, metavar="D",
                        help="cap flamegraph nesting depth")
    parser.add_argument("--min-percent", type=float, default=0.0, metavar="P",
                        help="prune flamegraph spans below P%% of the "
                             "trace total (default 0: show everything)")
    parser.add_argument("--width", type=int, default=100,
                        help="flamegraph line width (default 100)")
    parser.add_argument("--no-flame", action="store_true",
                        help="skip the flamegraph, print only the table")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary + hot spans as JSON instead "
                             "of text reports")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        source = sys.stdin if args.trace == "-" else args.trace
        spans = read_jsonl(source)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print("error: trace contains no completed spans", file=sys.stderr)
        return 1

    if args.json:
        from repro.telemetry import hot_spans
        payload = {"summary": trace_summary(spans),
                   "hot_spans": hot_spans(spans, top=args.top)}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    summary = trace_summary(spans)
    print(f"trace      : {args.trace}")
    print(f"spans      : {summary['spans']:,} "
          f"({summary['names']} names, {summary['roots']} roots)")
    print(f"total time : {summary['total_seconds']:.6f} simulated seconds")
    if not args.no_flame:
        print()
        print(render_flamegraph(spans, width=args.width,
                                max_depth=args.max_depth,
                                min_fraction=args.min_percent / 100.0))
    print()
    print(render_hot_spans(spans, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
