"""``repro ingest`` — spill, inspect and partition on-disk edge streams.

The shell face of the out-of-core subsystem (``docs/scaling.md``): spill
a synthetic stream to the ``.redg`` format once, then partition it any
number of times without ever materialising the graph.

Examples::

    repro ingest spill rmat out.redg --scale 18 --seed 7
    repro ingest spill powerlaw out.redg --num-vertices 100000
    repro ingest info out.redg --json
    repro ingest partition out.redg -a hdrf -k 16 --shards 4 --workers 4
    repro ingest partition out.redg -a hdrf --state sketch --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.ingest import (
    DEFAULT_SYNC_INTERVAL,
    SHARD_ALGORITHMS,
    EdgeStreamFile,
    ShardConfig,
    full_materialization_bytes,
    run_file_ingest,
    spill_powerlaw,
    spill_rmat,
)
from repro.partitioning.degree_state import (
    DEFAULT_SKETCH_DEPTH,
    DEFAULT_SKETCH_WIDTH,
    DEGREE_STATES,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ingest",
        description="Out-of-core edge streams: spill generators to the "
                    ".redg on-disk format, inspect stream files, and run "
                    "the sharded bounded-memory partitioner over them.",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    spill = verbs.add_parser(
        "spill", help="generate a synthetic stream straight to disk")
    spill.add_argument("generator", choices=("rmat", "powerlaw"))
    spill.add_argument("output", help="destination .redg file")
    spill.add_argument("--scale", type=int, default=16,
                       help="rmat: log2 of the vertex count (default 16)")
    spill.add_argument("--edge-factor", type=float, default=16.0,
                       help="rmat: edges per vertex (default 16)")
    spill.add_argument("--num-vertices", type=int, default=1 << 16,
                       help="powerlaw: vertex count (default 65536)")
    spill.add_argument("--avg-out-degree", type=float, default=16.0,
                       help="powerlaw: average out-degree (default 16)")
    spill.add_argument("--seed", type=int, default=0)
    spill.add_argument("--json", action="store_true",
                       help="emit the stream description as JSON")

    info = verbs.add_parser("info", help="describe an existing .redg file")
    info.add_argument("input", help=".redg stream file")
    info.add_argument("--json", action="store_true")

    part = verbs.add_parser(
        "partition", help="shard-partition a .redg stream in bounded memory")
    part.add_argument("input", help=".redg stream file")
    part.add_argument("-a", "--algorithm", default="hdrf",
                      choices=SHARD_ALGORITHMS)
    part.add_argument("-k", "--partitions", type=int, default=8)
    part.add_argument("--state", default="exact", choices=DEGREE_STATES,
                      help="degree state: exact tables or a count-min "
                           "sketch (default exact)")
    part.add_argument("--shards", type=int, default=1,
                      help="contiguous stream segments partitioned "
                           "concurrently (default 1 = sequential)")
    part.add_argument("--sync-interval", type=int,
                      default=DEFAULT_SYNC_INTERVAL,
                      help="arrivals each shard processes between load-"
                           f"vector syncs (default {DEFAULT_SYNC_INTERVAL})")
    part.add_argument("--workers", type=int, default=1,
                      help="worker processes (results are identical for "
                           "any worker count; default 1)")
    part.add_argument("--seed", type=int, default=0)
    part.add_argument("--sketch-width", type=int, default=DEFAULT_SKETCH_WIDTH)
    part.add_argument("--sketch-depth", type=int, default=DEFAULT_SKETCH_DEPTH)
    part.add_argument("--no-quality", action="store_true",
                      help="skip the chunked quality pass over the stream")
    part.add_argument("--json", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.verb == "spill":
            return _spill(args)
        if args.verb == "info":
            return _info(args)
        return _partition(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _spill(args) -> int:
    if args.generator == "rmat":
        path = spill_rmat(args.output, args.scale, args.edge_factor,
                          seed=args.seed)
    else:
        path = spill_powerlaw(args.output, args.num_vertices,
                              args.avg_out_degree, seed=args.seed)
    description = EdgeStreamFile(path).describe()
    if args.json:
        print(json.dumps(description, indent=2, sort_keys=True))
        return 0
    print(f"spilled    : {description['num_edges']:,} edges over "
          f"{description['num_vertices']:,} vertices")
    print(f"file       : {description['path']} "
          f"({description['payload_bytes']:,} payload bytes, "
          f"{description['num_chunks']} chunks)")
    return 0


def _info(args) -> int:
    description = EdgeStreamFile(args.input).describe()
    if args.json:
        print(json.dumps(description, indent=2, sort_keys=True))
        return 0
    for key in sorted(description):
        print(f"{key:18s}: {description[key]}")
    return 0


def _partition(args) -> int:
    config = ShardConfig(
        algorithm=args.algorithm,
        num_partitions=args.partitions,
        state=args.state,
        num_shards=args.shards,
        sync_interval=args.sync_interval,
        workers=args.workers,
        seed=args.seed,
        sketch_width=args.sketch_width,
        sketch_depth=args.sketch_depth,
    )
    summary = run_file_ingest(args.input, config,
                              with_quality=not args.no_quality)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"stream     : {summary['num_vertices']:,} vertices, "
          f"{summary['num_edges']:,} edges")
    print(f"config     : {args.algorithm} k={args.partitions} "
          f"state={args.state} shards={args.shards} "
          f"sync={args.sync_interval} workers={args.workers}")
    print(f"rounds     : {summary['rounds']}")
    print(f"digest     : {summary['digest'][:16]}")
    full = full_materialization_bytes(summary["num_vertices"],
                                      summary["num_edges"])
    print(f"peak bytes : {summary['peak_tracked_bytes']:,} tracked "
          f"(full materialisation would be {full:,})")
    if "replication_factor" in summary:
        print(f"replication: {summary['replication_factor']:.4f}")
        print(f"imbalance  : {summary['load_imbalance']:.4f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
