"""Runtime determinism/numeric sanitizer (``REPRO_SANITIZE=1``).

A TSan-style companion to reprolint: the static rules prove structure
(seeds flow, clocks stay out, deltas commute), this module checks the
*values* at runtime — NaN poisoning in kernel score buffers, int64
wraparound in shard delta merges, aliasing between preallocated arrays,
set-iteration order leaking into decisions, and event-time regressions
in the discrete-event simulator.

The contract is strict zero overhead when disabled: every call site is
guarded by ``if sanitize.ACTIVE:`` (a plain module-bool test), so with
``REPRO_SANITIZE`` unset no sanitizer function is ever entered and all
digests are byte-identical to an uninstrumented build.  When enabled the
checks are assertions, not corrections — they never change a value, so
digests are byte-identical *with* the sanitizer too; it can only abort.

The hash-seed perturbation double-run mode (``python -m repro
sanitize``) runs a small deterministic probe twice under different
``PYTHONHASHSEED`` values and diffs the digests — the end-to-end test
that nothing anywhere feeds ``hash()`` ordering into results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = [
    "ACTIVE",
    "SanitizerError",
    "check_delta_merge",
    "check_event_time",
    "check_no_alias",
    "check_not_set",
    "check_scores",
    "check_sizes",
    "digest_probe",
    "disable",
    "enable",
    "main",
    "reset_stats",
    "stats",
]


class SanitizerError(AssertionError):
    """A runtime determinism/numeric invariant was violated."""


#: The master switch.  Read from the environment exactly once at import;
#: hot paths test this bool and never call into this module when False.
ACTIVE = False

#: How often each check ran, by name — lets tests assert both that the
#: instrumented path was exercised and that the disabled path never was.
_STATS: dict = {}


def _refresh() -> None:
    global ACTIVE
    ACTIVE = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


_refresh()


def enable() -> None:
    """Turn the sanitizer on for this process (tests, probe runs)."""
    global ACTIVE
    ACTIVE = True


def disable() -> None:
    global ACTIVE
    ACTIVE = False


def stats() -> dict:
    """Copy of the per-check invocation counters."""
    return dict(_STATS)


def reset_stats() -> None:
    _STATS.clear()


def _count(name: str) -> None:
    _STATS[name] = _STATS.get(name, 0) + 1


# ----------------------------------------------------------------------
# Checks.  Each takes a `where` tag naming the instrumented site.
# ----------------------------------------------------------------------
def check_scores(scores: np.ndarray, where: str) -> None:
    """Kernel score buffers must be NaN-free.

    ``-inf`` is *legitimate* (FENNEL applies an infinite penalty to full
    partitions), so only NaN — the result of ``inf - inf`` or ``0 * inf``
    arithmetic going wrong — is poison here.
    """
    _count("check_scores")
    if np.isnan(scores).any():
        raise SanitizerError(
            f"{where}: NaN in score buffer — inf arithmetic produced an "
            f"unordered value; every argmax over it is undefined")


def check_sizes(sizes: np.ndarray, where: str) -> None:
    """Partition size/count vectors are non-negative integers."""
    _count("check_sizes")
    if sizes.dtype.kind not in "iu":
        raise SanitizerError(
            f"{where}: size vector has dtype {sizes.dtype} — float "
            f"accumulation of counts is order-dependent")
    if (sizes < 0).any():
        raise SanitizerError(
            f"{where}: negative partition size — int64 overflow "
            f"wraparound or a non-commutative merge")


def check_delta_merge(total: np.ndarray, delta: np.ndarray,
                      where: str) -> None:
    """A shard delta merge stayed in exact integer arithmetic."""
    _count("check_delta_merge")
    if total.dtype.kind not in "iu" or delta.dtype.kind not in "iu":
        raise SanitizerError(
            f"{where}: delta merge on dtypes {total.dtype}/{delta.dtype} "
            f"— float merges depend on worker arrival order")
    if (total < 0).any():
        raise SanitizerError(
            f"{where}: merged totals went negative — int64 overflow "
            f"wraparound in the delta accumulation")


def check_no_alias(a: np.ndarray, b: np.ndarray, where: str) -> None:
    """Two buffers an in-place kernel writes/reads must not overlap."""
    _count("check_no_alias")
    if np.shares_memory(a, b):
        raise SanitizerError(
            f"{where}: buffers alias — an in-place scoring kernel would "
            f"read its own partial output")


def check_not_set(obj: Any, where: str) -> None:
    """Set-iteration-order canary for decision-path iterables."""
    _count("check_not_set")
    if isinstance(obj, (set, frozenset)):
        raise SanitizerError(
            f"{where}: iterating a set — order is hash-seed dependent, "
            f"so every downstream decision changes per process")


def check_event_time(now: float, previous: float, where: str) -> None:
    """DES event times are finite and non-decreasing."""
    _count("check_event_time")
    if not np.isfinite(now):
        raise SanitizerError(
            f"{where}: non-finite event time {now!r} in the event loop")
    if now < previous:
        raise SanitizerError(
            f"{where}: event time went backwards ({now} < {previous}) — "
            f"the heap ordering or a producer is broken")


# ----------------------------------------------------------------------
# Digest probe + hash-seed perturbation double-run.
# ----------------------------------------------------------------------
def digest_probe() -> dict:
    """A small, fully deterministic workload summarised as digests.

    Exercises the instrumented layers end to end: streaming kernels
    (LDG/FENNEL/HDRF), the degree-state ranks, and the discrete-event
    simulator.  Every value in the returned mapping is a string or int,
    so the JSON form is byte-stable.
    """
    import hashlib

    from repro.database import WorkloadGenerator, simulate_workload
    from repro.graph.generators import erdos_renyi
    from repro.partitioning.degree_state import run_inclusive_ranks
    from repro.partitioning.registry import make_seeded_partitioner

    def sha(array: np.ndarray) -> str:
        return hashlib.sha256(
            np.ascontiguousarray(array).tobytes()).hexdigest()

    graph = erdos_renyi(300, 1500, seed=11)
    digests: dict = {"probe": "repro.sanitize/1"}
    for name in ("ldg", "fennel", "hdrf"):
        partitioner = make_seeded_partitioner(name, seed=31)
        part = partitioner.partition(graph, 6, seed=47)
        digests[f"partition.{name}"] = sha(
            part.assignment.astype(np.int32))

    interleaved = np.empty(2 * graph.num_edges, dtype=np.int64)
    interleaved[0::2] = graph.src
    interleaved[1::2] = graph.dst
    digests["degree.ranks"] = sha(
        run_inclusive_ranks(interleaved).astype(np.int64))

    partition = make_seeded_partitioner("ldg", seed=31).partition(
        graph, 4, seed=47)
    bindings = WorkloadGenerator(graph, skew=0.4, seed=5).bindings(
        "one_hop", 80)
    result = simulate_workload(graph, partition, bindings, duration=0.3)
    digests["des.latencies"] = sha(np.asarray(result.latencies,
                                              dtype=np.float64))
    digests["des.completed"] = int(result.completed_queries)
    return digests


def _probe_json() -> str:
    return json.dumps(digest_probe(), indent=2, sort_keys=True)


def _run_probe_subprocess(hash_seed: int, sanitize: bool,
                          env: Mapping | None = None) -> str:
    child_env = dict(env if env is not None else os.environ)
    child_env["PYTHONHASHSEED"] = str(hash_seed)
    child_env["REPRO_SANITIZE"] = "1" if sanitize else "0"
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "sanitize", "--probe"],
        capture_output=True, text=True, env=child_env, check=False)
    if completed.returncode != 0:
        raise SanitizerError(
            f"probe run (PYTHONHASHSEED={hash_seed}) failed:\n"
            f"{completed.stderr}")
    return completed.stdout


def main(argv: Iterable | None = None) -> int:
    """``python -m repro sanitize`` — see ``--help``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro sanitize",
        description="Hash-seed perturbation double-run: execute a small "
                    "deterministic probe under two PYTHONHASHSEED values "
                    "with the runtime sanitizer enabled and diff the "
                    "digests byte for byte.")
    parser.add_argument("--probe", action="store_true",
                        help="run the probe in-process and print its "
                             "digest JSON (internal: used by the "
                             "double-run driver)")
    parser.add_argument("--hash-seeds", default="0,1",
                        help="comma-separated PYTHONHASHSEED values for "
                             "the double run (default: 0,1)")
    parser.add_argument("--no-sanitize", action="store_true",
                        help="leave REPRO_SANITIZE off in the probe "
                             "subprocesses (digest-parity baseline)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.probe:
        print(_probe_json())
        return 0

    seeds = [int(s) for s in args.hash_seeds.split(",") if s.strip()]
    if len(seeds) < 2:
        print("need at least two --hash-seeds values", file=sys.stderr)
        return 2
    outputs = []
    for seed in seeds:
        print(f"[sanitize] probe run with PYTHONHASHSEED={seed} ...")
        outputs.append(_run_probe_subprocess(seed,
                                             not args.no_sanitize))
    reference = outputs[0]
    for seed, output in zip(seeds[1:], outputs[1:]):
        if output != reference:
            print(f"[sanitize] DIGEST MISMATCH between "
                  f"PYTHONHASHSEED={seeds[0]} and {seed}:",
                  file=sys.stderr)
            print(reference, file=sys.stderr)
            print(output, file=sys.stderr)
            return 1
    print(f"[sanitize] OK — {len(seeds)} probe runs byte-identical "
          f"across hash seeds {seeds}")
    print(reference)
    return 0
