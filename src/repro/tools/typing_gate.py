"""Ratcheted mypy gate: ``python -m repro.tools.typing_gate``.

The typing posture of this repo is two-tier (see ``[tool.mypy]`` in
``pyproject.toml``): the determinism-critical core — ``repro.rng``,
``repro.graph.digraph``, ``repro.partitioning.base``,
``repro.orchestrator.cache`` — is checked strictly and must stay at
**zero** errors; everything else is lenient but *ratcheted* through a
checked-in baseline so the error count can only go down.

The baseline file (``mypy-baseline.txt``) maps path patterns to the
maximum number of mypy errors allowed there::

    # count<TAB>pattern    (first matching pattern wins)
    0\tsrc/repro/rng.py
    *\tsrc/repro/**        (``*`` = not yet ratcheted, any count allowed)

Workflow: run mypy, count errors per file, compare against the baseline.
A file exceeding its allowance (or matching no pattern) fails the gate;
a file *under* its numeric allowance prints a ratchet hint.  ``--update``
rewrites numeric entries to the measured counts (never loosening ``*``
into a number without a human in the loop — it only tightens existing
numeric entries and reports which ``*`` patterns are ready to pin).

Exit codes: 0 gate holds, 1 regressions, 2 usage error, 3 mypy not
installed (the gate cannot run — CI installs a pinned mypy; locally,
``pip install mypy`` first).
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import subprocess
import sys
from pathlib import Path

DEFAULT_BASELINE = "mypy-baseline.txt"
UNRATCHETED = "*"

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_NO_MYPY = 3

#: ``path:line: error: message  [code]`` — mypy's default output shape.
_ERROR_LINE = re.compile(r"^(?P<path>[^:\n]+):\d+(?::\d+)?: error: ")


def parse_error_counts(output: str) -> dict:
    """Per-file error counts from raw mypy stdout."""
    counts: dict = {}
    for line in output.splitlines():
        match = _ERROR_LINE.match(line)
        if match:
            path = match.group("path").replace("\\", "/")
            counts[path] = counts.get(path, 0) + 1
    return counts


def load_baseline(path: Path) -> list:
    """Ordered ``(allowance, pattern)`` pairs; allowance int or ``'*'``."""
    entries: list = []
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        allowance, _, pattern = line.partition("\t")
        if not pattern:
            # Be forgiving about runs of spaces instead of a tab.
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise ValueError(f"malformed baseline line: {raw!r}")
            allowance, pattern = parts
        entries.append((allowance if allowance == UNRATCHETED
                        else int(allowance), pattern.strip()))
    return entries


def render_baseline(entries: list) -> str:
    lines = [
        "# mypy-baseline.txt — ratcheted per-path mypy error allowances.",
        "# Format: allowance<TAB>pattern; first matching pattern wins.",
        "# '*' means not yet ratcheted (any count); numbers only go down.",
        "# Maintained by `python -m repro.tools.typing_gate --update`.",
    ]
    lines.extend(f"{allowance}\t{pattern}" for allowance, pattern in entries)
    return "\n".join(lines) + "\n"


def _allowance_for(path: str, entries: list):
    for allowance, pattern in entries:
        if fnmatch.fnmatch(path, pattern):
            return allowance, pattern
    return None, None


def compare(entries: list, counts: dict) -> tuple:
    """``(regressions, improvements)`` of the measured counts vs baseline.

    Regressions: files over their numeric allowance, or with errors but
    no matching pattern.  Improvements: files strictly under a numeric
    allowance (ratchet candidates).
    """
    regressions: list = []
    improvements: list = []
    for path in sorted(counts):
        count = counts[path]
        allowance, pattern = _allowance_for(path, entries)
        if allowance is None:
            regressions.append((path, count, 0,
                                "no baseline pattern covers this file"))
        elif allowance != UNRATCHETED and count > allowance:
            regressions.append((path, count, allowance,
                                f"over the {pattern!r} allowance"))
    for allowance, pattern in entries:
        if allowance == UNRATCHETED:
            continue
        measured = sum(c for p, c in counts.items()
                       if fnmatch.fnmatch(p, pattern)
                       and _allowance_for(p, entries)[1] == pattern)
        if measured < allowance:
            improvements.append((pattern, measured, allowance))
    return regressions, improvements


def tighten(entries: list, counts: dict) -> list:
    """Baseline with numeric allowances lowered to the measured counts."""
    updated: list = []
    for allowance, pattern in entries:
        if allowance == UNRATCHETED:
            updated.append((allowance, pattern))
            continue
        measured = sum(c for p, c in counts.items()
                       if fnmatch.fnmatch(p, pattern)
                       and _allowance_for(p, entries)[1] == pattern)
        updated.append((min(allowance, measured), pattern))
    return updated


def run_mypy(paths: list) -> tuple:
    """``(exit_code, stdout)`` of mypy over *paths*, or ``(None, '')``
    when mypy is not importable in this interpreter."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return None, ""
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", *paths],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-typing-gate",
        description="Run mypy and enforce the ratcheted error baseline.")
    parser.add_argument("paths", nargs="*", default=None, metavar="PATH",
                        help="paths to type-check (default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="FILE", help="ratchet file (count\\tpattern)")
    parser.add_argument("--update", action="store_true",
                        help="tighten numeric allowances to measured counts")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"baseline file not found: {baseline_path}", file=sys.stderr)
        return EXIT_USAGE
    try:
        entries = load_baseline(baseline_path)
    except ValueError as error:
        print(f"bad baseline: {error}", file=sys.stderr)
        return EXIT_USAGE

    code, output = run_mypy(args.paths or ["src"])
    if code is None:
        print("mypy is not installed in this environment; the typing gate "
              "needs it (CI installs a pinned version)", file=sys.stderr)
        return EXIT_NO_MYPY
    counts = parse_error_counts(output)

    regressions, improvements = compare(entries, counts)
    for path, count, allowance, reason in regressions:
        print(f"REGRESSION {path}: {count} error(s), allowance "
              f"{allowance} — {reason}")
    for pattern, measured, allowance in improvements:
        print(f"ratchet opportunity: {pattern} measured {measured} < "
              f"allowance {allowance}"
              + ("" if args.update else " (run with --update to tighten)"))

    if args.update:
        baseline_path.write_text(render_baseline(tighten(entries, counts)))
        print(f"baseline tightened: {baseline_path}")

    total = sum(counts.values())
    print(f"[typing-gate: {total} mypy error(s) across {len(counts)} "
          f"file(s), {len(regressions)} regression(s)]")
    return EXIT_REGRESSION if regressions else EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
