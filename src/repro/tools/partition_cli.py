"""``repro-partition`` — partition an edge-list file from the shell.

The utility a downstream user actually wants from this library: point it
at an edge list, pick an algorithm and a partition count, get a
vertex→partition (or edge→partition) mapping plus the quality metrics the
paper reports.

Examples::

    repro-partition graph.txt --algorithm hdrf --partitions 16
    repro-partition graph.txt -a ldg -k 8 --order bfs --output parts.tsv
    repro-partition graph.txt -a mts -k 32 --metrics-only
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ReproError
from repro.graph.io import read_edge_list
from repro.graph.stream import STREAM_ORDERS
from repro.metrics import (
    communication_cost,
    edge_cut_ratio,
    partition_balance,
    replication_factor,
)
from repro.partitioning import available_algorithms, cut_model, make_partitioner
from repro.partitioning.base import VertexPartition


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description="Partition a graph edge-list file with a streaming "
                    "graph partitioning algorithm.",
    )
    parser.add_argument("input", help="edge-list file (one 'src dst' per line)")
    parser.add_argument("-a", "--algorithm", default="ldg",
                        help="algorithm name or paper acronym "
                             f"(one of {', '.join(available_algorithms())})")
    parser.add_argument("-k", "--partitions", type=int, default=8,
                        help="number of partitions (default 8)")
    parser.add_argument("--order", default="natural", choices=STREAM_ORDERS,
                        help="stream order (default: file order)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for stream shuffling and tie-breaking")
    parser.add_argument("-o", "--output", default=None,
                        help="write the assignment as TSV (id<TAB>partition); "
                             "vertex ids for edge-cut algorithms, edge ids "
                             "for vertex-cut ones")
    parser.add_argument("--metrics-only", action="store_true",
                        help="print metrics without writing an assignment")
    parser.add_argument("--evaluate", default=None, metavar="TSV",
                        help="skip partitioning: evaluate an existing "
                             "assignment TSV against the graph instead")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        graph = read_edge_list(args.input)
        if args.evaluate:
            from repro.partitioning.io import read_partition_tsv
            partition = read_partition_tsv(args.evaluate)
            elapsed = 0.0
            label = f"{partition.algorithm} (from {args.evaluate})"
        else:
            partitioner = _make(args.algorithm, args.seed)
            started = time.time()
            partition = partitioner.partition(graph, args.partitions,
                                              order=args.order, seed=args.seed)
            elapsed = time.time() - started
            label = (f"{args.algorithm} ({cut_model(args.algorithm)}), "
                     f"k={args.partitions}, order={args.order}")
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(f"graph      : {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges")
    print(f"algorithm  : {label}")
    if elapsed:
        print(f"time       : {elapsed:.2f}s")
    if isinstance(partition, VertexPartition):
        print(f"edge-cut   : {edge_cut_ratio(graph, partition):.4f}")
    else:
        print(f"replication: {replication_factor(graph, partition):.4f}")
    print(f"cost C(P)  : {communication_cost(graph, partition):.4f}")
    print(f"balance    : {partition_balance(graph, partition):.4f}")

    if args.output and not args.metrics_only:
        from repro.partitioning.io import write_partition_tsv
        write_partition_tsv(partition, args.output,
                            comment=f"order={args.order} seed={args.seed}")
        print(f"assignment : written to {args.output}")
    return 0


def _make(algorithm: str, seed: int):
    try:
        return make_partitioner(algorithm, seed=seed)
    except TypeError:
        return make_partitioner(algorithm)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
