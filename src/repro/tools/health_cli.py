"""``python -m repro health`` — the service health dashboard.

Runs the online partitioning service scenario (the same knobs as
``serve-sim``) with SLO sampling on and renders what an SRE console
would show, entirely from deterministic simulated-time series:

* a per-epoch sparkline table of the key metric series (latency, drift,
  backlog, shed/failed counts);
* the SLO table — objective, budget consumed, worst burn rates, pages
  and tickets — with a ``BREACH`` marker when a budget is spent;
* the ordered alert log (fire/resolve transitions in simulated time).

``--json`` emits the canonical health payload (samples + alerts + SLO
state + digests); ``--out DIR`` additionally writes the OpenMetrics and
JSONL export artifacts CI uploads.  Same seed → byte-identical output,
so the dashboard itself is regression-testable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.service.cli import build_config
from repro.service.core import PartitionedGraphService, ServiceResult
from repro.telemetry.export import (
    records_to_jsonl,
    samples_to_jsonl,
    to_openmetrics,
    write_text,
)

#: Unicode eighth-blocks, the classic terminal sparkline alphabet.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: The dashboard's headline series: (label, metric name, format).
DASHBOARD_SERIES = (
    ("p99 latency (ms)", "service.epoch.p99_latency_ms", "{:.1f}"),
    ("mean latency (ms)", "service.epoch.mean_latency_ms", "{:.1f}"),
    ("drift", "service.epoch.drift", "{:.4f}"),
    ("edge cut", "service.epoch.edge_cut", "{:.3f}"),
    ("pending backlog", "service.epoch.pending_mutations", "{:.0f}"),
    ("shed writes", "service.epoch.shed_writes", "{:.0f}"),
    ("failed queries", "service.epoch.failed_queries", "{:.0f}"),
    ("completed queries", "service.epoch.completed_queries", "{:.0f}"),
)


def sparkline(values) -> str:
    """Render *values* as one eighth-block character per point."""
    values = [float(v) for v in values]
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return SPARK_CHARS[0] * len(values)
    scale = (len(SPARK_CHARS) - 1) / (high - low)
    return "".join(SPARK_CHARS[int((v - low) * scale)] for v in values)


def ingest_health() -> dict | None:
    """Process-global out-of-core ingest gauges, or None before any run.

    The ingest subsystem (``docs/scaling.md``) publishes its footprint to
    the shared registry — ``ingest.peak_bytes`` is the peak tracked
    resident state of the last sharded run.  Returned only when an
    ingest actually ran in this process, so dashboards that never touch
    the subsystem stay byte-identical across runs.
    """
    from repro import telemetry

    registry = telemetry.get_metrics()
    if "ingest.peak_bytes" not in registry:
        return None
    return {
        "peak_bytes": int(registry.value("ingest.peak_bytes")),
        "edges": int(registry.value("ingest.edges")),
        "sync_rounds": int(registry.value("ingest.sync_rounds")),
        "spilled_edges": int(registry.value("ingest.spilled_edges")),
    }


def render_dashboard(result: ServiceResult) -> str:
    """The full terminal dashboard for one service run."""
    lines: list[str] = []
    samples = result.samples
    if not samples:
        return ("no samples recorded — the run had slo_sampling disabled; "
                "re-run with sampling on to get a dashboard")

    lines.append(f"service health — {len(samples)} epochs, "
                 f"t=[{samples[0].time:g}, {samples[-1].time:g}]s simulated")
    lines.append("")
    label_width = max(len(label) for label, _, _ in DASHBOARD_SERIES)
    for label, metric, fmt in DASHBOARD_SERIES:
        series = [s.value(metric) for s in samples]
        last = fmt.format(series[-1])
        lines.append(f"{label:<{label_width}}  {sparkline(series)}  "
                     f"last={last}  max={fmt.format(max(series))}")

    slo_state = result.slo_status or {"slos": []}
    if slo_state["slos"]:
        lines.append("")
        lines.append("SLO                  objective  budget used  "
                     "worst fast/slow burn  pages  tickets")
        for status in slo_state["slos"]:
            slo = status["slo"]
            consumed = status["consumed"]
            marker = "  BREACH" if status["breached"] else ""
            worst_fast = max(status["burn_fast"], default=0.0)
            worst_slow = max(status["burn_slow"], default=0.0)
            lines.append(
                f"{slo['name']:<20} {slo['objective']:>9.3f}  "
                f"{consumed:>10.1%}  "
                f"{worst_fast:>9.1f}/{worst_slow:<9.1f}  "
                f"{status['pages']:>5d}  {status['tickets']:>7d}"
                f"{marker}")

    lines.append("")
    if result.alerts:
        lines.append("alert log:")
        for alert in result.alerts:
            lines.append(
                f"  epoch {alert.epoch:3d} t={alert.time:8.2f}s  "
                f"[{alert.severity:>6}] {alert.kind:<7} {alert.slo}  "
                f"burn fast/slow {alert.burn_fast:.1f}/{alert.burn_slow:.1f}"
                f"  budget {alert.budget_consumed:.0%}")
    else:
        lines.append("alert log: empty — every objective held")
    ingest = ingest_health()
    if ingest is not None:
        lines.append("")
        lines.append(f"ingest: peak {ingest['peak_bytes']:,} bytes resident "
                     f"over {ingest['edges']:,} edges "
                     f"({ingest['sync_rounds']} sync rounds, "
                     f"{ingest['spilled_edges']:,} edges spilled)")

    lines.append("")
    lines.append(f"timeline digest:      {result.digest()}")
    lines.append(f"observability digest: {result.observability_digest()}")
    return "\n".join(lines)


def health_payload(result: ServiceResult) -> dict:
    """The canonical machine-readable health document."""
    payload = {
        "schema": "repro.health/1",
        "observability": result.observability(),
        "timeline_digest": result.digest(),
        "observability_digest": result.observability_digest(),
    }
    ingest = ingest_health()
    if ingest is not None:
        payload["ingest"] = ingest
    return payload


def write_artifacts(result: ServiceResult, out_dir: str) -> list[str]:
    """Write the CI export artifacts; returns the paths written."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []

    def emit(name: str, payload: str) -> None:
        path = os.path.join(out_dir, name)
        write_text(path, payload)
        paths.append(path)

    if result.samples:
        emit("metrics.openmetrics", to_openmetrics(result.samples[-1]))
        emit("samples.jsonl", samples_to_jsonl(result.samples))
    emit("alerts.jsonl", records_to_jsonl(result.alerts))
    emit("health.json", json.dumps(health_payload(result), indent=2,
                                   sort_keys=True) + "\n")
    return paths


def add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    """The serve-sim scenario knobs, shared verbatim with that CLI."""
    parser.add_argument("--vertices", type=int, default=2000,
                        help="synthetic graph size (default 2000)")
    parser.add_argument("--avg-degree", type=float, default=12.0)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--epoch-duration", type=float, default=0.25,
                        metavar="SECONDS")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--mutations-per-epoch", type=int, default=600)
    parser.add_argument("--bindings-per-epoch", type=int, default=50)
    parser.add_argument("--drift-threshold", type=float, default=0.02)
    parser.add_argument("--migration-budget", type=int, default=300)
    parser.add_argument("--queue-bound", type=int, default=1000)
    parser.add_argument("--service-rate", type=int, default=400)
    parser.add_argument("--no-migration", action="store_true")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro health",
        description="Run the online service scenario and render the SLO "
                    "health dashboard (sparklines, budget burn, alert "
                    "log).  Same seed, same bytes.")
    add_scenario_arguments(parser)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the canonical health JSON to PATH "
                             "('-' for stdout)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write OpenMetrics/JSONL/health artifacts "
                             "into DIR")
    args = parser.parse_args(argv)

    from repro.errors import ConfigurationError
    from repro.graph.generators import ldbc_like

    try:
        config = build_config(args)
        graph = ldbc_like(num_vertices=args.vertices,
                          avg_degree=args.avg_degree, seed=args.seed)
    except ConfigurationError as error:
        print(f"health: {error}", file=sys.stderr)
        return 2
    result = PartitionedGraphService(graph, config=config).run()

    if args.json:
        payload = json.dumps(health_payload(result), indent=2,
                             sort_keys=True)
        if args.json == "-":
            # stdout stays pure JSON for piping; dashboard to stderr.
            print(payload)
            print(render_dashboard(result), file=sys.stderr)
            if args.out:
                for path in write_artifacts(result, args.out):
                    print(f"[wrote {path}]", file=sys.stderr)
            return 0
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"[health JSON written to {args.json}]")
    if args.out:
        for path in write_artifacts(result, args.out):
            print(f"[wrote {path}]")
    print(render_dashboard(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
