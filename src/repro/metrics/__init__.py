"""Structural and runtime metrics for partitionings and workload runs."""

from repro.metrics.quality import (
    communication_cost,
    edge_cut_ratio,
    load_imbalance,
    partition_balance,
    replication_factor,
    vertex_replica_counts,
)
from repro.metrics.runtime import (
    DistributionSummary,
    LatencySummary,
    latency_summary,
    percentile,
    relative_standard_deviation,
    summarize,
)

__all__ = [
    "edge_cut_ratio",
    "replication_factor",
    "vertex_replica_counts",
    "load_imbalance",
    "partition_balance",
    "communication_cost",
    "DistributionSummary",
    "summarize",
    "relative_standard_deviation",
    "percentile",
    "LatencySummary",
    "latency_summary",
]
